"""The Table I testbed as a convenient object, with dataset staging.

:class:`Testbed` wraps :func:`~repro.cluster.builder.build_cluster` for
the paper's 5-node configuration and adds the helpers every experiment
needs: staging synthetic datasets onto a node's disk (instantaneous — the
measurement starts after the data exists, as in the paper) and running
simulation processes to completion.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.builder import BuiltCluster, build_cluster
from repro.config import ClusterConfig, CPUSpec, DUO_E4400, table1_cluster
from repro.fs import path as _p
from repro.node.node import Node
from repro.phoenix.api import InputSpec
from repro.smartfam.registry import ModuleRegistry

__all__ = ["Testbed"]

# footprint-free profile used only to slice datasets into per-SD shards
from repro.phoenix.api import CostProfile as _CostProfile

_UNIT_PROFILE = _CostProfile("shard-slicer", map_ops_per_byte=0.0, footprint_factor=1.0)


class Testbed:
    """A live Table I cluster plus experiment helpers."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        config: ClusterConfig | None = None,
        sd_cpu: CPUSpec = DUO_E4400,
        n_sd: int = 1,
        with_smb: bool = False,
        smb_params: dict | None = None,
        registry: ModuleRegistry | None = None,
        seed: int = 0,
        trace: bool = False,
    ):
        self.config = config or table1_cluster(sd_cpu=sd_cpu, n_sd=n_sd, seed=seed)
        self.cluster: BuiltCluster = build_cluster(
            self.config, registry=registry, with_smb=with_smb,
            smb_params=smb_params, trace=trace,
        )

    # -- convenience accessors -----------------------------------------------

    @property
    def sim(self):
        """The simulator."""
        return self.cluster.sim

    @property
    def host(self) -> Node:
        """The host computing node."""
        return self.cluster.host

    @property
    def sd(self) -> Node:
        """The (first) smart-storage node."""
        return self.cluster.sd(0)

    # -- staging ----------------------------------------------------------------

    def stage(self, node: Node, path: str, inp: InputSpec) -> InputSpec:
        """Place a dataset file on a node's disk, instantaneously.

        Returns an :class:`InputSpec` whose ``path`` is the staged location
        and whose payload is attached, ready to hand to a runtime.
        """
        norm = _p.normalize(path)
        node.fs.vfs.mkdir(_p.parent(norm), parents=True)
        payload = inp.payload
        if isinstance(payload, (bytes, bytearray)):
            node.fs.vfs.write(norm, data=bytes(payload), size=inp.size)
        else:
            node.fs.vfs.write(norm, data=payload, size=inp.size)
        return InputSpec(
            path=norm, size=inp.size, payload=payload, params=inp.params,
            offset=inp.offset,
        )

    def stage_on_sd(
        self, rel_path: str, inp: InputSpec, sd_index: int = 0
    ) -> tuple[InputSpec, InputSpec, str]:
        """Stage under an SD export; returns (sd_view, host_view, module_path).

        * ``sd_view`` — the InputSpec as the SD node sees it (local disk),
        * ``host_view`` — the same data as the host sees it (via NFS mount),
        * ``module_path`` — the SD-local path to pass through smartFAM.
        """
        sd = self.cluster.sd(sd_index)
        sd_path = _p.join("/export/data", rel_path.lstrip("/"))
        sd_view = self.stage(sd, sd_path, inp)
        mount_rel = sd_path[len("/export"):]
        host_path = _p.join(f"/mnt/{sd.name}", mount_rel.lstrip("/"))
        host_view = InputSpec(
            path=host_path, size=inp.size, payload=inp.payload, params=inp.params
        )
        return sd_view, host_view, sd_path

    def stage_replicated(
        self, rel_path: str, inp: InputSpec, n_replicas: int | None = None
    ) -> tuple[InputSpec, str]:
        """Stage one dataset on *every* SD node at the same export path.

        Returns ``(sd_view, sd_path)`` for the first SD node; the replicas
        are byte-identical, so a scheduler may place the job on whichever
        storage node is least loaded (or fail it over when one dies), and
        the distributed engine may shard one job across any subset of
        them.  ``n_replicas`` limits the replica count (clamped to the SD
        fleet size; with one SD node the single staged copy *is* the
        replica set — the degenerate case is valid, not an error).

        Every replica is the FULL dataset — declared size, payload, and
        offset all identical to the first copy.  Replication is not
        sharding: a dataset whose size does not divide evenly by the fleet
        must not leave a truncated tail on the last replica (that is
        :meth:`stage_shards`' job, which cuts on safe boundaries instead).
        """
        sds = self.cluster.sd_nodes
        n = len(sds) if n_replicas is None else max(1, min(int(n_replicas), len(sds)))
        sd_view, _host_view, sd_path = self.stage_on_sd(rel_path, inp)
        for i in range(1, n):
            replica = self.stage(self.cluster.sd(i), sd_path, inp)
            assert replica.size == sd_view.size and replica.offset == sd_view.offset
        return sd_view, sd_path

    def stage_shards(self, rel_path: str, inp: InputSpec) -> list:
        """Shard a dataset across *all* SD nodes (integrity-checked cuts).

        Returns the :class:`~repro.core.scatter.Shard` list for a
        :class:`~repro.core.scatter.ScatterJob`.  Shards are near-equal
        declared slices; payload boundaries honour the Fig 7 check so no
        record straddles two storage nodes.
        """
        import math

        from repro.core.scatter import Shard
        from repro.partition.partitioner import plan_fragments

        n = len(self.cluster.sd_nodes)
        frag = max(1, math.ceil(inp.size / n))
        plan = plan_fragments(
            inp, frag, self.cluster.sd_nodes[0].memory.capacity,
            _UNIT_PROFILE, self.config.phoenix,
        )
        shards = []
        for i, piece in enumerate(plan.fragments):
            sd = self.cluster.sd(i % n)
            sd_path = _p.join("/export/data", f"shard{i}-{rel_path.lstrip('/')}")
            self.stage(sd, sd_path, piece)
            shards.append(Shard(sd_node=sd.name, path=sd_path, size=piece.size))
        return shards

    # -- running ------------------------------------------------------------------

    def run(self, gen_or_event, name: str = "experiment") -> object:
        """Drive a process generator (or an already-spawned event) to completion."""
        from repro.sim.events import Event

        if isinstance(gen_or_event, Event):
            return self.sim.run(until=gen_or_event)
        proc = self.sim.spawn(gen_or_event, name=name)
        return self.sim.run(until=proc)
