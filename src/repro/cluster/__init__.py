"""Cluster assembly: the Fig 3 testbed and the Section V scenarios."""

from repro.cluster.builder import BuiltCluster, build_cluster
from repro.cluster.scenario import (
    PairResult,
    SingleResult,
    run_pair_scenario,
    run_single_app,
)
from repro.cluster.testbed import Testbed

__all__ = [
    "build_cluster",
    "BuiltCluster",
    "Testbed",
    "run_single_app",
    "run_pair_scenario",
    "SingleResult",
    "PairResult",
]
