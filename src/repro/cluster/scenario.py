"""The Section V evaluation scenarios.

Single-application (Section V-B, Fig 8): one data-intensive app on one SD
platform (duo or quad), compared across three approaches — sequential,
original (non-partitioned) Phoenix, and partition-enabled Phoenix.

Multiple-application (Section V-C, Figs 9/10): a computation-intensive MM
paired with a data-intensive app (WC or SM), executed four ways:

* ``host-only``   — both programs run concurrently on the host node; the
  data lives on the SD node, so the host pulls it over NFS (no partition).
* ``host-part``   — like host-only but partition-enabled on the host.
* ``trad-sd``     — traditional smart storage: the SD node has a
  single-core processor and runs the data app *sequentially* (invoked via
  smartFAM); MM runs on the host.
* ``mcsd-nopart`` — multicore SD runs the data app with original Phoenix.
* ``mcsd``        — the full McSD framework: multicore SD runs the data
  app partition-enabled (the paper uses 600 MB fragments); MM on the host.

Every scenario builds a fresh deterministic testbed, so runs are
independent and reproducible.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.apps.matmul import make_matmul_spec, matmul_input
from repro.apps.stringmatch import make_stringmatch_spec
from repro.apps.wordcount import make_wordcount_spec
from repro.cluster.testbed import Testbed
from repro.config import CELERON_450, CPUSpec, DUO_E4400, QUAD_Q9400
from repro.errors import ConfigError, PhoenixMemoryError
from repro.phoenix.api import InputSpec, MapReduceSpec
from repro.phoenix.runtime import PhoenixRuntime
from repro.partition.extended import ExtendedPhoenixRuntime
from repro.units import MB
from repro.workloads.keys import encrypted_input
from repro.workloads.text import text_input

__all__ = [
    "SingleResult",
    "PairResult",
    "make_data_app",
    "run_single_app",
    "run_pair_scenario",
    "PAIR_SCENARIOS",
    "DEFAULT_MM_N",
    "TRAD_SD_CPU",
]

#: MM problem size for the multi-application pairs: ~10 s on the quad host,
#: comparable to the data app at the small end of the sweep (so neither job
#: trivially hides the other).
DEFAULT_MM_N = 3760

#: the "traditional single-core SD" processor: the same class of silicon as
#: the Duo E4400, with one core
TRAD_SD_CPU = CPUSpec("Single-core SD (E4400-class)", cores=1, clock_ghz=2.0)

PAIR_SCENARIOS = ("host-only", "host-part", "trad-sd", "mcsd-nopart", "mcsd")


def make_data_app(
    app: str, size: int, seed: int = 0
) -> tuple[MapReduceSpec, InputSpec]:
    """(spec, input) for a data-intensive app at a declared size."""
    if app == "wordcount":
        return make_wordcount_spec(), text_input("/data/input", size, seed=seed)
    if app == "stringmatch":
        spec_inp, _keys, _hits = encrypted_input("/data/input", size, seed=seed)
        return make_stringmatch_spec(), spec_inp
    raise ConfigError(f"unknown data app {app!r}")


# ---------------------------------------------------------------------------
# Single-application runs (Fig 8)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class SingleResult:
    """One cell of the Fig 8 sweeps."""

    app: str
    platform: str
    size: int
    approach: str  # sequential | parallel | partitioned
    elapsed: float | None  # None => memory overflow (unsupported)
    fragments: int = 1
    failure: str = ""

    @property
    def supported(self) -> bool:
        """False where the paper reports 'cannot support'."""
        return self.elapsed is not None


_PLATFORM_CPUS: dict[str, CPUSpec] = {
    "duo": DUO_E4400,
    "quad": QUAD_Q9400,
    "single": TRAD_SD_CPU,
    "celeron": CELERON_450,
}


def run_single_app(
    app: str,
    size: int,
    platform: str = "duo",
    approach: str = "partitioned",
    fragment_bytes: int | None = None,
    with_smb: bool = False,
    seed: int = 0,
) -> SingleResult:
    """One single-application measurement on a fresh testbed.

    The data lives on the SD node's local disk and the app runs there —
    this is the Fig 8 setting ("the two SD platforms").
    """
    try:
        cpu = _PLATFORM_CPUS[platform]
    except KeyError:
        raise ConfigError(f"unknown platform {platform!r}") from None
    bed = Testbed(sd_cpu=cpu, with_smb=with_smb, seed=seed)
    spec, inp = make_data_app(app, size, seed=seed)
    sd_view, _host_view, _sd_path = bed.stage_on_sd("input", inp)

    def experiment() -> _t.Generator:
        t0 = bed.sim.now
        if approach == "sequential":
            rt = PhoenixRuntime(bed.sd, bed.config.phoenix)
            res = yield rt.run(spec, sd_view, mode="sequential")
            return res.stats.elapsed, 1
        if approach == "parallel":
            rt = PhoenixRuntime(bed.sd, bed.config.phoenix)
            res = yield rt.run(spec, sd_view, mode="parallel")
            return res.stats.elapsed, 1
        if approach == "partitioned":
            ext = ExtendedPhoenixRuntime(bed.sd, bed.config.phoenix)
            res = yield ext.run(spec, sd_view, fragment_bytes=fragment_bytes)
            return bed.sim.now - t0, res.n_fragments
        raise ConfigError(f"unknown approach {approach!r}")

    try:
        elapsed, fragments = bed.run(experiment(), name=f"single:{app}")
    except PhoenixMemoryError as exc:
        return SingleResult(
            app=app,
            platform=platform,
            size=size,
            approach=approach,
            elapsed=None,
            failure=str(exc),
        )
    return SingleResult(
        app=app,
        platform=platform,
        size=size,
        approach=approach,
        elapsed=elapsed,
        fragments=fragments,
    )


# ---------------------------------------------------------------------------
# Multiple-application runs (Figs 9/10)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class PairResult:
    """One multi-application measurement."""

    scenario: str
    data_app: str
    size: int
    makespan: float | None
    mm_elapsed: float | None = None
    data_elapsed: float | None = None
    failure: str = ""

    @property
    def supported(self) -> bool:
        """False where a job hit the memory wall."""
        return self.makespan is not None


def run_pair_scenario(
    scenario: str,
    data_app: str,
    size: int,
    mm_n: int = DEFAULT_MM_N,
    fragment_bytes: int | None = MB(600),
    with_smb: bool = False,
    smb_params: dict | None = None,
    seed: int = 0,
) -> PairResult:
    """One Fig 9/10 cell: MM + data app under a scenario.

    The data-intensive input always lives on the SD node (that is the
    premise of smart storage); MM's matrices live on the host.
    """
    if scenario not in PAIR_SCENARIOS:
        raise ConfigError(f"unknown scenario {scenario!r}; pick from {PAIR_SCENARIOS}")
    sd_cpu = TRAD_SD_CPU if scenario == "trad-sd" else DUO_E4400
    bed = Testbed(sd_cpu=sd_cpu, with_smb=with_smb, smb_params=smb_params, seed=seed)

    data_spec, data_inp = make_data_app(data_app, size, seed=seed)
    _sd_view, host_view, sd_path = bed.stage_on_sd("input", data_inp)

    mm_spec = make_matmul_spec(mm_n)
    mm_inp = matmul_input("/data/mm", mm_n, payload_n=48, seed=seed)
    mm_staged = bed.stage(bed.host, "/data/mm", mm_inp)

    host_rt = PhoenixRuntime(bed.host, bed.config.phoenix)
    host_ext = ExtendedPhoenixRuntime(bed.host, bed.config.phoenix)
    channel = bed.cluster.channel()

    def mm_job() -> _t.Generator:
        t0 = bed.sim.now
        yield host_rt.run(mm_spec, mm_staged, mode="parallel")
        return bed.sim.now - t0

    def data_job() -> _t.Generator:
        t0 = bed.sim.now
        if scenario == "host-only":
            yield host_rt.run(data_spec, host_view, mode="parallel")
        elif scenario == "host-part":
            yield host_ext.run(data_spec, host_view, fragment_bytes=fragment_bytes)
        elif scenario == "trad-sd":
            yield channel.invoke(
                data_app,
                {
                    "input_path": sd_path,
                    "input_size": size,
                    "mode": "sequential",
                    "app": data_inp.params,
                },
            )
        elif scenario == "mcsd-nopart":
            yield channel.invoke(
                data_app,
                {
                    "input_path": sd_path,
                    "input_size": size,
                    "mode": "parallel",
                    "app": data_inp.params,
                },
            )
        else:  # mcsd
            yield channel.invoke(
                data_app,
                {
                    "input_path": sd_path,
                    "input_size": size,
                    "mode": "partitioned",
                    "fragment_bytes": fragment_bytes,
                    "app": data_inp.params,
                },
            )
        return bed.sim.now - t0

    def experiment() -> _t.Generator:
        t0 = bed.sim.now
        mm_p = bed.sim.spawn(mm_job(), name="pair:mm")
        data_p = bed.sim.spawn(data_job(), name=f"pair:{data_app}")
        res = yield bed.sim.all_of([mm_p, data_p])
        return bed.sim.now - t0, res[mm_p], res[data_p]

    try:
        makespan, mm_elapsed, data_elapsed = bed.run(
            experiment(), name=f"pair:{scenario}"
        )
    except PhoenixMemoryError as exc:
        return PairResult(
            scenario=scenario,
            data_app=data_app,
            size=size,
            makespan=None,
            failure=str(exc),
        )
    return PairResult(
        scenario=scenario,
        data_app=data_app,
        size=size,
        makespan=makespan,
        mm_elapsed=mm_elapsed,
        data_elapsed=data_elapsed,
    )
