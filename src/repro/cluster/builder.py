"""Build a running cluster out of a :class:`~repro.config.ClusterConfig`.

Wiring follows Fig 3 / Section V-A:

* every node hangs off one Gigabit switch;
* each SD node exports ``/export`` over NFS and runs the smartFAM daemon
  with the standard module registry preloaded;
* the host mounts every SD export at ``/mnt/<sd>`` and gets a
  :class:`~repro.smartfam.daemon.HostSmartFAM` endpoint per SD node;
* the compute nodes mount the host's export (the paper: "all the general
  purpose computing nodes share disk space on the host node through NFS");
* SMB background traffic runs among host + compute nodes ("all the nodes
  except the McSD smart-storage node") when enabled.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.apps.smb import SMBTraffic
from repro.config import ClusterConfig, NodeRole
from repro.fs.nfs import NFSClient, NFSMount, NFSServer
from repro.net.fabric import Fabric
from repro.node.node import Node
from repro.sim.kernel import Simulator
from repro.smartfam.daemon import HostSmartFAM, SDSmartFAM
from repro.smartfam.registry import ModuleRegistry, standard_registry

__all__ = ["BuiltCluster", "build_cluster"]


@dataclasses.dataclass
class BuiltCluster:
    """A live cluster: simulator + nodes + channels."""

    sim: Simulator
    config: ClusterConfig
    fabric: Fabric
    nodes: dict[str, Node]
    host: Node
    sd_nodes: list[Node]
    compute_nodes: list[Node]
    sd_daemons: dict[str, SDSmartFAM]
    host_channels: dict[str, HostSmartFAM]
    host_mounts: dict[str, NFSMount]
    smb: SMBTraffic | None

    def node(self, name: str) -> Node:
        """Node by name."""
        return self.nodes[name]

    def sd(self, index: int = 0) -> Node:
        """The index-th SD node."""
        return self.sd_nodes[index]

    @property
    def sd_channels(self) -> list[HostSmartFAM]:
        """The host's smartFAM channels, one per SD node, in SD-node order.

        The uniform N-SD accessor: ``sd_channels[i]`` talks to
        ``sd_nodes[i]`` regardless of how many storage nodes the config
        declared (scenarios must not hardwire "the one SD node").
        """
        return [self.host_channels[n.name] for n in self.sd_nodes]

    @property
    def sd_names(self) -> list[str]:
        """SD node names in ``sd_nodes`` order."""
        return [n.name for n in self.sd_nodes]

    def channel(self, sd_name: str = "") -> HostSmartFAM:
        """The host's smartFAM channel to an SD node (default: first)."""
        if not sd_name:
            sd_name = self.sd_nodes[0].name
        return self.host_channels[sd_name]

    def mount(self, sd_name: str = "") -> NFSMount:
        """The host's NFS mount of an SD export (default: first)."""
        if not sd_name:
            sd_name = self.sd_nodes[0].name
        return self.host_mounts[sd_name]


def build_cluster(
    config: ClusterConfig,
    registry: ModuleRegistry | None = None,
    with_smb: bool = False,
    smb_params: dict | None = None,
    trace: bool = False,
) -> BuiltCluster:
    """Assemble and start the testbed described by ``config``.

    ``smb_params`` are keyword arguments for
    :class:`~repro.apps.smb.SMBTraffic` (message_bytes, interval, ...).
    """
    sim = Simulator(seed=config.seed, trace=trace)
    fabric = Fabric(sim, config.network)
    registry = registry or standard_registry()

    nodes: dict[str, Node] = {}
    for ncfg in config.nodes:
        latency = (
            config.smartfam.inotify_latency if ncfg.role == NodeRole.SD else 0.0
        )
        nodes[ncfg.name] = Node(sim, ncfg, fabric, inotify_latency=latency)

    hosts = [n for n in nodes.values() if n.config.role == NodeRole.HOST]
    if len(hosts) != 1:
        from repro.errors import ConfigError

        raise ConfigError(f"expected exactly one host node, got {len(hosts)}")
    host = hosts[0]
    sd_nodes = [n for n in nodes.values() if n.config.role == NodeRole.SD]
    compute_nodes = [n for n in nodes.values() if n.config.role == NodeRole.COMPUTE]

    # SD side: NFS export + smartFAM daemon with preloaded modules.
    sd_daemons: dict[str, SDSmartFAM] = {}
    host_channels: dict[str, HostSmartFAM] = {}
    host_mounts: dict[str, NFSMount] = {}
    host_nfs_client = NFSClient(host)
    for sd in sd_nodes:
        sd.fs.vfs.mkdir("/export", parents=True)
        NFSServer(sd, export_root="/export")
        sd_daemons[sd.name] = SDSmartFAM(
            sd, registry, cfg=config.smartfam, phoenix_cfg=config.phoenix
        )
        mount = NFSMount(host_nfs_client, sd.name)
        mount.remote_tier_spec = sd.config.tier
        host.add_mount(f"/mnt/{sd.name}", mount)
        host_mounts[sd.name] = mount
        host_channels[sd.name] = HostSmartFAM(host, mount, cfg=config.smartfam)

    # Compute side: the host exports /share, compute nodes mount it.
    host.fs.vfs.mkdir("/share", parents=True)
    NFSServer(host, export_root="/share")
    for comp in compute_nodes:
        client = NFSClient(comp)
        comp.add_mount("/mnt/host", NFSMount(client, host.name))

    smb: SMBTraffic | None = None
    participants = [host, *compute_nodes]
    if with_smb and len(participants) >= 2:
        smb = SMBTraffic(participants, **(smb_params or {}))
        smb.start()

    return BuiltCluster(
        sim=sim,
        config=config,
        fabric=fabric,
        nodes=nodes,
        host=host,
        sd_nodes=sd_nodes,
        compute_nodes=compute_nodes,
        sd_daemons=sd_daemons,
        host_channels=host_channels,
        host_mounts=host_mounts,
        smb=smb,
    )
