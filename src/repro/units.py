"""Byte and time unit helpers used throughout the McSD reproduction.

The simulator's clock is a ``float`` number of **seconds**; data sizes are
``int`` numbers of **bytes**.  All user-facing configuration goes through
these helpers so that calibration constants in :mod:`repro.config` read the
same way the paper reports them (``GiB(2)`` of memory, ``Gbit(1)`` Ethernet,
and so on).
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "KiB",
    "MiB",
    "GiB",
    "Kbit",
    "Mbit",
    "Gbit",
    "usec",
    "msec",
    "sec",
    "minutes",
    "parse_bytes",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
]


def KB(n: float) -> int:
    """Decimal kilobytes -> bytes."""
    return int(n * 1_000)


def MB(n: float) -> int:
    """Decimal megabytes -> bytes (the paper's "500M" etc. are decimal)."""
    return int(n * 1_000_000)


def GB(n: float) -> int:
    """Decimal gigabytes -> bytes."""
    return int(n * 1_000_000_000)


def KiB(n: float) -> int:
    """Binary kibibytes -> bytes."""
    return int(n * 1024)


def MiB(n: float) -> int:
    """Binary mebibytes -> bytes."""
    return int(n * 1024**2)


def GiB(n: float) -> int:
    """Binary gibibytes -> bytes (RAM sizes)."""
    return int(n * 1024**3)


def Kbit(n: float) -> float:
    """Kilobits/s -> bytes/s."""
    return n * 1_000 / 8.0


def Mbit(n: float) -> float:
    """Megabits/s -> bytes/s."""
    return n * 1_000_000 / 8.0


def Gbit(n: float) -> float:
    """Gigabits/s -> bytes/s (1 GbE ~ 125 MB/s raw)."""
    return n * 1_000_000_000 / 8.0


def usec(n: float) -> float:
    """Microseconds -> seconds."""
    return n * 1e-6


def msec(n: float) -> float:
    """Milliseconds -> seconds."""
    return n * 1e-3


def sec(n: float) -> float:
    """Seconds -> seconds (documentation marker)."""
    return float(n)


def minutes(n: float) -> float:
    """Minutes -> seconds."""
    return n * 60.0


def parse_bytes(text: str) -> int:
    """Parse the paper's size notation: '600M', '1.25G', '4096', '512K'.

    Decimal units, matching the paper's axis labels (1G = 10^9).
    """
    s = str(text).strip().upper()
    if not s:
        raise ValueError("empty size")
    mult = 1.0
    if s.endswith("B"):
        s = s[:-1]
    if s and s[-1] in "KMGT":
        mult = {"K": 1e3, "M": 1e6, "G": 1e9, "T": 1e12}[s[-1]]
        s = s[:-1]
    try:
        value = float(s)
    except ValueError:
        raise ValueError(f"cannot parse size {text!r}") from None
    if value < 0:
        raise ValueError(f"negative size {text!r}")
    return int(value * mult)


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (decimal units, like the paper)."""
    n = float(n)
    for unit, div in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if abs(n) >= div:
            return f"{n / div:.2f}{unit}"
    return f"{int(n)}B"


def fmt_time(t: float) -> str:
    """Human-readable duration in seconds."""
    if t >= 60.0:
        m, s = divmod(t, 60.0)
        return f"{int(m)}m{s:05.2f}s"
    if t >= 1.0:
        return f"{t:.3f}s"
    if t >= 1e-3:
        return f"{t * 1e3:.3f}ms"
    return f"{t * 1e6:.1f}us"


def fmt_rate(bytes_per_sec: float) -> str:
    """Human-readable throughput."""
    return fmt_bytes(bytes_per_sec) + "/s"
