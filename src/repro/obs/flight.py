"""The flight recorder: an always-on black box for post-mortem triage.

A :class:`FlightRecorder` keeps a bounded ring of the most recent
observability events — closed spans, flat records, and counter deltas —
cheap enough to leave enabled in production runs where full tracing is
off.  When something dies (a chaos gate fails, a worker crash exhausts
its retries), the ring is dumped to a JSONL "black box" file: the last
few thousand events leading up to the failure, with provenance, readable
by ``grep``/``jq`` and by :func:`read_dump`.

Cost discipline: the ring reuses :class:`~repro.obs.records.RecordLog`'s
bounded-deque-plus-dropped-counter shape (``deque(maxlen=...)`` eviction
is O(1) and counted, never silent), entries are plain tuples (no dict
per event), and the only work per event is one ``deque.append``.  The
overhead gate in ``benchmarks/bench_obs_overhead.py`` holds the
recorder-on cost under the same 2% bar as tracing-off instrumentation.

Installation: pass ``flight=True`` (or a capacity, or an instance) to
:class:`~repro.obs.registry.Observability`, or flip the process-wide
default with :func:`install_default` / the ``REPRO_FLIGHT`` environment
variable so every registry created afterwards records.  Live recorders
register themselves in a weak set; :func:`dump_live` snapshots all of
them into a directory — the one-call hook ``tools/chaos_soak.py`` and
``tools/perf_gate.py`` use on gate failure.
"""

from __future__ import annotations

import collections
import json
import os
import time
import typing as _t
import weakref

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import Span

__all__ = [
    "FlightRecorder",
    "FlightEntry",
    "install_default",
    "default_capacity",
    "dump_live",
    "read_dump",
]

#: default ring capacity (events, not bytes)
DEFAULT_CAPACITY = 4096

#: process-wide default: None = off, int = capacity for new registries
_default_capacity: int | None = None

#: every live recorder, for one-call failure dumps
_LIVE: "weakref.WeakSet[FlightRecorder]" = weakref.WeakSet()

#: bounded strong refs to the most recently created recorders — a gate
#: that fails *after* a case's registry went out of scope can still dump
#: the case's ring.  Bounded, so long-lived processes hold at most this
#: many dead rings.
_RECENT: "collections.deque[FlightRecorder]" = collections.deque(maxlen=8)


class FlightEntry(_t.NamedTuple):
    """One ring entry.  ``kind`` is ``span`` | ``record`` | ``count``."""

    kind: str
    time: float
    name: str
    detail: object

    def to_dict(self) -> dict:
        """The JSONL shape."""
        out: dict = {"type": self.kind, "time": self.time, "name": self.name}
        if self.kind == "span":
            dur, cat, track = self.detail  # type: ignore[misc]
            out.update(dur=dur, cat=cat, track=track)
        elif self.kind == "count":
            out["amount"] = self.detail
        else:
            out["detail"] = self.detail
        return out


def install_default(capacity: int | None = DEFAULT_CAPACITY) -> None:
    """Set the process-wide default for new :class:`Observability` objects.

    ``capacity=None`` turns the default off again.  Existing registries
    are unaffected.  The ``REPRO_FLIGHT`` environment variable (``1`` or
    a capacity) does the same at import time.
    """
    global _default_capacity
    _default_capacity = capacity


def default_capacity() -> int | None:
    """The current process-wide default (None = recorders off)."""
    return _default_capacity


def _env_default() -> None:
    raw = os.environ.get("REPRO_FLIGHT", "").strip()
    if not raw or raw == "0":
        return
    try:
        cap = int(raw)
    except ValueError:
        cap = DEFAULT_CAPACITY
    install_default(cap if cap > 1 else DEFAULT_CAPACITY)


_env_default()


class FlightRecorder:
    """A bounded ring of recent spans/records/counter deltas.

    One per :class:`~repro.obs.registry.Observability`; the registry
    funnels every counter bump and flat record through :meth:`note_count`
    / :meth:`note_record` even when tracing is disabled, and closed spans
    through :meth:`note_span` when tracing is on.
    """

    __slots__ = ("capacity", "entries", "dropped", "run_id", "__weakref__")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, run_id: str = ""):
        if capacity < 1:
            raise ValueError(f"flight capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.entries: collections.deque[FlightEntry] = collections.deque(
            maxlen=capacity
        )
        #: entries evicted by the ring since the last clear
        self.dropped = 0
        #: the owning registry's run id (stamped into dumps)
        self.run_id = run_id
        _LIVE.add(self)
        _RECENT.append(self)

    # -- the hot paths (one deque.append each) -------------------------------

    def note_span(self, span: "Span") -> None:
        """Record one closed span (name, window, cat, track)."""
        entries = self.entries
        if len(entries) == self.capacity:
            self.dropped += 1
        entries.append(
            FlightEntry(
                "span", span.t0, span.name, (span.dur, span.cat, span.track)
            )
        )

    def note_record(self, kind: str, time_: float, detail: str) -> None:
        """Record one flat trace record."""
        entries = self.entries
        if len(entries) == self.capacity:
            self.dropped += 1
        entries.append(FlightEntry("record", time_, kind, detail))

    def note_count(self, name: str, amount: float, time_: float) -> None:
        """Record one counter delta."""
        entries = self.entries
        if len(entries) == self.capacity:
            self.dropped += 1
        entries.append(FlightEntry("count", time_, name, amount))

    # -- lifecycle / dump ------------------------------------------------------

    def clear(self) -> None:
        """Drop the ring and the drop counter."""
        self.entries.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> _t.Iterator[FlightEntry]:
        return iter(self.entries)

    def dump(
        self,
        path: str,
        reason: str = "",
        extra: dict | None = None,
        counters: dict | None = None,
    ) -> str:
        """Write the ring (oldest first) as a JSONL black box; returns path.

        The leading line is a ``flight_meta`` object with the run id, the
        dump reason, wall-clock dump time, drop count, and optionally the
        owning registry's counter snapshot.
        """
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        meta = {
            "type": "flight_meta",
            "run_id": self.run_id,
            "reason": reason,
            "dumped_at": time.time(),
            "entries": len(self.entries),
            "dropped": self.dropped,
            "capacity": self.capacity,
        }
        if counters:
            meta["counters"] = dict(counters)
        if extra:
            meta.update(extra)
        with open(path, "w") as f:
            f.write(json.dumps(meta) + "\n")
            for entry in self.entries:
                f.write(json.dumps(entry.to_dict()) + "\n")
        return path


def dump_live(
    dump_dir: str, reason: str = "", prefix: str = "flight"
) -> list[str]:
    """Dump every live recorder into ``dump_dir``; returns written paths.

    File names carry the run id so dumps from concurrent registries in
    one process do not collide.  Recorders with no entries are skipped —
    an empty black box would only muddy triage.
    """
    paths = []
    for i, rec in enumerate(sorted(_LIVE, key=id)):
        if not len(rec):
            continue
        name = f"{prefix}-{rec.run_id or i}.jsonl"
        paths.append(rec.dump(os.path.join(dump_dir, name), reason=reason))
    return paths


def read_dump(path: str) -> tuple[dict, list[dict]]:
    """Read a black-box file back as ``(meta, entries)``."""
    meta: dict = {}
    entries: list[dict] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("type") == "flight_meta":
                meta = obj
            else:
                entries.append(obj)
    return meta, entries
