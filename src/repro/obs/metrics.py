"""Metrics: counters, gauges, histograms, and time series.

Counters and gauges are always-on (a dict update per touch); histograms
sort lazily so ``observe`` stays O(1) and percentile queries pay one sort
per batch of inserts.  :class:`TimeSeries` keeps the step-function
semantics the simulator's samplers rely on (it moved here from
``repro.sim.trace``, which re-exports it for compatibility).
"""

from __future__ import annotations

import collections
import math
import typing as _t

__all__ = ["TimeSeries", "Histogram", "MetricsRegistry"]


class TimeSeries:
    """(time, value) samples for one observable, with summary stats."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def sample(self, t: float, v: float) -> None:
        """Append a sample."""
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def last(self) -> float:
        """Most recent value (0.0 if empty)."""
        return self.values[-1] if self.values else 0.0

    def mean(self) -> float:
        """Arithmetic mean of the sampled values (0.0 if empty)."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    def maximum(self) -> float:
        """Largest sampled value (0.0 if empty)."""
        return max(self.values) if self.values else 0.0

    def time_weighted_mean(self, until: float | None = None) -> float:
        """Mean weighted by holding time (step-function interpretation).

        Negative holding intervals (an ``until`` earlier than the last
        sample, or out-of-order sample times) contribute zero weight; if
        every interval is empty the last value is returned, matching the
        single-sample case.
        """
        if not self.values:
            return 0.0
        end = until if until is not None else self.times[-1]
        total = 0.0
        span = 0.0
        for i, v in enumerate(self.values):
            t0 = self.times[i]
            t1 = self.times[i + 1] if i + 1 < len(self.times) else end
            dt = max(0.0, t1 - t0)
            total += v * dt
            span += dt
        return total / span if span > 0 else self.values[-1]


class Histogram:
    """A value distribution with nearest-rank percentiles."""

    __slots__ = ("name", "_values", "_dirty")

    def __init__(self, name: str):
        self.name = name
        self._values: list[float] = []
        self._dirty = False

    def observe(self, value: float) -> None:
        """Record one value."""
        self._values.append(value)
        self._dirty = True

    def _sorted(self) -> list[float]:
        if self._dirty:
            self._values.sort()
            self._dirty = False
        return self._values

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (0 < p <= 100); 0.0 if empty."""
        values = self._sorted()
        if not values:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * len(values)))
        return values[min(rank, len(values)) - 1]

    @property
    def p50(self) -> float:
        """Median."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th percentile."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th percentile."""
        return self.percentile(99)

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    @property
    def total(self) -> float:
        """Sum of observations."""
        return sum(self._values)

    def mean(self) -> float:
        """Arithmetic mean (0.0 if empty)."""
        return self.total / len(self._values) if self._values else 0.0

    def summary(self) -> dict:
        """count/total/mean/min/max/p50/p95/p99 as one dict."""
        values = self._sorted()
        if not values:
            return {"count": 0}
        return {
            "count": len(values),
            "total": self.total,
            "mean": self.mean(),
            "min": values[0],
            "max": values[-1],
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms."""

    __slots__ = ("counters", "gauges", "_histograms")

    def __init__(self) -> None:
        self.counters: collections.Counter[str] = collections.Counter()
        self.gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    def count(self, name: str, amount: float = 1) -> None:
        """Bump a named counter (always on; counters are cheap)."""
        self.counters[name] += amount

    def gauge(self, name: str, value: float) -> None:
        """Set a named gauge to its latest value."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into a named histogram."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name)
        hist.observe(value)

    def histogram(self, name: str) -> Histogram:
        """The named histogram (created empty if missing)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name)
        return hist

    @property
    def histograms(self) -> dict[str, Histogram]:
        """All histograms by name."""
        return self._histograms

    def snapshot(self) -> dict:
        """A JSON-safe dump: counters, gauges, histogram summaries."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {n: h.summary() for n, h in self._histograms.items()},
        }

    def clear(self) -> None:
        """Drop every metric."""
        self.counters.clear()
        self.gauges.clear()
        self._histograms.clear()
