"""The flat trace-record stream: a kind-indexed ring buffer.

This is the storage behind :class:`~repro.sim.trace.Tracer`'s ``records``:
a bounded deque of ``(kind, time, detail)`` tuples.  Two things the seed
deque did not provide:

* ``of_kind`` is O(matching records) instead of a full linear scan — a
  per-kind index is maintained on append (the smartFAM protocol tests
  call ``of_kind`` repeatedly per job);
* overflow is no longer silent — evicting the oldest record bumps
  :attr:`RecordLog.dropped`, so benchmarks and tests can detect that the
  window was too small for the run they are asserting on.
"""

from __future__ import annotations

import collections
import typing as _t

__all__ = ["TraceRecord", "RecordLog"]


class TraceRecord(_t.NamedTuple):
    """A single trace entry."""

    kind: str
    time: float
    detail: str


class RecordLog:
    """Bounded record stream with a per-kind index and a drop counter."""

    __slots__ = ("keep", "entries", "dropped", "_by_kind")

    def __init__(self, keep: int = 100_000):
        self.keep = keep
        self.entries: collections.deque[TraceRecord] = collections.deque(maxlen=keep)
        #: records evicted by the ring buffer since the last clear
        self.dropped = 0
        self._by_kind: dict[str, collections.deque[TraceRecord]] = {}

    def append(self, record: TraceRecord) -> None:
        """Store one record, evicting (and counting) the oldest if full."""
        entries = self.entries
        if len(entries) == self.keep:
            # The evicted record is the globally oldest, hence also the
            # oldest of its kind: the index stays consistent with a popleft.
            evicted = entries[0]
            self._by_kind[evicted.kind].popleft()
            self.dropped += 1
        entries.append(record)
        by_kind = self._by_kind.get(record.kind)
        if by_kind is None:
            by_kind = self._by_kind[record.kind] = collections.deque()
        by_kind.append(record)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All stored records with the given kind (oldest first)."""
        return list(self._by_kind.get(kind, ()))

    def kinds(self) -> list[str]:
        """Kinds with at least one stored record."""
        return [k for k, dq in self._by_kind.items() if dq]

    def clear(self) -> None:
        """Drop all records, the index, and the drop counter."""
        self.entries.clear()
        self._by_kind.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> _t.Iterator[TraceRecord]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.entries[index]
