"""Observability: spans, metrics, records, and trace export.

The ``repro.obs`` package is the repo's single instrumentation layer:

* :class:`~repro.obs.spans.Span` / :class:`~repro.obs.spans.SpanStore` —
  hierarchical span tracing (context-manager API, parent/child nesting per
  track, attributes, sim-clock *and* wall-clock timestamps),
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  histograms with p50/p95/p99,
* :class:`~repro.obs.records.RecordLog` — the flat (kind, time, detail)
  record stream the old :class:`~repro.sim.trace.Tracer` exposed, now
  kind-indexed and with a ``dropped`` overflow counter,
* :class:`~repro.obs.registry.Observability` — one object tying them
  together, owned by the :class:`~repro.sim.kernel.Simulator` (as
  ``sim.obs``) or standing alone for the real engine and benchmarks,
* :mod:`~repro.obs.export` — Chrome-trace/Perfetto JSON and JSONL
  exporters plus the loader behind ``tools/trace_view.py``,
* :class:`~repro.obs.flight.FlightRecorder` — a bounded always-on ring
  of recent events, dumped as a JSONL black box on failure,
* :class:`~repro.obs.slo.SLOTracker` /
  :class:`~repro.obs.slo.HealthReport` — per-tenant latency objectives,
  burn rates, and the scheduler's health snapshot,
* :mod:`~repro.obs.critpath` — critical-path extraction with per-edge
  slack over a recorded span tree.

Tracing is zero-cost when disabled: :meth:`Observability.span` returns the
shared :data:`~repro.obs.spans.NULL_SPAN` singleton after one attribute
check, and hot-path callers guard on ``obs.enabled`` before building any
detail strings.
"""

from repro.obs.critpath import critical_path, format_critical_path, job_critical_path
from repro.obs.flight import FlightRecorder, dump_live, install_default, read_dump
from repro.obs.metrics import Histogram, MetricsRegistry, TimeSeries
from repro.obs.records import RecordLog, TraceRecord
from repro.obs.registry import Observability
from repro.obs.slo import (
    HealthReport,
    SLOPolicy,
    SLOStatus,
    SLOTracker,
    build_health_report,
)
from repro.obs.spans import NULL_SPAN, NullSpan, Span, SpanStore

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "RecordLog",
    "TraceRecord",
    "Observability",
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "SpanStore",
    "FlightRecorder",
    "install_default",
    "dump_live",
    "read_dump",
    "SLOPolicy",
    "SLOStatus",
    "SLOTracker",
    "HealthReport",
    "build_health_report",
    "critical_path",
    "job_critical_path",
    "format_critical_path",
]
