"""The :class:`Observability` registry: one object per run.

The simulator owns one as ``sim.obs`` (its primary clock bound to the
simulated clock); the real engine and the benchmarks create standalone
instances whose primary clock is host wall time (``time.time``, which is
machine-wide, so spans shipped back from worker *processes* land on the
same timeline).

Everything funnels through here:

* ``span(...)`` — hierarchical spans (``force=True`` records even with
  tracing off, for the handful of per-job phase spans that double as the
  engine's own accounting),
* ``count``/``gauge``/``observe`` — the metrics registry (always on),
* ``record(...)`` — the flat record stream (on only when enabled),
* ``sample(...)`` — named time series.
"""

from __future__ import annotations

import time
import typing as _t

from repro.obs.metrics import MetricsRegistry, TimeSeries
from repro.obs.records import RecordLog, TraceRecord
from repro.obs.spans import NULL_SPAN, NullSpan, Span, SpanStore

__all__ = ["Observability"]


class Observability:
    """Spans + metrics + records + series for one run."""

    __slots__ = ("enabled", "records", "metrics", "series", "spans", "_clock")

    def __init__(
        self,
        enabled: bool = False,
        keep_records: int = 100_000,
        clock: _t.Callable[[], float] | None = None,
    ):
        #: master switch for spans and records (metrics stay on)
        self.enabled = enabled
        self.records = RecordLog(keep_records)
        self.metrics = MetricsRegistry()
        self.series: dict[str, TimeSeries] = {}
        self._clock = clock or time.time
        self.spans = SpanStore(self.now)

    # -- clock -----------------------------------------------------------------

    def now(self) -> float:
        """Current primary-clock time."""
        return self._clock()

    def bind_clock(self, clock: _t.Callable[[], float]) -> None:
        """Repoint the primary clock (the simulator binds its sim clock)."""
        self._clock = clock

    # -- spans -----------------------------------------------------------------

    def span(
        self,
        name: str,
        cat: str = "",
        track: str = "main",
        force: bool = False,
        **attrs: object,
    ) -> Span | NullSpan:
        """Open a span (context manager).  Disabled tracing returns the
        shared :data:`~repro.obs.spans.NULL_SPAN` unless ``force`` is set.
        """
        if not (self.enabled or force):
            return NULL_SPAN
        return self.spans.open(name, cat, track, attrs)

    def add_span(
        self,
        name: str,
        t0: float,
        t1: float,
        cat: str = "",
        track: str = "main",
        parent: Span | None = None,
        wall_dur: float | None = None,
        attrs: dict | None = None,
    ) -> Span | NullSpan:
        """Stitch a pre-measured span (worker segment) into the trace."""
        if not self.enabled:
            return NULL_SPAN
        if isinstance(parent, NullSpan):
            parent = None
        return self.spans.add(
            name, t0, t1, cat=cat, track=track, parent=parent,
            wall_dur=wall_dur, attrs=attrs,
        )

    # -- records / metrics / series ------------------------------------------

    def record(self, kind: str, time_: float, detail: str = "") -> None:
        """Append a flat trace record if tracing is enabled."""
        if self.enabled:
            self.records.append(TraceRecord(kind, time_, detail))

    def count(self, name: str, amount: float = 1) -> None:
        """Bump a named counter (always on)."""
        self.metrics.count(name, amount)

    def gauge(self, name: str, value: float) -> None:
        """Set a named gauge (always on)."""
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        """Histogram observation — only when tracing is enabled (the
        histograms grow unbounded, unlike counters)."""
        if self.enabled:
            self.metrics.observe(name, value)

    def sample(self, name: str, t: float, value: float) -> None:
        """Record a time-series sample under ``name``."""
        ts = self.series.get(name)
        if ts is None:
            ts = self.series[name] = TimeSeries(name)
        ts.sample(t, value)

    # -- lifecycle -------------------------------------------------------------

    def clear(self) -> None:
        """Drop spans, records, metrics, and series."""
        self.spans.clear()
        self.records.clear()
        self.metrics.clear()
        self.series.clear()
