"""The :class:`Observability` registry: one object per run.

The simulator owns one as ``sim.obs`` (its primary clock bound to the
simulated clock); the real engine and the benchmarks create standalone
instances whose primary clock is host wall time (``time.time``, which is
machine-wide, so spans shipped back from worker *processes* land on the
same timeline).

Everything funnels through here:

* ``span(...)`` — hierarchical spans (``force=True`` records even with
  tracing off, for the handful of per-job phase spans that double as the
  engine's own accounting),
* ``count``/``gauge``/``observe`` — the metrics registry (always on),
* ``record(...)`` — the flat record stream (on only when enabled),
* ``sample(...)`` — named time series.

Every registry carries a :attr:`run_id` — a short random token stamped
into every export so loaders can refuse to mix artifacts from different
runs — and optionally a :class:`~repro.obs.flight.FlightRecorder`, a
bounded always-on ring of recent events that counter bumps and records
feed even when tracing is off, dumped as a JSONL black box on failure.
"""

from __future__ import annotations

import time
import typing as _t
import uuid

from repro.obs import flight as _flight
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry, TimeSeries
from repro.obs.records import RecordLog, TraceRecord
from repro.obs.spans import NULL_SPAN, NullSpan, Span, SpanStore

__all__ = ["Observability"]


def _new_run_id() -> str:
    return uuid.uuid4().hex[:12]


class Observability:
    """Spans + metrics + records + series for one run."""

    __slots__ = (
        "enabled", "records", "metrics", "series", "spans", "flight",
        "run_id", "_clock",
    )

    def __init__(
        self,
        enabled: bool = False,
        keep_records: int = 100_000,
        clock: _t.Callable[[], float] | None = None,
        flight: "FlightRecorder | bool | int | None" = None,
    ):
        #: master switch for spans and records (metrics stay on)
        self.enabled = enabled
        #: provenance token stamped into every export from this registry
        self.run_id = _new_run_id()
        self.records = RecordLog(keep_records)
        self.metrics = MetricsRegistry()
        self.series: dict[str, TimeSeries] = {}
        self._clock = clock or time.time
        self.spans = SpanStore(self.now)
        #: the always-on black-box ring (None: not recording)
        self.flight: FlightRecorder | None = None
        if flight is None:
            default = _flight.default_capacity()
            if default is not None:
                self.enable_flight(default)
        elif flight is not False:
            self.enable_flight(flight)

    # -- clock -----------------------------------------------------------------

    def now(self) -> float:
        """Current primary-clock time."""
        return self._clock()

    def bind_clock(self, clock: _t.Callable[[], float]) -> None:
        """Repoint the primary clock (the simulator binds its sim clock)."""
        self._clock = clock

    # -- flight recorder -------------------------------------------------------

    def enable_flight(
        self, flight: "FlightRecorder | bool | int" = True
    ) -> FlightRecorder:
        """Attach (or replace) the flight recorder; returns it.

        ``True`` uses the default capacity, an int sets it, an instance
        is adopted as-is.  Closed spans, flat records, and counter deltas
        start landing in the ring immediately.
        """
        if isinstance(flight, FlightRecorder):
            rec = flight
            rec.run_id = self.run_id
        elif flight is True:
            rec = FlightRecorder(run_id=self.run_id)
        else:
            rec = FlightRecorder(capacity=int(flight), run_id=self.run_id)
        self.flight = rec
        self.spans.on_close = rec.note_span
        return rec

    def disable_flight(self) -> None:
        """Detach the flight recorder (the ring is discarded)."""
        self.flight = None
        self.spans.on_close = None

    # -- spans -----------------------------------------------------------------

    def span(
        self,
        name: str,
        cat: str = "",
        track: str = "main",
        force: bool = False,
        **attrs: object,
    ) -> Span | NullSpan:
        """Open a span (context manager).  Disabled tracing returns the
        shared :data:`~repro.obs.spans.NULL_SPAN` unless ``force`` is set.
        """
        if not (self.enabled or force):
            return NULL_SPAN
        return self.spans.open(name, cat, track, attrs)

    def add_span(
        self,
        name: str,
        t0: float,
        t1: float,
        cat: str = "",
        track: str = "main",
        parent: Span | None = None,
        wall_dur: float | None = None,
        attrs: dict | None = None,
    ) -> Span | NullSpan:
        """Stitch a pre-measured span (worker segment) into the trace."""
        if not self.enabled:
            return NULL_SPAN
        if isinstance(parent, NullSpan):
            parent = None
        return self.spans.add(
            name, t0, t1, cat=cat, track=track, parent=parent,
            wall_dur=wall_dur, attrs=attrs,
        )

    # -- records / metrics / series ------------------------------------------

    def record(self, kind: str, time_: float, detail: str = "") -> None:
        """Append a flat trace record if tracing is enabled.

        The flight recorder, when attached, sees the record regardless of
        the tracing switch — that is what makes the black box useful in
        production runs where full tracing is off.
        """
        if self.flight is not None:
            self.flight.note_record(kind, time_, detail)
        if self.enabled:
            self.records.append(TraceRecord(kind, time_, detail))

    def count(self, name: str, amount: float = 1) -> None:
        """Bump a named counter (always on)."""
        self.metrics.count(name, amount)
        if self.flight is not None:
            self.flight.note_count(name, amount, self._clock())

    def gauge(self, name: str, value: float) -> None:
        """Set a named gauge (always on)."""
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        """Histogram observation — only when tracing is enabled (the
        histograms grow unbounded, unlike counters)."""
        if self.enabled:
            self.metrics.observe(name, value)

    def sample(self, name: str, t: float, value: float) -> None:
        """Record a time-series sample under ``name``."""
        ts = self.series.get(name)
        if ts is None:
            ts = self.series[name] = TimeSeries(name)
        ts.sample(t, value)

    # -- failure dumps ---------------------------------------------------------

    def dump_blackbox(
        self, path: str, reason: str = "", extra: dict | None = None
    ) -> str | None:
        """Dump the flight ring (with this run's counters) to ``path``.

        Returns the written path, or ``None`` when no recorder is
        attached — callers print the path in their failure message.
        """
        if self.flight is None:
            return None
        return self.flight.dump(
            path, reason=reason, extra=extra,
            counters=dict(self.metrics.counters),
        )

    # -- lifecycle -------------------------------------------------------------

    def clear(self) -> None:
        """Drop spans, records, metrics, series, and the flight ring."""
        self.spans.clear()
        self.records.clear()
        self.metrics.clear()
        self.series.clear()
        if self.flight is not None:
            self.flight.clear()
