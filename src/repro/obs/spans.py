"""Hierarchical spans: the timing primitive behind every breakdown.

A :class:`Span` is one named interval with a category, a *track* (the
logical timeline it lives on — a node, a worker process, a benchmark), an
attribute dict, and two clocks: the primary clock ``t0``/``t1`` (simulated
seconds inside the simulator, wall seconds outside it) and the host
wall-clock ``wall0``/``wall1`` (always ``time.perf_counter``), so a trace
of a simulation shows both where *simulated* time went and what the
simulation itself cost to compute.

Nesting is per track: opening a span makes it the parent of every span
subsequently opened on the same track until it closes.  Simulated
processes interleave, so concurrent protocol flows must use distinct
tracks (e.g. ``host:wordcount`` vs ``sd0:wordcount``) — the instrumented
layers do exactly that.

When tracing is disabled, span sites cost one method call returning the
shared :data:`NULL_SPAN` singleton — no allocation, no clock reads.
"""

from __future__ import annotations

import time
import typing as _t

__all__ = ["Span", "NullSpan", "NULL_SPAN", "SpanStore"]


class Span:
    """One named interval on a track; a context manager."""

    __slots__ = (
        "id",
        "parent_id",
        "name",
        "cat",
        "track",
        "t0",
        "t1",
        "wall0",
        "wall1",
        "attrs",
        "_store",
    )

    def __init__(
        self,
        store: "SpanStore",
        span_id: int,
        parent_id: int | None,
        name: str,
        cat: str,
        track: str,
        t0: float,
        wall0: float,
        attrs: dict,
    ):
        self._store = store
        self.id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.track = track
        self.t0 = t0
        self.t1: float | None = None
        self.wall0 = wall0
        self.wall1: float | None = None
        self.attrs = attrs

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """End the span at the store's current time (idempotent)."""
        if self.t1 is None and self._store is not None:
            self._store._close(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.close()

    # -- data ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether the span has been closed."""
        return self.t1 is not None

    @property
    def dur(self) -> float:
        """Primary-clock duration (0.0 while still open)."""
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    @property
    def wall_dur(self) -> float:
        """Host wall-clock duration (0.0 while still open)."""
        return (self.wall1 - self.wall0) if self.wall1 is not None else 0.0

    def set(self, **attrs: object) -> "Span":
        """Attach/overwrite attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def children(self) -> list["Span"]:
        """Direct children of this span (creation order).

        Empty for a span detached from its store (e.g. one that crossed a
        pickle boundary inside a result payload).
        """
        if self._store is None:
            return []
        return self._store.children(self)

    # -- pickling --------------------------------------------------------------
    # Spans ride inside result payloads (JobStats.span crosses the smartFAM
    # log file, worker segments cross the multiprocessing pipe).  The store
    # holds the live clock closures and the whole span list, so it must not
    # be dragged along: detach it and let the receiving side see a frozen
    # span (children() == []).

    def __getstate__(self) -> dict:
        return {k: getattr(self, k) for k in self.__slots__ if k != "_store"}

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "_store", None)
        for key, value in state.items():
            object.__setattr__(self, key, value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"dur={self.dur:.6f}" if self.done else "open"
        return f"<Span #{self.id} {self.name} track={self.track} {state}>"


class NullSpan:
    """The do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    id = -1
    parent_id = None
    name = ""
    cat = ""
    track = ""
    t0 = 0.0
    t1 = 0.0
    wall0 = 0.0
    wall1 = 0.0
    done = True
    dur = 0.0
    wall_dur = 0.0

    @property
    def attrs(self) -> dict:
        """Always a fresh empty dict (mutations are discarded)."""
        return {}

    def close(self) -> None:
        """No-op."""

    def set(self, **attrs: object) -> "NullSpan":
        """No-op; returns self."""
        return self

    def children(self) -> list:
        """Always empty."""
        return []

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<NullSpan>"


#: the shared disabled-tracing span
NULL_SPAN = NullSpan()


class SpanStore:
    """All spans of one run, with per-track open stacks.

    ``now`` is the primary clock (bound to the simulator's clock inside a
    simulation, wall time outside); ``wall`` is always a host monotonic
    clock.  Spans are kept in creation order, parents before children.
    """

    __slots__ = ("now", "wall", "spans", "_open", "_next_id", "on_close")

    def __init__(
        self,
        now: _t.Callable[[], float],
        wall: _t.Callable[[], float] = time.perf_counter,
    ):
        self.now = now
        self.wall = wall
        self.spans: list[Span] = []
        self._open: dict[str, list[Span]] = {}
        self._next_id = 1
        #: called with each span as it closes (the flight recorder's tap)
        self.on_close: _t.Callable[[Span], None] | None = None

    def open(self, name: str, cat: str, track: str, attrs: dict) -> Span:
        """Start a span; its parent is the track's innermost open span."""
        stack = self._open.get(track)
        if stack is None:
            stack = self._open[track] = []
        parent_id = stack[-1].id if stack else None
        span = Span(
            self,
            self._next_id,
            parent_id,
            name,
            cat,
            track,
            self.now(),
            self.wall(),
            attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.t1 = self.now()
        span.wall1 = self.wall()
        stack = self._open.get(span.track)
        if stack and span in stack:
            # Usually the top of the stack; removing by identity keeps the
            # store sane if an enclosing span is closed out of order (its
            # still-open children become siblings of the next span).
            stack.remove(span)
        if self.on_close is not None:
            self.on_close(span)

    def add(
        self,
        name: str,
        t0: float,
        t1: float,
        cat: str = "",
        track: str = "main",
        parent: Span | None = None,
        wall_dur: float | None = None,
        attrs: dict | None = None,
    ) -> Span:
        """Record a pre-measured span (e.g. shipped back from a worker)."""
        span = Span(
            self,
            self._next_id,
            parent.id if parent is not None else None,
            name,
            cat,
            track,
            t0,
            0.0,
            dict(attrs or {}),
        )
        self._next_id += 1
        span.t1 = t1
        span.wall1 = wall_dur if wall_dur is not None else (t1 - t0)
        self.spans.append(span)
        return span

    # -- queries -------------------------------------------------------------

    def by_name(self, name: str) -> list[Span]:
        """All spans with the given name, in creation order."""
        return [s for s in self.spans if s.name == name]

    def roots(self) -> list[Span]:
        """Spans with no parent."""
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        """Direct children of a span."""
        return [s for s in self.spans if s.parent_id == span.id]

    def clear(self) -> None:
        """Drop all spans and open stacks."""
        self.spans.clear()
        self._open.clear()
        self._next_id = 1

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> _t.Iterator[Span]:
        return iter(self.spans)
