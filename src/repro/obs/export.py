"""Trace exporters and loader.

Two on-disk formats:

* **Chrome trace / Perfetto JSON** — the ``{"traceEvents": [...]}`` dict
  that ``chrome://tracing`` and https://ui.perfetto.dev load directly.
  Each finished span becomes one complete event (``"ph": "X"``); tracks
  map to thread ids with ``thread_name`` metadata, timestamps are
  microseconds on the primary clock.
* **JSONL** — one JSON object per line (``type`` = ``span`` | ``record``
  | ``meta``), friendlier to grep/jq and streaming consumers.

:func:`load_spans` reads either format back into plain span dicts;
:func:`phase_breakdown` turns them into the per-phase table that
``tools/trace_view.py`` prints and the perf gate embeds in
``BENCH_shuffle.json``.

Every export is stamped with the producing registry's ``run_id``.  The
loaders take an optional ``run_id`` argument: pass the id you expect and
a mismatched file raises :class:`~repro.errors.ProvenanceError` instead
of silently mixing artifacts from different runs; files that predate run
ids produce a single warning.  :func:`load_run_id` reads the stamp.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import typing as _t
import warnings

from repro.errors import ProvenanceError

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import Observability

__all__ = [
    "environment_provenance",
    "chrome_trace",
    "write_chrome",
    "write_jsonl",
    "load_spans",
    "load_metrics",
    "load_series",
    "load_run_id",
    "span_dicts",
    "phase_breakdown",
    "format_breakdown",
]


def environment_provenance() -> dict:
    """Where a measurement ran: python, cpu count, platform."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "argv": list(sys.argv),
    }


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def _span_dict(span) -> dict:
    return {
        "type": "span",
        "id": span.id,
        "parent_id": span.parent_id,
        "name": span.name,
        "cat": span.cat,
        "track": span.track,
        "t0": span.t0,
        "dur": span.dur,
        "wall_dur": span.wall_dur,
        "attrs": _json_safe(span.attrs),
    }


def _series_dicts(obs: "Observability") -> dict:
    """All time series as ``{name: {"times": [...], "values": [...]}}``."""
    return {
        name: {"times": list(ts.times), "values": list(ts.values)}
        for name, ts in obs.series.items()
    }


def span_dicts(obs: "Observability") -> list[dict]:
    """All finished spans as plain dicts (the :func:`load_spans` shape),
    for feeding :func:`phase_breakdown` without an export round trip."""
    return [_span_dict(s) for s in obs.spans if s.done]


def chrome_trace(obs: "Observability", extra: dict | None = None) -> dict:
    """The Chrome-trace/Perfetto dict for one run's spans and counters."""
    events: list[dict] = []
    tids: dict[str, int] = {}
    events.append(
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro"},
        }
    )
    for span in obs.spans:
        if not span.done:
            continue
        tid = tids.get(span.track)
        if tid is None:
            tid = tids[span.track] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": span.track},
                }
            )
        args = _json_safe(span.attrs)
        assert isinstance(args, dict)
        args["span_id"] = span.id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args["wall_dur_s"] = round(span.wall_dur, 9)
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "name": span.name,
                "cat": span.cat or "span",
                "ts": span.t0 * 1e6,
                "dur": span.dur * 1e6,
                "args": args,
            }
        )
    other = {
        "run_id": obs.run_id,
        "environment": environment_provenance(),
        "metrics": _json_safe(obs.metrics.snapshot()),
        "series": _series_dicts(obs),
        "records_kept": len(obs.records),
        "records_dropped": obs.records.dropped,
    }
    if extra:
        other.update(_json_safe(extra))  # type: ignore[arg-type]
    return {"traceEvents": events, "displayTimeUnit": "ms", "otherData": other}


def write_chrome(obs: "Observability", path: str, extra: dict | None = None) -> str:
    """Write the Chrome-trace JSON; returns the path."""
    with open(path, "w") as f:
        json.dump(chrome_trace(obs, extra), f, indent=1)
        f.write("\n")
    return path


def write_jsonl(obs: "Observability", path: str, extra: dict | None = None) -> str:
    """Write the JSONL trace; returns the path."""
    with open(path, "w") as f:
        meta = {
            "type": "meta",
            "run_id": obs.run_id,
            "environment": environment_provenance(),
            "metrics": _json_safe(obs.metrics.snapshot()),
            "series": _series_dicts(obs),
            "records_dropped": obs.records.dropped,
        }
        if extra:
            meta.update(_json_safe(extra))  # type: ignore[arg-type]
        f.write(json.dumps(meta) + "\n")
        for span in obs.spans:
            if span.done:
                f.write(json.dumps(_span_dict(span)) + "\n")
        for rec in obs.records:
            f.write(
                json.dumps(
                    {
                        "type": "record",
                        "kind": rec.kind,
                        "time": rec.time,
                        "detail": rec.detail,
                    }
                )
                + "\n"
            )
    return path


def _load_trace(path: str) -> tuple[dict | None, dict]:
    """Parse either export format: ``(chrome_doc_or_None, meta)``.

    ``meta`` is the Chrome ``otherData`` dict or the JSONL leading
    ``meta`` object — where the run id, metrics, and series live.  For
    JSONL it additionally carries the parsed lines under ``"_lines"``.
    """
    with open(path) as f:
        text = f.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "traceEvents" in doc:
        return doc, dict(doc.get("otherData") or {})
    lines = []
    meta: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if obj.get("type") == "meta" and not meta:
            meta = dict(obj)
        else:
            lines.append(obj)
    meta["_lines"] = lines
    return None, meta


def _check_provenance(path: str, meta: dict, run_id: str | None) -> None:
    if run_id is None:
        return
    found = meta.get("run_id")
    if found is None:
        warnings.warn(
            f"{path!r} carries no run id (pre-provenance export); "
            f"cannot confirm it belongs to run {run_id!r}",
            stacklevel=3,
        )
        return
    if found != run_id:
        raise ProvenanceError(path, run_id, found)


def load_run_id(path: str) -> str | None:
    """The run id a trace file was exported under (None when absent)."""
    _, meta = _load_trace(path)
    rid = meta.get("run_id")
    return rid if isinstance(rid, str) else None


def load_spans(path: str, run_id: str | None = None) -> list[dict]:
    """Read spans back from either export format as plain dicts.

    ``run_id`` (when given) asserts the file's provenance: a stamped file
    from a different run raises :class:`~repro.errors.ProvenanceError`;
    an unstamped file warns.
    """
    doc, meta = _load_trace(path)
    _check_provenance(path, meta, run_id)
    if doc is not None:
        tracks = {0: "main"}
        spans = []
        for ev in doc["traceEvents"]:
            if ev.get("ph") == "M" and ev.get("name") == "thread_name":
                tracks[ev["tid"]] = ev["args"]["name"]
        for ev in doc["traceEvents"]:
            if ev.get("ph") != "X":
                continue
            args = dict(ev.get("args") or {})
            spans.append(
                {
                    "id": args.pop("span_id", None),
                    "parent_id": args.pop("parent_id", None),
                    "name": ev["name"],
                    "cat": ev.get("cat", ""),
                    "track": tracks.get(ev.get("tid"), str(ev.get("tid"))),
                    "t0": ev["ts"] / 1e6,
                    "dur": ev.get("dur", 0) / 1e6,
                    "wall_dur": args.pop("wall_dur_s", 0.0),
                    "attrs": args,
                }
            )
        return spans
    spans = []
    for obj in meta.get("_lines", []):
        if obj.get("type") == "span":
            obj = dict(obj)
            obj.pop("type")
            spans.append(obj)
    return spans


def load_metrics(path: str, run_id: str | None = None) -> dict:
    """Read the metrics snapshot back from either export format.

    Chrome traces carry it in ``otherData.metrics``; JSONL traces in the
    leading ``meta`` line.  Returns the ``{"counters": ..., "gauges":
    ..., "histograms": ...}`` snapshot dict, or ``{}`` when the trace
    predates metrics export.  ``run_id`` asserts provenance as in
    :func:`load_spans`.
    """
    _, meta = _load_trace(path)
    _check_provenance(path, meta, run_id)
    metrics = meta.get("metrics")
    return metrics if isinstance(metrics, dict) else {}


def load_series(path: str, run_id: str | None = None) -> dict:
    """Read the time series back from either export format.

    Returns ``{name: {"times": [...], "values": [...]}}`` — Chrome traces
    carry it in ``otherData.series``, JSONL traces in the ``meta`` line;
    ``{}`` when the trace predates series export.  ``run_id`` asserts
    provenance as in :func:`load_spans`.
    """
    _, meta = _load_trace(path)
    _check_provenance(path, meta, run_id)
    series = meta.get("series")
    return series if isinstance(series, dict) else {}


def phase_breakdown(
    spans: list[dict],
    root: dict | None = None,
    root_name: str | None = None,
) -> dict:
    """Group a root span's direct children by name into a phase table.

    Without an explicit root, the longest top-level span is used (for a
    single job trace that is the job span).  Returns ``{"root": ...,
    "total": seconds, "phases": [row, ...], "covered": fraction}`` where
    each row has name/count/total/mean/pct and rows are sorted by total
    time descending.  ``covered`` is sum(phases)/total — the acceptance
    bar is that instrumented phases cover ~all of the job.
    """
    if root is None:
        candidates = [s for s in spans if s.get("parent_id") is None]
        if root_name is not None:
            candidates = [s for s in candidates if s["name"] == root_name] or [
                s for s in spans if s["name"] == root_name
            ]
        if not candidates:
            return {"root": None, "total": 0.0, "phases": [], "covered": 0.0}
        root = max(candidates, key=lambda s: s["dur"])
    children = [s for s in spans if s.get("parent_id") == root["id"]]
    phases: dict[str, dict] = {}
    for s in children:
        row = phases.get(s["name"])
        if row is None:
            row = phases[s["name"]] = {
                "name": s["name"],
                "count": 0,
                "total": 0.0,
                "wall_total": 0.0,
            }
        row["count"] += 1
        row["total"] += s["dur"]
        row["wall_total"] += s.get("wall_dur") or 0.0
    total = root["dur"]
    rows = sorted(phases.values(), key=lambda r: -r["total"])
    for row in rows:
        row["mean"] = row["total"] / row["count"]
        row["pct"] = (100.0 * row["total"] / total) if total > 0 else 0.0
    summed = sum(r["total"] for r in rows)
    return {
        "root": {"name": root["name"], "id": root["id"], "total": total},
        "total": total,
        "phases": rows,
        "covered": (summed / total) if total > 0 else 0.0,
    }


def format_breakdown(breakdown: dict, time_unit: str = "s") -> str:
    """Render a :func:`phase_breakdown` result as an aligned text table."""
    if not breakdown["phases"]:
        return "(no spans)"
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[time_unit]
    root = breakdown["root"]
    lines = [
        f"root: {root['name']} — total {root['total'] * scale:.6g}{time_unit}",
        f"{'phase':<28} {'count':>6} {'total':>12} {'mean':>12} {'%':>7}",
    ]
    lines.append("-" * len(lines[-1]))
    for row in breakdown["phases"]:
        lines.append(
            f"{row['name']:<28} {row['count']:>6} "
            f"{row['total'] * scale:>11.6g}{time_unit} "
            f"{row['mean'] * scale:>11.6g}{time_unit} {row['pct']:>6.1f}%"
        )
    lines.append(
        f"{'(phases cover)':<28} {'':>6} "
        f"{sum(r['total'] for r in breakdown['phases']) * scale:>11.6g}{time_unit} "
        f"{'':>12} {breakdown['covered'] * 100:>6.1f}%"
    )
    return "\n".join(lines)
