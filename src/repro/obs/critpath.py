"""Critical-path analysis over a recorded span tree.

Given the span dicts of a completed run (the
:func:`~repro.obs.export.load_spans` /
:func:`~repro.obs.export.span_dicts` shape), extract the chain of spans
that actually determined end-to-end time — the question the paper's
host-vs-SD breakdowns answer by hand — plus, per edge, the *slack*: how
far the span could shrink before a competing sibling becomes critical.

The walk is the standard backward scan: start at the root's end, find
the child active then, descend, continue from that child's start, and
attribute any uncovered gap to the parent itself.  By construction the
segments' exclusive times partition the root's duration exactly, so the
path always "sums to wall time" — the acceptance bar of >= 90% coverage
guards against spans escaping the tree, not against the algorithm.

Two tree shapes are supported:

* :func:`critical_path` — the explicit parent/child links
  (``parent_id``), right for single-track traces like the real engine's
  ``localmr.job`` tree;
* :func:`job_critical_path` — *containment* linking: a span's parent is
  the smallest span whose interval encloses it, whatever its track.
  That is what a cluster job needs — ``sched.queue``/``dispatch``/
  ``run`` live on the scheduler track while ``fam.invoke`` →
  ``fam.module.run`` → ``fam.result.write`` live on node tracks, with
  no cross-track parent ids — and it is how the paper's
  dispatch/compute/return-wait attribution is recovered from a trace.
"""

from __future__ import annotations

import typing as _t

__all__ = [
    "critical_path",
    "job_critical_path",
    "format_critical_path",
]

#: tolerance for float timestamp comparisons (seconds)
_EPS = 1e-9


def _pick_root(
    spans: list[dict], root_name: str | None
) -> dict | None:
    candidates = [s for s in spans if s.get("parent_id") is None]
    if root_name is not None:
        candidates = [s for s in candidates if s["name"] == root_name] or [
            s for s in spans if s["name"] == root_name
        ]
    if not candidates:
        return None
    return max(candidates, key=lambda s: s["dur"])


def _walk(
    span: dict,
    end: float,
    children_of: _t.Callable[[dict], list[dict]],
    depth: int,
    out: list[dict],
) -> None:
    """Backward scan of ``span``'s window ``[span.t0, end]``.

    Emits one segment per exclusive stretch, children interleaved in
    reverse time order so ``out`` ends up root-first, time-ascending
    after the final reverse.
    """
    t0 = span["t0"]
    cursor = end
    kids = sorted(
        (k for k in children_of(span) if k["t0"] < cursor - _EPS),
        key=lambda k: (k["t0"] + k["dur"], k["t0"]),
        reverse=True,
    )
    for k in kids:
        k_end = min(k["t0"] + k["dur"], cursor)
        if k_end <= t0 + _EPS or k_end <= k["t0"] + _EPS:
            continue
        # the margin before the runner-up sibling becomes critical: the
        # distance from this child's (clamped) end back to the next
        # later-ending competitor, or to the window start if unopposed
        runner = next(
            (r for r in kids if r is not k and r["t0"] + r["dur"] < k_end - _EPS),
            None,
        )
        slack = k_end - (
            min(runner["t0"] + runner["dur"], cursor) if runner is not None
            else max(k["t0"], t0)
        )
        if cursor - k_end > _EPS:
            out.append(_segment(span, k_end, cursor, depth, slack=0.0))
        out_len = len(out)
        _walk(k, k_end, children_of, depth + 1, out)
        # stamp the chosen child's slack on its first (latest) segment
        if len(out) > out_len:
            out[out_len]["slack"] = round(slack, 9)
        cursor = max(k["t0"], t0)
        if cursor <= t0 + _EPS:
            break
    if cursor > t0 + _EPS:
        out.append(_segment(span, t0, cursor, depth, slack=0.0))


def _segment(
    span: dict, t0: float, t1: float, depth: int, slack: float
) -> dict:
    return {
        "name": span["name"],
        "cat": span.get("cat", ""),
        "track": span.get("track", ""),
        "span_id": span.get("id"),
        "t0": t0,
        "t1": t1,
        "self": t1 - t0,
        "slack": round(slack, 9),
        "depth": depth,
    }


def _finish(root: dict, segments: list[dict]) -> dict:
    segments.reverse()  # backward walk emitted latest-first
    total = root["dur"]
    by_name: dict[str, dict] = {}
    for seg in segments:
        row = by_name.get(seg["name"])
        if row is None:
            row = by_name[seg["name"]] = {
                "name": seg["name"], "count": 0, "self": 0.0,
            }
        row["count"] += 1
        row["self"] += seg["self"]
    rows = sorted(by_name.values(), key=lambda r: -r["self"])
    for row in rows:
        row["pct"] = (100.0 * row["self"] / total) if total > 0 else 0.0
    covered = sum(s["self"] for s in segments)
    return {
        "root": {
            "name": root["name"], "id": root.get("id"),
            "t0": root["t0"], "dur": total,
        },
        "wall": total,
        "path": segments,
        "by_name": rows,
        "covered": (covered / total) if total > 0 else 0.0,
    }


def critical_path(
    spans: list[dict],
    root: dict | None = None,
    root_name: str | None = None,
) -> dict:
    """Critical path through a parent-id-linked span tree.

    Without an explicit ``root``, the longest top-level span is used
    (optionally filtered by ``root_name``).  Returns ``{"root": ...,
    "wall": seconds, "path": [segment, ...], "by_name": [row, ...],
    "covered": fraction}`` where each path segment carries its exclusive
    time (``self``), its slack, and its depth on the path.
    """
    if root is None:
        root = _pick_root(spans, root_name)
    if root is None or root["dur"] <= 0:
        return {"root": None, "wall": 0.0, "path": [], "by_name": [],
                "covered": 0.0}
    by_parent: dict[object, list[dict]] = {}
    for s in spans:
        by_parent.setdefault(s.get("parent_id"), []).append(s)
    segments: list[dict] = []
    _walk(
        root, root["t0"] + root["dur"],
        lambda s: by_parent.get(s.get("id"), []),
        0, segments,
    )
    return _finish(root, segments)


def job_critical_path(
    spans: list[dict],
    window: tuple[float, float] | None = None,
    root_name: str = "job",
) -> dict:
    """Critical path across tracks, linked by interval containment.

    ``window`` bounds the analysis to one job's lifetime (submit →
    finish); by default the whole trace's extent is used.  A synthetic
    root named ``root_name`` spans the window; every recorded span whose
    interval falls inside the window joins the tree under its smallest
    enclosing span.  Spans that merely *overlap* the window edge are
    clamped by the walk, not dropped.
    """
    done = [s for s in spans if s.get("dur", 0) > 0]
    if not done:
        return {"root": None, "wall": 0.0, "path": [], "by_name": [],
                "covered": 0.0}
    if window is None:
        w0 = min(s["t0"] for s in done)
        w1 = max(s["t0"] + s["dur"] for s in done)
    else:
        w0, w1 = window
    inside = [
        s for s in done
        if s["t0"] >= w0 - _EPS and s["t0"] + s["dur"] <= w1 + _EPS
    ]
    root = {"name": root_name, "id": None, "t0": w0, "dur": w1 - w0,
            "track": "", "cat": ""}
    if root["dur"] <= 0:
        return {"root": None, "wall": 0.0, "path": [], "by_name": [],
                "covered": 0.0}
    # containment forest: parent = smallest strictly-enclosing span
    ordered = sorted(inside, key=lambda s: (s["t0"], -s["dur"]))
    children: dict[object, list[dict]] = {id(root): []}
    stack: list[dict] = [root]
    for s in ordered:
        while len(stack) > 1:
            top = stack[-1]
            if (
                top["t0"] - _EPS <= s["t0"]
                and s["t0"] + s["dur"] <= top["t0"] + top["dur"] + _EPS
            ):
                break
            stack.pop()
        parent = stack[-1]
        children.setdefault(id(parent), []).append(s)
        stack.append(s)
    segments: list[dict] = []
    _walk(
        root, w1,
        lambda s: children.get(id(s), []),
        0, segments,
    )
    return _finish(root, segments)


def format_critical_path(cp: dict, time_unit: str = "s") -> str:
    """Render a critical path as an aligned text report."""
    if not cp["path"]:
        return "(no critical path: empty or zero-length trace)"
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[time_unit]
    root = cp["root"]
    lines = [
        f"critical path of {root['name']} — wall "
        f"{cp['wall'] * scale:.6g}{time_unit}, "
        f"{len(cp['path'])} segments cover {cp['covered'] * 100:.1f}%",
        "",
        f"{'span':<38} {'self':>12} {'slack':>12} {'%':>6}  track",
    ]
    lines.append("-" * len(lines[-1]))
    for seg in cp["path"]:
        indent = "  " * min(seg["depth"], 8)
        name = f"{indent}{seg['name']}"
        pct = 100.0 * seg["self"] / cp["wall"] if cp["wall"] > 0 else 0.0
        lines.append(
            f"{name:<38} {seg['self'] * scale:>11.6g}{time_unit} "
            f"{seg['slack'] * scale:>11.6g}{time_unit} {pct:>5.1f}%  "
            f"{seg['track']}"
        )
    lines.append("")
    header = f"{'by span name':<38} {'count':>6} {'self':>12} {'%':>6}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in cp["by_name"]:
        lines.append(
            f"{row['name']:<38} {row['count']:>6} "
            f"{row['self'] * scale:>11.6g}{time_unit} {row['pct']:>5.1f}%"
        )
    return "\n".join(lines)
