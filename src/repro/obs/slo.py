"""SLO tracking: per-tenant latency objectives, error budgets, burn rates.

The serving layer's health signal.  A :class:`SLOPolicy` states the
objective — "p95 of total latency under ``target_s``, with at most
``error_budget`` of requests allowed to miss it" — and a
:class:`SLOTracker` evaluates it *incrementally*: the scheduler feeds
one ``observe`` per completed (or permanently failed) job, the tracker
keeps a bounded per-tenant sample window, and a :class:`HealthReport`
snapshot can be taken at any instant without rescanning history.

Burn rate is the standard SRE ratio::

    burn = (bad fraction over the trailing window) / error_budget

``burn == 1.0`` means the tenant is consuming its budget exactly at the
sustainable rate; ``burn > 1`` means the budget will be exhausted early
(a burn of 2 over a 30-day budget period exhausts it in 15 days).  The
admission/autoscaling consumers (ROADMAP item 4) key off ``burn_rate``
and ``queue_depth`` rather than raw histograms.

Everything here is pure bookkeeping over floats — no clock reads, no
I/O — so the tracker is cheap enough to run always-on next to the
scheduler's existing counters.
"""

from __future__ import annotations

import collections
import dataclasses
import math
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import Observability

__all__ = [
    "SLOPolicy",
    "SLOStatus",
    "SLOTracker",
    "HealthReport",
    "build_health_report",
]

#: per-tenant samples kept for windowed percentile/burn computation
_WINDOW_SAMPLES = 4096


@dataclasses.dataclass(frozen=True)
class SLOPolicy:
    """One tenant's service objective.

    ``target_s`` is the latency bound, ``percentile`` the reporting
    percentile (the ``met`` verdict checks it against the target),
    ``error_budget`` the fraction of requests allowed to miss the target
    (or fail outright), and ``window_s`` the trailing window over which
    the burn rate is computed.
    """

    tenant: str = "*"
    target_s: float = 1.0
    percentile: float = 95.0
    error_budget: float = 0.01
    window_s: float = 60.0

    def __post_init__(self) -> None:
        if self.target_s <= 0:
            raise ValueError(f"target_s must be > 0, got {self.target_s}")
        if not (0 < self.percentile <= 100):
            raise ValueError(f"percentile must be in (0, 100], got {self.percentile}")
        if not (0 < self.error_budget <= 1):
            raise ValueError(
                f"error_budget must be in (0, 1], got {self.error_budget}"
            )
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")


@dataclasses.dataclass
class SLOStatus:
    """One tenant's evaluated objective at a snapshot instant."""

    tenant: str
    policy: SLOPolicy
    #: lifetime totals
    total: int
    bad: int
    #: trailing-window figures (the burn inputs)
    window_total: int
    window_bad: int
    window_bad_fraction: float
    burn_rate: float
    #: nearest-rank percentile of window latencies at ``policy.percentile``
    percentile_latency: float
    #: lifetime budget remaining as a fraction (negative = overspent)
    budget_remaining: float
    #: the verdict: percentile under target and burn sustainable
    met: bool

    def to_dict(self) -> dict:
        """JSON-safe snapshot row."""
        return {
            "tenant": self.tenant,
            "target_s": self.policy.target_s,
            "percentile": self.policy.percentile,
            "error_budget": self.policy.error_budget,
            "window_s": self.policy.window_s,
            "total": self.total,
            "bad": self.bad,
            "window_total": self.window_total,
            "window_bad": self.window_bad,
            "window_bad_fraction": round(self.window_bad_fraction, 6),
            "burn_rate": round(self.burn_rate, 4),
            "percentile_latency_s": round(self.percentile_latency, 6),
            "budget_remaining": round(self.budget_remaining, 4),
            "met": self.met,
        }


class _TenantState:
    """Mutable per-tenant bookkeeping: lifetime counts + sample window."""

    __slots__ = ("total", "bad", "samples")

    def __init__(self) -> None:
        self.total = 0
        self.bad = 0
        #: (time, latency, good) — bounded, newest last
        self.samples: collections.deque[tuple[float, float, bool]] = (
            collections.deque(maxlen=_WINDOW_SAMPLES)
        )


class SLOTracker:
    """Incremental per-tenant SLO evaluation.

    ``policies`` maps tenant names to their objectives; ``default`` (when
    given) applies to tenants with no explicit policy.  Tenants with no
    applicable policy are still tracked (latency stats appear in the
    health report) but carry no verdict.
    """

    def __init__(
        self,
        policies: _t.Mapping[str, SLOPolicy]
        | _t.Iterable[SLOPolicy]
        | SLOPolicy
        | None = None,
        default: SLOPolicy | None = None,
    ):
        if isinstance(policies, SLOPolicy):
            policies = [policies]
        if policies is None:
            resolved: dict[str, SLOPolicy] = {}
        elif isinstance(policies, _t.Mapping):
            resolved = dict(policies)
        else:
            resolved = {p.tenant: p for p in policies}
        # a "*" policy is the default, however it was passed
        star = resolved.pop("*", None)
        self.policies = resolved
        self.default = default or star
        self._tenants: dict[str, _TenantState] = {}

    def policy_for(self, tenant: str) -> SLOPolicy | None:
        """The applicable policy (explicit, else default, else None)."""
        return self.policies.get(tenant, self.default)

    # -- feeding ---------------------------------------------------------------

    def observe(
        self, tenant: str, t: float, latency: float, failed: bool = False
    ) -> None:
        """Record one finished job: its completion time and total latency.

        ``failed`` marks a permanent failure — always budget-burning,
        whatever its latency.
        """
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState()
        policy = self.policy_for(tenant)
        good = not failed and (
            policy is None or latency <= policy.target_s
        )
        state.total += 1
        if not good:
            state.bad += 1
        state.samples.append((t, latency, good))

    # -- evaluation ------------------------------------------------------------

    def tenants(self) -> list[str]:
        """Every tenant seen so far, sorted."""
        return sorted(self._tenants)

    def status(self, tenant: str, now: float) -> SLOStatus | None:
        """The tenant's evaluated objective, or None without a policy."""
        policy = self.policy_for(tenant)
        state = self._tenants.get(tenant)
        if policy is None:
            return None
        if state is None:
            state = _TenantState()
        cutoff = now - policy.window_s
        window = [(lat, good) for (t, lat, good) in state.samples if t > cutoff]
        n_w = len(window)
        bad_w = sum(1 for _, good in window if not good)
        bad_frac = bad_w / n_w if n_w else 0.0
        burn = bad_frac / policy.error_budget
        latencies = sorted(lat for lat, _ in window)
        if latencies:
            rank = max(1, math.ceil(policy.percentile / 100.0 * len(latencies)))
            pctl = latencies[min(rank, len(latencies)) - 1]
        else:
            pctl = 0.0
        lifetime_frac = state.bad / state.total if state.total else 0.0
        return SLOStatus(
            tenant=tenant,
            policy=policy,
            total=state.total,
            bad=state.bad,
            window_total=n_w,
            window_bad=bad_w,
            window_bad_fraction=bad_frac,
            burn_rate=burn,
            percentile_latency=pctl,
            budget_remaining=1.0 - lifetime_frac / policy.error_budget,
            met=(n_w == 0) or (pctl <= policy.target_s and burn <= 1.0),
        )

    def latency_stats(self, tenant: str) -> dict:
        """Window latency summary for tenants with or without a policy."""
        state = self._tenants.get(tenant)
        if state is None or not state.samples:
            return {"n": 0}
        latencies = sorted(lat for _, lat, _ in state.samples)
        n = len(latencies)

        def pct(p: float) -> float:
            return latencies[min(n, max(1, math.ceil(p / 100.0 * n))) - 1]

        return {
            "n": n,
            "mean_s": sum(latencies) / n,
            "p50_s": pct(50),
            "p95_s": pct(95),
            "p99_s": pct(99),
            "max_s": latencies[-1],
        }


@dataclasses.dataclass
class HealthReport:
    """One instant's cluster health snapshot — the autoscaling signal.

    Produced by :meth:`ClusterScheduler.health_report`; consumed by
    admission control and (ROADMAP item 4) the autoscaler.  ``healthy``
    is the conjunction: every evaluated tenant objective met and no node
    quarantined.
    """

    time: float
    healthy: bool
    queue_depth: int
    unhealthy_nodes: list[str]
    #: tenant -> SLOStatus (only tenants with an applicable policy)
    slo: dict[str, SLOStatus]
    #: tenant -> window latency summary (every tenant seen)
    latency: dict[str, dict]
    #: scheduler latency histogram summaries when tracing recorded them
    histograms: dict[str, dict] = dataclasses.field(default_factory=dict)

    @property
    def worst_burn_rate(self) -> float:
        """The highest tenant burn rate (0.0 with no evaluated tenants)."""
        return max((s.burn_rate for s in self.slo.values()), default=0.0)

    def to_dict(self) -> dict:
        """JSON-safe snapshot (the shape embedded in bench payloads)."""
        return {
            "time": self.time,
            "healthy": self.healthy,
            "queue_depth": self.queue_depth,
            "unhealthy_nodes": list(self.unhealthy_nodes),
            "worst_burn_rate": round(self.worst_burn_rate, 4),
            "slo": {t: s.to_dict() for t, s in sorted(self.slo.items())},
            "latency": {
                t: {
                    k: (round(v, 6) if isinstance(v, float) else v)
                    for k, v in stats.items()
                }
                for t, stats in sorted(self.latency.items())
            },
            "histograms": self.histograms,
        }


def build_health_report(
    tracker: SLOTracker,
    now: float,
    queue_depth: int,
    unhealthy_nodes: _t.Iterable[str],
    obs: "Observability | None" = None,
) -> HealthReport:
    """Assemble a :class:`HealthReport` from a tracker plus scheduler state.

    ``obs`` (when given) contributes the ``sched.latency.*`` histogram
    summaries recorded under tracing — absent in untraced runs, which is
    exactly why the tracker keeps its own windows.
    """
    slo: dict[str, SLOStatus] = {}
    latency: dict[str, dict] = {}
    for tenant in tracker.tenants():
        status = tracker.status(tenant, now)
        if status is not None:
            slo[tenant] = status
        latency[tenant] = tracker.latency_stats(tenant)
    unhealthy = sorted(unhealthy_nodes)
    histograms: dict[str, dict] = {}
    if obs is not None:
        for name, hist in obs.metrics.histograms.items():
            if name.startswith("sched.latency.") and hist.count:
                histograms[name] = hist.summary()
    return HealthReport(
        time=now,
        healthy=all(s.met for s in slo.values()) and not unhealthy,
        queue_depth=queue_depth,
        unhealthy_nodes=unhealthy,
        slo=slo,
        latency=latency,
        histograms=histograms,
    )
