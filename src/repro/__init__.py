"""McSD: Multicore-Enabled Smart Storage for Clusters — full reproduction.

Reproduces Ding et al., IEEE CLUSTER 2012 (DOI 10.1109/CLUSTER.2012.70):
smart storage nodes with embedded multicore processors, the smartFAM
log-file invocation channel, a Phoenix-style MapReduce runtime with the
partitioning/merging out-of-core extension, and the McSD programming
framework — all running on a deterministic discrete-event simulation of
the paper's 5-node testbed, with real execution of every algorithm over
materialized payloads.

Start here:

>>> from repro.cluster import Testbed
>>> from repro.core import DataJob, McSDProgram, McSDRuntime

or run ``python -m repro --help`` for the experiment CLI.  See README.md
for the tour, DESIGN.md for the architecture, EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.config import (
    ClusterConfig,
    CPUSpec,
    DiskSpec,
    MemoryPolicy,
    NetworkConfig,
    NodeConfig,
    PhoenixConfig,
    SmartFAMConfig,
    table1_cluster,
)
from repro.errors import McSDError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "McSDError",
    "table1_cluster",
    "ClusterConfig",
    "NodeConfig",
    "CPUSpec",
    "DiskSpec",
    "MemoryPolicy",
    "NetworkConfig",
    "PhoenixConfig",
    "SmartFAMConfig",
]
