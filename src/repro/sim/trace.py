"""Tracing and statistics collection for simulations.

A :class:`Tracer` records ``(time, kind, detail)`` tuples when enabled and
keeps cheap named counters/accumulators even when record-keeping is off.
Benchmarks use counters (bytes moved over NFS, pages swapped, map tasks
run); tests use the record stream to assert on protocol step ordering.
"""

from __future__ import annotations

import collections
import typing as _t

__all__ = ["TraceRecord", "Tracer", "TimeSeries"]


class TraceRecord(_t.NamedTuple):
    """A single trace entry."""

    kind: str
    time: float
    detail: str


class TimeSeries:
    """(time, value) samples for one observable, with summary stats."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def sample(self, t: float, v: float) -> None:
        """Append a sample."""
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def last(self) -> float:
        """Most recent value (0.0 if empty)."""
        return self.values[-1] if self.values else 0.0

    def mean(self) -> float:
        """Arithmetic mean of the sampled values (0.0 if empty)."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    def maximum(self) -> float:
        """Largest sampled value (0.0 if empty)."""
        return max(self.values) if self.values else 0.0

    def time_weighted_mean(self, until: float | None = None) -> float:
        """Mean weighted by holding time (step-function interpretation)."""
        if not self.values:
            return 0.0
        end = until if until is not None else self.times[-1]
        total = 0.0
        span = 0.0
        for i, v in enumerate(self.values):
            t0 = self.times[i]
            t1 = self.times[i + 1] if i + 1 < len(self.times) else end
            dt = max(0.0, t1 - t0)
            total += v * dt
            span += dt
        return total / span if span > 0 else self.values[-1]


class Tracer:
    """Records trace entries and aggregates counters."""

    def __init__(self, enabled: bool = False, keep: int = 100_000):
        self.enabled = enabled
        self.keep = keep
        self.records: collections.deque[TraceRecord] = collections.deque(maxlen=keep)
        self.counters: collections.Counter[str] = collections.Counter()
        self.series: dict[str, TimeSeries] = {}

    def record(self, kind: str, time: float, detail: str = "") -> None:
        """Store a trace record if tracing is enabled."""
        if self.enabled:
            self.records.append(TraceRecord(kind, time, detail))

    def count(self, name: str, amount: float = 1) -> None:
        """Bump a named counter (always on; counters are cheap)."""
        self.counters[name] += amount

    def sample(self, name: str, time: float, value: float) -> None:
        """Record a time-series sample under ``name``."""
        ts = self.series.get(name)
        if ts is None:
            ts = self.series[name] = TimeSeries(name)
        ts.sample(time, value)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All stored records with the given kind."""
        return [r for r in self.records if r.kind == kind]

    def clear(self) -> None:
        """Drop records, counters and series."""
        self.records.clear()
        self.counters.clear()
        self.series.clear()
