"""Tracing and statistics collection for simulations.

:class:`Tracer` is now a thin compatibility facade over the
:class:`~repro.obs.registry.Observability` registry (``sim.obs``): the
``records``/``counters``/``series`` attributes, ``record``/``count``/
``sample``/``of_kind``/``clear`` methods, and the ``enabled`` flag all
read and write the same underlying stores the span/metrics machinery
uses, so existing call sites and tests keep working unchanged.  New
capabilities surface through the facade too: :attr:`Tracer.dropped`
counts records evicted by the ring buffer (the seed deque dropped them
silently), and ``of_kind`` is served from a kind index maintained on
append instead of a full linear scan.

:class:`~repro.obs.metrics.TimeSeries` moved to :mod:`repro.obs.metrics`
and is re-exported here for compatibility.
"""

from __future__ import annotations

import collections
import typing as _t

from repro.obs.metrics import TimeSeries
from repro.obs.records import TraceRecord
from repro.obs.registry import Observability

__all__ = ["TraceRecord", "Tracer", "TimeSeries"]


class Tracer:
    """Records trace entries and aggregates counters (facade over obs)."""

    def __init__(
        self,
        enabled: bool = False,
        keep: int = 100_000,
        obs: Observability | None = None,
    ):
        if obs is None:
            obs = Observability(enabled=enabled, keep_records=keep)
        else:
            obs.enabled = enabled
        self.obs = obs
        self.keep = keep

    # -- shared state (views over the registry) ------------------------------

    @property
    def enabled(self) -> bool:
        """Whether records (and spans) are being kept."""
        return self.obs.enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self.obs.enabled = value

    @property
    def records(self) -> "collections.deque[TraceRecord]":
        """The stored records (bounded deque, oldest first)."""
        return self.obs.records.entries

    @property
    def dropped(self) -> int:
        """Records evicted by the ring buffer since the last clear."""
        return self.obs.records.dropped

    @property
    def counters(self) -> collections.Counter:
        """The shared named counters (also fed by ``obs.count``)."""
        return self.obs.metrics.counters

    @property
    def series(self) -> dict[str, TimeSeries]:
        """Named time series."""
        return self.obs.series

    # -- recording -------------------------------------------------------------

    def record(self, kind: str, time: float, detail: str = "") -> None:
        """Store a trace record if tracing is enabled."""
        self.obs.record(kind, time, detail)

    def count(self, name: str, amount: float = 1) -> None:
        """Bump a named counter (always on; counters are cheap)."""
        self.obs.metrics.count(name, amount)

    def sample(self, name: str, time: float, value: float) -> None:
        """Record a time-series sample under ``name``."""
        self.obs.sample(name, time, value)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All stored records with the given kind (kind-indexed)."""
        return self.obs.records.of_kind(kind)

    def clear(self) -> None:
        """Drop records, counters and series (spans are kept)."""
        self.obs.records.clear()
        self.obs.metrics.clear()
        self.obs.series.clear()
