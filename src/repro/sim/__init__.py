"""Discrete-event simulation kernel (built from scratch).

This is a small, deterministic, generator-coroutine-based kernel in the
spirit of SimPy, providing exactly what the McSD models need:

* :class:`~repro.sim.kernel.Simulator` — the event loop and clock,
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.Timeout` /
  :class:`~repro.sim.events.AllOf` / :class:`~repro.sim.events.AnyOf`,
* :class:`~repro.sim.process.Process` — a running coroutine that can be
  waited on and interrupted,
* resources (:class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.Container`),
* synchronisation (:class:`~repro.sim.sync.Signal`,
  :class:`~repro.sim.sync.Semaphore`, :class:`~repro.sim.sync.Barrier`,
  :class:`~repro.sim.sync.Latch`),
* deterministic named RNG streams (:class:`~repro.sim.rng.RngRegistry`),
* tracing (:class:`~repro.sim.trace.Tracer`).

Determinism: given the same seed and the same program, event ordering and
therefore every simulated timestamp are bit-reproducible.  Ties in time are
broken by (priority, insertion sequence).
"""

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.resources import Container, Request, Resource, Store
from repro.sim.rng import RngRegistry
from repro.sim.sync import Barrier, Latch, Semaphore, Signal
from repro.sim.trace import Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Timeout",
    "Simulator",
    "Process",
    "Resource",
    "Request",
    "Store",
    "Container",
    "Signal",
    "Semaphore",
    "Barrier",
    "Latch",
    "RngRegistry",
    "Tracer",
]
