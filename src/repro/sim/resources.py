"""Shared resources for simulated processes.

* :class:`Resource` — ``capacity`` identical slots with a FIFO wait queue
  (models disk queues, NIC ports, daemon worker pools).
* :class:`Store` — an unbounded-or-bounded FIFO of Python objects
  (models message queues and mailboxes).
* :class:`Container` — a divisible quantity with ``put``/``get`` of amounts
  (models byte pools).

All wait queues are FIFO, making contention resolution deterministic.
"""

from __future__ import annotations

import collections
import typing as _t

from repro.errors import SimulationError
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["Request", "Resource", "Store", "Container"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req          # waits for a slot
            yield sim.timeout(work)
        # slot released here
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim, name=f"req:{resource.name}")
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: object) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        self.resource._cancel(self)


class Resource:
    """``capacity`` identical servers with a FIFO queue."""

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: list[Request] = []
        self._queue: collections.deque[Request] = collections.deque()

    # -- introspection ------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of requests waiting."""
        return len(self._queue)

    # -- operations ---------------------------------------------------------

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed(self)
        else:
            self._queue.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return a slot (or withdraw an ungranted request).  Idempotent."""
        if req in self._users:
            self._users.remove(req)
            self._grant_next()
        else:
            self._cancel(req)

    def _cancel(self, req: Request) -> None:
        try:
            self._queue.remove(req)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            nxt = self._queue.popleft()
            self._users.append(nxt)
            nxt.succeed(self)


class Store:
    """FIFO of arbitrary items with blocking ``get`` and optional bound."""

    def __init__(
        self,
        sim: "Simulator",
        capacity: float = float("inf"),
        name: str = "store",
    ):
        if capacity < 1:
            raise SimulationError("store capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: collections.deque[object] = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()
        self._putters: collections.deque[tuple[Event, object]] = collections.deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: object) -> Event:
        """Deposit ``item``; blocks (pending event) while the store is full."""
        ev = Event(self.sim, name=f"put:{self.name}")
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed()
        elif len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Withdraw the oldest item; pending while the store is empty."""
        ev = Event(self.sim, name=f"get:{self.name}")
        if self.items:
            ev.succeed(self.items.popleft())
            # Someone may be waiting to put.
            if self._putters:
                put_ev, item = self._putters.popleft()
                self.items.append(item)
                put_ev.succeed()
        elif self._putters:
            put_ev, item = self._putters.popleft()
            put_ev.succeed()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> object | None:
        """Non-blocking get; None when empty."""
        if not self.items:
            return None
        ev = self.get()
        return ev.value


class Container:
    """A divisible quantity (e.g. bytes of buffer) with amount put/get."""

    def __init__(
        self,
        sim: "Simulator",
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "container",
    ):
        if capacity <= 0:
            raise SimulationError("container capacity must be > 0")
        if not 0 <= init <= capacity:
            raise SimulationError("init must lie within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = float(init)
        self.name = name
        self._getters: collections.deque[tuple[Event, float]] = collections.deque()
        self._putters: collections.deque[tuple[Event, float]] = collections.deque()

    def put(self, amount: float) -> Event:
        """Add ``amount``; pending while it would overflow capacity."""
        if amount <= 0:
            raise SimulationError("put amount must be > 0")
        if amount > self.capacity:
            raise SimulationError("put amount exceeds total capacity")
        ev = Event(self.sim, name=f"cput:{self.name}")
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; pending while the level is insufficient."""
        if amount <= 0:
            raise SimulationError("get amount must be > 0")
        if amount > self.capacity:
            raise SimulationError("get amount exceeds total capacity")
        ev = Event(self.sim, name=f"cget:{self.name}")
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        """Grant queued puts/gets in FIFO order while feasible."""
        progress = True
        while progress:
            progress = False
            if self._putters:
                ev, amount = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.popleft()
                    self.level += amount
                    ev.succeed()
                    progress = True
            if self._getters:
                ev, amount = self._getters[0]
                if self.level >= amount:
                    self._getters.popleft()
                    self.level -= amount
                    ev.succeed()
                    progress = True
