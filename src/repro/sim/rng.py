"""Deterministic named RNG streams.

Every stochastic component (network jitter, SMB traffic, workload content)
draws from its own named stream derived from the master seed, so adding a
new consumer never perturbs existing ones — a standard reproducibility
idiom in parallel-systems simulators.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master: int, name: str) -> int:
    """A stable 63-bit seed derived from ``(master, name)``."""
    digest = hashlib.sha256(f"{master}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


class RngRegistry:
    """Lazily-created, name-addressed :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.master_seed, name))
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Drop all streams; next use re-derives from the master seed."""
        self._streams.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._streams
