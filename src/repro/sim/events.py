"""Events: the unit of coordination in the simulation kernel.

An :class:`Event` starts *pending*; at some simulated instant it is
*triggered* (successfully with a value, or as a failure with an exception)
and all registered callbacks run.  Processes wait on events by ``yield``-ing
them.

Composite events :class:`AllOf` and :class:`AnyOf` build barriers and races
out of other events.
"""

from __future__ import annotations

import typing as _t

from repro.errors import SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["PENDING", "Event", "Timeout", "AllOf", "AnyOf", "Condition"]


class _PendingType:
    """Sentinel for an event value that has not been decided yet."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING = _PendingType()


class Event:
    """A one-shot occurrence at a simulated instant.

    Lifecycle::

        pending --succeed(value)--> triggered(ok=True)
        pending --fail(exc)-------> triggered(ok=False)

    Callbacks (``callable(event)``) registered before triggering run when the
    event is *processed* by the simulator loop; callbacks registered after
    processing run immediately.
    """

    __slots__ = ("sim", "_value", "_ok", "callbacks", "_processed", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self._value: object = PENDING
        self._ok: bool | None = None
        self.callbacks: list[_t.Callable[["Event"], None]] | None = []
        self._processed = False
        self.name = name

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the simulator has run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"event {self!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> object:
        """The success value or the failure exception."""
        if self._value is PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully, scheduling its callbacks now."""
        if self._value is not PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._push(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as a failure carrying ``exc``."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._value is not PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._push(self)
        return self

    def trigger(self, other: "Event") -> None:
        """Copy another event's outcome into this one (chaining helper)."""
        if other._ok:
            self.succeed(other._value)
        else:
            self.fail(_t.cast(BaseException, other._value))

    # -- callbacks ----------------------------------------------------------

    def add_callback(self, fn: _t.Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs synchronously.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        """Called by the simulator loop: run and discard the callbacks."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or self.__class__.__name__
        state = (
            "pending"
            if not self.triggered
            else ("ok" if self._ok else f"failed({self._value!r})")
        )
        return f"<{label} {state}>"


class Timeout(Event):
    """An event that fires after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim, name=f"Timeout({delay})")
        self.delay = delay
        self._ok = True
        self._value = value
        sim._push(self, delay=delay)


class Condition(Event):
    """Base for composite events; triggers per an ``evaluate`` predicate.

    ``evaluate(events, n_done)`` returns True when the condition is met.
    A failing sub-event fails the condition immediately (fail-fast).
    """

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: _t.Sequence[Event]):
        super().__init__(sim, name=self.__class__.__name__)
        self.events = tuple(events)
        self._done = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes simulators")
            ev.add_callback(self._on_sub)

    def _evaluate(self, n_done: int) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict[Event, object]:
        """Outcome: mapping of each *triggered* sub-event to its value."""
        return {ev: ev._value for ev in self.events if ev.triggered and ev._ok}

    def _on_sub(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(_t.cast(BaseException, ev._value))
            return
        self._done += 1
        if self._evaluate(self._done):
            self.succeed(self._collect())


class AllOf(Condition):
    """Succeeds when every sub-event succeeds (a barrier)."""

    __slots__ = ()

    def _evaluate(self, n_done: int) -> bool:
        return n_done >= len(self.events)


class AnyOf(Condition):
    """Succeeds when the first sub-event succeeds (a race)."""

    __slots__ = ()

    def _evaluate(self, n_done: int) -> bool:
        return n_done >= 1
