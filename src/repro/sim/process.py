"""Processes: generator coroutines driven by the simulator.

A process body is a generator that ``yield``\\ s :class:`Event` objects; the
process resumes when the yielded event is processed.  A successful event
sends its value into the generator; a failed event throws the exception at
the ``yield`` point.  A process is itself an :class:`Event` that triggers
when the generator finishes (value = the generator's ``return`` value) or
raises (failure).

Interrupts: ``proc.interrupt(cause)`` throws
:class:`~repro.errors.InterruptError` into the process at its current wait
point.  The event it was waiting on stays valid and can be re-yielded.
"""

from __future__ import annotations

import typing as _t

from repro.errors import InterruptError, SimulationError
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["Process"]


class Process(Event):
    """A running simulated activity.

    Do not instantiate directly; use :meth:`Simulator.spawn`.
    """

    __slots__ = ("gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: _t.Generator, name: str = ""):
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise SimulationError(
                f"spawn() needs a generator, got {type(gen).__name__} "
                "(did you forget to call the process function?)"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self.gen = gen
        self._waiting_on: Event | None = None
        # Kick off the process at the current instant via an init event.
        init = Event(sim, name=f"init:{self.name}")
        init.add_callback(self._resume)
        init.succeed()

    # -- state ------------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    # -- driving ------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self._waiting_on = None
        try:
            if event._ok:
                target = self.gen.send(event._value)
            else:
                target = self.gen.throw(_t.cast(BaseException, event._value))
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):  # pragma: no cover
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            exc2 = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event objects"
            )
            # Close the generator and fail the process.
            self.gen.close()
            self.fail(exc2)
            return
        if target.sim is not self.sim:
            self.gen.close()
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`InterruptError` into the process at its wait point.

        No-op semantics: interrupting a finished process raises; a process
        that has not started waiting yet cannot be interrupted (the kernel
        always starts processes via an init event, so by the time user code
        holds a Process it is either waiting or finished within the same
        instant).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        waiting = self._waiting_on
        # Schedule the interrupt as an immediate event so that it is
        # delivered in deterministic heap order.
        intr = Event(self.sim, name=f"interrupt:{self.name}")

        def _deliver(_ev: Event) -> None:
            if self.triggered:
                return  # finished in the meantime
            if self._waiting_on is not waiting:
                return  # moved on; interrupt is stale
            if self._waiting_on is not None:
                # Detach: the original event must not resume us any more.
                target = self._waiting_on
                self._waiting_on = None
                if target.callbacks is not None and self._resume in target.callbacks:
                    target.callbacks.remove(self._resume)
            try:
                nxt = self.gen.throw(InterruptError(cause))
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):  # pragma: no cover
                    raise
                self.fail(exc)
                return
            if not isinstance(nxt, Event):
                self.gen.close()
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded {nxt!r} after interrupt"
                    )
                )
                return
            self._waiting_on = nxt
            nxt.add_callback(self._resume)

        intr.add_callback(_deliver)
        intr.succeed(cause)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.is_alive else ("ok" if self._ok else "failed")
        return f"<Process {self.name} {state}>"
