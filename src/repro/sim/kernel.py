"""The simulator: clock, event heap, and run loop.

The heap orders triggered events by ``(time, priority, sequence)`` where
*sequence* is a monotonically increasing insertion counter, making the
execution order — and therefore the entire simulation — deterministic.
"""

from __future__ import annotations

import heapq
import typing as _t

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.process import Process

__all__ = ["Simulator", "NORMAL", "HIGH", "LOW"]

# Event priorities: lower sorts earlier at equal timestamps.
HIGH = 0
NORMAL = 1
LOW = 2


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the named RNG streams (see
        :class:`~repro.sim.rng.RngRegistry`).
    trace:
        When true, record kernel-level events in :attr:`tracer`.

    Examples
    --------
    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(3.0)
    ...     return sim.now
    >>> p = sim.spawn(hello(sim))
    >>> sim.run()
    >>> p.value
    3.0
    """

    def __init__(self, seed: int = 0, trace: bool = False):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._running = False
        self.rng = RngRegistry(seed)
        self.tracer = Tracer(enabled=trace)
        #: the observability registry (spans/metrics/records); the tracer
        #: is a compatibility facade over this same object
        self.obs = self.tracer.obs
        self.obs.bind_clock(lambda: self.now)
        #: the installed fault injector, or None (the common case — hooks
        #: guard on `is not None`, so an uninstalled layer costs one branch)
        self.faults = None
        #: number of events processed so far (monitoring/tests)
        self.processed_events = 0

    # -- fault injection ------------------------------------------------------

    def install_faults(self, plan):
        """Install a :class:`~repro.faults.plan.FaultPlan` (or an already
        built injector) on this simulator; returns the active injector.

        The injector's clock is the simulated clock, so rule windows are
        sim-time intervals; passing ``None`` uninstalls.
        """
        if plan is None:
            self.faults = None
            return None
        from repro.faults.injector import FaultInjector

        if isinstance(plan, FaultInjector):
            self.faults = plan
        else:
            self.faults = FaultInjector(plan, clock=lambda: self.now, obs=self.obs)
        return self.faults

    # -- scheduling ---------------------------------------------------------

    def _push(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Enqueue a triggered event for processing after ``delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, event))

    # -- factories ------------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event firing after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def all_of(self, events: _t.Sequence[Event]) -> AllOf:
        """Barrier over ``events``."""
        return AllOf(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> AnyOf:
        """Race over ``events``."""
        return AnyOf(self, events)

    def spawn(
        self, gen: _t.Generator, name: str = ""
    ) -> "Process":
        """Start a new process from a generator and return its Process."""
        from repro.sim.process import Process

        return Process(self, gen, name=name)

    # -- run loop -------------------------------------------------------------

    def peek(self) -> float:
        """Timestamp of the next event, or ``inf`` if none is queued."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing the clock to it."""
        if not self._heap:
            raise DeadlockError("no events left to process")
        t, _prio, _seq, event = heapq.heappop(self._heap)
        if t < self.now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self.now = t
        self.processed_events += 1
        if self.obs.enabled:
            # repr(event) is not free; the untraced hot loop must not pay it
            self.obs.record("event", self.now, repr(event))
        event._process()

    def run(self, until: float | Event | None = None) -> object:
        """Run until the heap drains, a deadline passes, or an event fires.

        Parameters
        ----------
        until:
            ``None``  — run until no events remain.
            ``float`` — run until the clock would pass this time, then set
            the clock to exactly that time.
            ``Event`` — run until the event is processed; returns its value
            and raises its exception if it failed.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            if until is None:
                while self._heap:
                    self.step()
                return None
            if isinstance(until, Event):
                stop = until
                if stop.processed:
                    pass
                else:
                    flag: list[bool] = []
                    stop.add_callback(lambda _ev: flag.append(True))
                    while not flag:
                        if not self._heap:
                            raise DeadlockError(
                                f"event {stop!r} will never fire: "
                                "simulation ran out of events"
                            )
                        self.step()
                if not stop.ok:
                    raise _t.cast(BaseException, stop.value)
                return stop.value
            deadline = float(until)
            if deadline < self.now:
                raise SimulationError(
                    f"until={deadline} is in the past (now={self.now})"
                )
            while self._heap and self._heap[0][0] <= deadline:
                self.step()
            self.now = deadline
            return None
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Simulator t={self.now:.6f} queued={len(self._heap)}>"
