"""Synchronisation primitives built on events.

These are thin, deterministic analogues of the threading primitives the
real McSD daemons would use: condition-style signals, counting semaphores,
cyclic barriers, and countdown latches.
"""

from __future__ import annotations

import collections
import typing as _t

from repro.errors import SimulationError
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["Signal", "Semaphore", "Barrier", "Latch"]


class Signal:
    """A broadcast condition: ``wait()`` events fire on the next ``fire()``.

    Each ``fire(value)`` wakes everyone currently waiting; later waiters wait
    for the next firing (pulse semantics, like ``Condition.notify_all``).
    """

    def __init__(self, sim: "Simulator", name: str = "signal"):
        self.sim = sim
        self.name = name
        self._waiters: list[Event] = []
        #: number of times fire() has been called
        self.fired_count = 0

    def wait(self) -> Event:
        """An event that fires at the next :meth:`fire`."""
        ev = Event(self.sim, name=f"wait:{self.name}")
        self._waiters.append(ev)
        return ev

    def fire(self, value: object = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        self.fired_count += 1
        for ev in waiters:
            ev.succeed(value)
        return len(waiters)


class Semaphore:
    """Counting semaphore with FIFO acquire order."""

    def __init__(self, sim: "Simulator", value: int = 1, name: str = "sem"):
        if value < 0:
            raise SimulationError("semaphore initial value must be >= 0")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: collections.deque[Event] = collections.deque()

    @property
    def value(self) -> int:
        """Currently available permits."""
        return self._value

    def acquire(self) -> Event:
        """Take one permit; pending while none are available."""
        ev = Event(self.sim, name=f"acq:{self.name}")
        if self._value > 0:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def cancel(self, ev: Event) -> bool:
        """Withdraw a still-pending :meth:`acquire`.

        An interrupted waiter (e.g. a timed-out smartFAM call) must remove
        its queued acquire, or the next ``release`` would hand the permit
        to a dead process and strand it forever.  Returns True when the
        event was queued and removed; a triggered event is not cancellable
        (its holder owns a permit and must ``release`` it).
        """
        try:
            self._waiters.remove(ev)
            return True
        except ValueError:
            return False

    def release(self) -> None:
        """Return one permit, waking the oldest waiter if any."""
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1


class Barrier:
    """Cyclic barrier for ``parties`` processes.

    The Nth arrival releases everyone and resets the barrier.  Arrivals get
    their 0-based arrival index as the event value.
    """

    def __init__(self, sim: "Simulator", parties: int, name: str = "barrier"):
        if parties < 1:
            raise SimulationError("barrier needs >= 1 parties")
        self.sim = sim
        self.parties = parties
        self.name = name
        self._waiting: list[Event] = []
        #: completed generations
        self.generations = 0

    def arrive(self) -> Event:
        """Arrive at the barrier; fires when all parties have arrived."""
        ev = Event(self.sim, name=f"arrive:{self.name}")
        index = len(self._waiting)
        self._waiting.append(ev)
        del index  # the arrival index is delivered as each event's value
        if len(self._waiting) == self.parties:
            waiting, self._waiting = self._waiting, []
            self.generations += 1
            for i, w in enumerate(waiting):
                w.succeed(i)
        return ev


class Latch:
    """Countdown latch: opens permanently once ``count`` reaches zero."""

    def __init__(self, sim: "Simulator", count: int, name: str = "latch"):
        if count < 0:
            raise SimulationError("latch count must be >= 0")
        self.sim = sim
        self.count = count
        self.name = name
        self._open = Event(sim, name=f"open:{name}")
        if count == 0:
            self._open.succeed()

    @property
    def opened(self) -> bool:
        """True once the count has hit zero."""
        return self._open.triggered

    def count_down(self, n: int = 1) -> None:
        """Decrement the count, opening the latch at zero."""
        if n < 1:
            raise SimulationError("count_down amount must be >= 1")
        if self.count == 0:
            return
        self.count = max(0, self.count - n)
        if self.count == 0 and not self._open.triggered:
            self._open.succeed()

    def wait(self) -> Event:
        """An event fired when (or if already) the latch is open."""
        if self._open.triggered:
            ev = Event(self.sim, name=f"wait:{self.name}")
            ev.succeed()
            return ev
        return self._proxy()

    def _proxy(self) -> Event:
        ev = Event(self.sim, name=f"wait:{self.name}")
        self._open.add_callback(lambda _e: ev.succeed())
        return ev
