"""Exception hierarchy for the McSD reproduction.

Every failure mode the paper discusses has a dedicated exception so that
tests and benchmarks can assert on *why* something failed (e.g. the original
Phoenix runtime OOM-ing past ~60 % of node memory, Section IV-B).
"""

from __future__ import annotations

__all__ = [
    "McSDError",
    "SimulationError",
    "DeadlockError",
    "InterruptError",
    "HardwareError",
    "OutOfMemoryError",
    "DiskError",
    "NetworkError",
    "RoutingError",
    "FileSystemError",
    "FileNotFoundInVFS",
    "FileExistsInVFS",
    "NotADirectoryInVFS",
    "IsADirectoryInVFS",
    "StaleHandleError",
    "NFSError",
    "SmartFAMError",
    "ModuleNotRegisteredError",
    "ProtocolError",
    "PhoenixError",
    "PhoenixMemoryError",
    "PartitionError",
    "IntegrityError",
    "OffloadError",
    "OffloadTimeoutError",
    "PlacementError",
    "ConfigError",
    "WorkloadError",
]


class McSDError(Exception):
    """Base class for every error raised by this package."""


# --------------------------------------------------------------------------
# Simulation kernel
# --------------------------------------------------------------------------


class SimulationError(McSDError):
    """Error inside the discrete-event kernel."""


class DeadlockError(SimulationError):
    """The simulator ran out of events while processes were still waiting."""


class InterruptError(SimulationError):
    """A simulated process was interrupted while waiting.

    The interrupting cause is available as ``.cause``.
    """

    def __init__(self, cause: object = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


# --------------------------------------------------------------------------
# Hardware models
# --------------------------------------------------------------------------


class HardwareError(McSDError):
    """Error in a hardware model."""


class OutOfMemoryError(HardwareError):
    """A memory allocation exceeded the node's physical + swap capacity."""

    def __init__(self, requested: int, available: int, node: str = "?"):
        super().__init__(
            f"out of memory on {node}: requested {requested} bytes, "
            f"{available} available"
        )
        self.requested = requested
        self.available = available
        self.node = node


class DiskError(HardwareError):
    """Error in the disk model."""


# --------------------------------------------------------------------------
# Network
# --------------------------------------------------------------------------


class NetworkError(McSDError):
    """Error in the network fabric."""


class RoutingError(NetworkError):
    """No route between two endpoints."""


# --------------------------------------------------------------------------
# File systems
# --------------------------------------------------------------------------


class FileSystemError(McSDError):
    """Error in the simulated VFS / local FS / NFS."""


class FileNotFoundInVFS(FileSystemError):
    """Path does not exist."""


class FileExistsInVFS(FileSystemError):
    """Path already exists (exclusive create)."""


class NotADirectoryInVFS(FileSystemError):
    """A path component is a regular file."""


class IsADirectoryInVFS(FileSystemError):
    """Attempted file I/O on a directory."""


class StaleHandleError(FileSystemError):
    """File handle refers to a deleted inode (NFS staleness)."""


class NFSError(FileSystemError):
    """NFS client/server protocol error."""


# --------------------------------------------------------------------------
# smartFAM
# --------------------------------------------------------------------------


class SmartFAMError(McSDError):
    """Error in the smartFAM invocation mechanism."""


class ModuleNotRegisteredError(SmartFAMError):
    """The host invoked a processing module that was never preloaded."""


class ProtocolError(SmartFAMError):
    """Malformed log-file record."""


# --------------------------------------------------------------------------
# Phoenix MapReduce runtime
# --------------------------------------------------------------------------


class PhoenixError(McSDError):
    """Error in the Phoenix-style MapReduce runtime."""


class PhoenixMemoryError(PhoenixError):
    """The original Phoenix runtime cannot hold the job's working set.

    The paper (Section IV-B) observed that Phoenix fails once required data
    exceeds ~60 % of node memory; Section V-B reports WC/SM failing beyond
    1.5 GB on the 2 GB testbed nodes.
    """

    def __init__(self, footprint: int, capacity: int, app: str = "?"):
        super().__init__(
            f"Phoenix cannot support {app}: working set {footprint} bytes "
            f"exceeds supportable fraction of {capacity} bytes of memory"
        )
        self.footprint = footprint
        self.capacity = capacity
        self.app = app


# --------------------------------------------------------------------------
# Partitioning
# --------------------------------------------------------------------------


class PartitionError(McSDError):
    """Error planning or applying a partition."""


class IntegrityError(PartitionError):
    """The integrity check could not find a safe fragment boundary."""


# --------------------------------------------------------------------------
# McSD framework
# --------------------------------------------------------------------------


class OffloadError(McSDError):
    """Offloading a job to a smart-storage node failed."""


class OffloadTimeoutError(OffloadError):
    """An offloaded call produced no result within its deadline.

    The smartFAM channel has no connection to break: a dead SD daemon just
    never writes the result record, so liveness comes from host-side
    deadlines (the fault-tolerance mechanism of Section VI's future work).
    """

    def __init__(self, module: str, timeout: float):
        super().__init__(f"module {module!r} produced no result within {timeout}s")
        self.module = module
        self.timeout = timeout


class PlacementError(McSDError):
    """No feasible placement for a job under the active policy."""


class ConfigError(McSDError):
    """Invalid hardware/cluster configuration."""


class WorkloadError(McSDError):
    """Invalid workload specification."""
