"""Exception hierarchy for the McSD reproduction.

Every failure mode the paper discusses has a dedicated exception so that
tests and benchmarks can assert on *why* something failed (e.g. the original
Phoenix runtime OOM-ing past ~60 % of node memory, Section IV-B).
"""

from __future__ import annotations

__all__ = [
    "McSDError",
    "is_retryable",
    "mark_retryable",
    "SimulationError",
    "DeadlockError",
    "InterruptError",
    "HardwareError",
    "OutOfMemoryError",
    "DiskError",
    "NetworkError",
    "RoutingError",
    "FileSystemError",
    "FileNotFoundInVFS",
    "FileExistsInVFS",
    "NotADirectoryInVFS",
    "IsADirectoryInVFS",
    "StaleHandleError",
    "NFSError",
    "SmartFAMError",
    "ModuleNotRegisteredError",
    "ProtocolError",
    "PhoenixError",
    "PhoenixMemoryError",
    "PartitionError",
    "IntegrityError",
    "OffloadError",
    "OffloadTimeoutError",
    "ShuffleArtifactError",
    "DistributedJobError",
    "PlacementError",
    "AdmissionError",
    "ConfigError",
    "WorkloadError",
    "ProvenanceError",
    "FaultInjectedError",
    "WorkerCrashError",
    "SpillCorruptionError",
    "TransportError",
    "TransportCorruptionError",
]


class McSDError(Exception):
    """Base class for every error raised by this package.

    ``retryable`` classifies the failure for every retry site in the
    system: *transient* errors (``True``) are worth retrying — the same
    operation may succeed on the next attempt — while *permanent* errors
    (``False``, the default) must fail fast: no amount of retrying fixes a
    missing module, an invalid configuration, or a working set that does
    not fit in memory.  The class attribute is the default for the type;
    individual instances may override it (see :func:`mark_retryable`),
    which is how injected faults flag themselves transient regardless of
    the carrier exception type.
    """

    #: default transient/permanent classification for this error type
    retryable: bool = False


def mark_retryable(exc: BaseException, retryable: bool = True) -> BaseException:
    """Stamp an instance-level transient/permanent override onto ``exc``."""
    try:
        exc.retryable = retryable  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - exceptions with __slots__
        pass
    return exc


def is_retryable(exc: BaseException) -> bool:
    """Whether a failure is transient (retry) or permanent (fail fast).

    Instance-level ``retryable`` wins over the class default; exceptions
    from outside the taxonomy (OSError and friends from real I/O) default
    to non-retryable unless explicitly marked.
    """
    return bool(getattr(exc, "retryable", False))


# --------------------------------------------------------------------------
# Simulation kernel
# --------------------------------------------------------------------------


class SimulationError(McSDError):
    """Error inside the discrete-event kernel."""


class DeadlockError(SimulationError):
    """The simulator ran out of events while processes were still waiting."""


class InterruptError(SimulationError):
    """A simulated process was interrupted while waiting.

    The interrupting cause is available as ``.cause``.
    """

    def __init__(self, cause: object = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


# --------------------------------------------------------------------------
# Hardware models
# --------------------------------------------------------------------------


class HardwareError(McSDError):
    """Error in a hardware model."""


class OutOfMemoryError(HardwareError):
    """A memory allocation exceeded the node's physical + swap capacity."""

    def __init__(self, requested: int, available: int, node: str = "?"):
        super().__init__(
            f"out of memory on {node}: requested {requested} bytes, "
            f"{available} available"
        )
        self.requested = requested
        self.available = available
        self.node = node


class DiskError(HardwareError):
    """Error in the disk model."""


# --------------------------------------------------------------------------
# Network
# --------------------------------------------------------------------------


class NetworkError(McSDError):
    """Error in the network fabric."""


class RoutingError(NetworkError):
    """No route between two endpoints."""


# --------------------------------------------------------------------------
# File systems
# --------------------------------------------------------------------------


class FileSystemError(McSDError):
    """Error in the simulated VFS / local FS / NFS."""


class FileNotFoundInVFS(FileSystemError):
    """Path does not exist."""


class FileExistsInVFS(FileSystemError):
    """Path already exists (exclusive create)."""


class NotADirectoryInVFS(FileSystemError):
    """A path component is a regular file."""


class IsADirectoryInVFS(FileSystemError):
    """Attempted file I/O on a directory."""


class StaleHandleError(FileSystemError):
    """File handle refers to a deleted inode (NFS staleness).

    Transient by definition: re-resolving the path gets a fresh handle.
    """

    retryable = True


class NFSError(FileSystemError):
    """NFS client/server protocol error.

    Transient by default — NFS is a soft-mount-style RPC protocol here and
    a failed round trip says nothing about the next one.
    """

    retryable = True


# --------------------------------------------------------------------------
# smartFAM
# --------------------------------------------------------------------------


class SmartFAMError(McSDError):
    """Error in the smartFAM invocation mechanism."""


class ModuleNotRegisteredError(SmartFAMError):
    """The host invoked a processing module that was never preloaded."""


class ProtocolError(SmartFAMError):
    """Malformed log-file record.

    Transient: a torn read of a mid-append log decodes as garbage once and
    fine on the next read; genuinely corrupt logs burn out the retry
    budget and surface anyway.
    """

    retryable = True


# --------------------------------------------------------------------------
# Phoenix MapReduce runtime
# --------------------------------------------------------------------------


class PhoenixError(McSDError):
    """Error in the Phoenix-style MapReduce runtime."""


class PhoenixMemoryError(PhoenixError):
    """The original Phoenix runtime cannot hold the job's working set.

    The paper (Section IV-B) observed that Phoenix fails once required data
    exceeds ~60 % of node memory; Section V-B reports WC/SM failing beyond
    1.5 GB on the 2 GB testbed nodes.
    """

    def __init__(self, footprint: int, capacity: int, app: str = "?"):
        super().__init__(
            f"Phoenix cannot support {app}: working set {footprint} bytes "
            f"exceeds supportable fraction of {capacity} bytes of memory"
        )
        self.footprint = footprint
        self.capacity = capacity
        self.app = app


# --------------------------------------------------------------------------
# Partitioning
# --------------------------------------------------------------------------


class PartitionError(McSDError):
    """Error planning or applying a partition."""


class IntegrityError(PartitionError):
    """The integrity check could not find a safe fragment boundary."""


# --------------------------------------------------------------------------
# McSD framework
# --------------------------------------------------------------------------


class OffloadError(McSDError):
    """Offloading a job to a smart-storage node failed."""


class OffloadTimeoutError(OffloadError):
    """An offloaded call produced no result within its deadline.

    The smartFAM channel has no connection to break: a dead SD daemon just
    never writes the result record, so liveness comes from host-side
    deadlines (the fault-tolerance mechanism of Section VI's future work).
    """

    retryable = True

    def __init__(self, module: str, timeout: float):
        super().__init__(f"module {module!r} produced no result within {timeout}s")
        self.module = module
        self.timeout = timeout


class ShuffleArtifactError(OffloadError):
    """A crc32-framed shuffle artifact failed its integrity check.

    Transient: map shards are deterministic, so the distributed engine
    invalidates the corrupt artifact in the attempt manifest and rebuilds
    exactly the lost pieces (a partial restart), escalating to a whole-job
    restart only when the rebuild budget is exhausted.  ``shard`` and
    ``partition`` attribute the frame back to its producer when known.
    """

    retryable = True

    def __init__(
        self,
        path: str,
        shard: int | None = None,
        partition: int | None = None,
        detail: str = "",
    ):
        where = ", ".join(
            f"{label} {value}"
            for label, value in (("shard", shard), ("partition", partition))
            if value is not None
        )
        super().__init__(
            f"shuffle artifact {path!r}"
            + (f" ({where})" if where else "")
            + " failed its crc32 frame check"
            + (f": {detail}" if detail else "")
        )
        self.path = path
        self.shard = shard
        self.partition = partition


class DistributedJobError(OffloadError):
    """A distributed (sharded) job ran out of healthy shard nodes.

    Transient from the control plane's point of view: the scheduler may
    retry the job on the surviving replicas or fall back to a single-node
    run on the host.  ``excluded`` names the shard nodes the engine gave
    up on; ``timed_out`` the subset whose daemons missed a deadline (the
    quarantine signal); ``failures`` is the structured per-shard history —
    one ``{"node", "phase", "cause", "attempt", "at"}`` dict per observed
    failure — that :meth:`breakdown` renders for log lines.
    """

    retryable = True

    def __init__(
        self, app: str, attempts: int, excluded=(), timed_out=(), failures=()
    ):
        super().__init__(
            f"distributed job {app!r} failed after {attempts} attempt(s); "
            f"excluded nodes: {sorted(excluded) or 'none'}"
        )
        self.app = app
        self.attempts = attempts
        self.excluded = set(excluded)
        self.timed_out = set(timed_out)
        self.failures = list(failures)

    def breakdown(self, limit: int = 4) -> str:
        """Compact ``phase@node:Cause`` rendering of the failure history."""
        if not self.failures:
            return "no recorded failures"
        parts = [
            f"{f.get('phase', '?')}@{f.get('node', '?')}:{f.get('cause', '?')}"
            for f in self.failures[:limit]
        ]
        extra = len(self.failures) - limit
        if extra > 0:
            parts.append(f"+{extra} more")
        return ", ".join(parts)


class PlacementError(McSDError):
    """No feasible placement for a job under the active policy."""


class AdmissionError(McSDError):
    """The scheduler refused a job at admission (bounded-queue backpressure).

    Deliberately *not* retryable by the runtime's retry sites: rejection is
    the control plane shedding load so overload degrades predictably; the
    submitting client decides whether to resubmit later.  A rejected job
    never entered the queue — admitted jobs are never dropped.
    """

    def __init__(self, job: str, queued: int, limit: int):
        super().__init__(
            f"job {job!r} rejected at admission: queue full ({queued}/{limit})"
        )
        self.job = job
        self.queued = queued
        self.limit = limit


class ConfigError(McSDError):
    """Invalid hardware/cluster configuration."""


class WorkloadError(McSDError):
    """Invalid workload specification."""


class ProvenanceError(McSDError):
    """A trace artifact does not belong to the run being analyzed.

    Raised by the :mod:`repro.obs.export` loaders when a caller states the
    run id it expects and the file carries a different one — mixing spans
    from one run with metrics from another produces breakdowns that look
    plausible and mean nothing.
    """

    def __init__(self, path: str, expected: str, found: str | None):
        super().__init__(
            f"{path!r} belongs to run {found!r}, expected run {expected!r}"
        )
        self.path = path
        self.expected = expected
        self.found = found


# --------------------------------------------------------------------------
# Fault injection & fault-tolerant execution
# --------------------------------------------------------------------------


class FaultInjectedError(McSDError):
    """An error produced by the deterministic fault-injection layer.

    Raised by injection hooks that have no more specific carrier type;
    hooks that *do* impersonate a layer's native exception (DiskError,
    NFSError, ...) stamp that instance with ``retryable=True`` via
    :func:`mark_retryable` instead.
    """

    retryable = True

    def __init__(self, site: str, detail: str = ""):
        super().__init__(f"injected fault at {site}" + (f": {detail}" if detail else ""))
        self.site = site


class WorkerCrashError(McSDError):
    """A pool worker process died while holding a task.

    Transient by default — the pool respawns workers and re-dispatches the
    in-flight batch; the *exhausted-retries* variant is raised with an
    instance-level ``retryable=False`` stamp.
    """

    retryable = True

    def __init__(self, msg: str, task_index: int | None = None):
        super().__init__(msg)
        self.task_index = task_index


class SpillCorruptionError(McSDError):
    """A spilled run block failed its crc32 integrity check.

    Transient: the reader first re-reads the block (in-memory/transport
    corruption), then the engine recomputes the fragment from its source
    chunks (on-disk corruption) — the data is never lost, only the spill.
    """

    retryable = True

    def __init__(self, path: str, block_index: int, run_index: int | None = None):
        super().__init__(
            f"spill block {block_index} of {path!r} failed its crc32 check"
        )
        self.path = path
        self.block_index = block_index
        self.run_index = run_index


class TransportError(McSDError):
    """Error in the worker→parent result transport."""


class TransportCorruptionError(TransportError):
    """A shared-memory result slot failed its crc32 frame check.

    Transient: the slot is freed and the task re-dispatched (bounded by
    the pool's per-task retry budget) — the input chunks are the durable
    copy, so a torn or corrupted slot costs one map attempt, never
    answers.
    """

    retryable = True

    def __init__(self, slot: int, task_index: int | None = None, detail: str = ""):
        super().__init__(
            f"transport slot {slot} failed its crc32 frame check"
            + (f" (task {task_index})" if task_index is not None else "")
            + (f": {detail}" if detail else "")
        )
        self.slot = slot
        self.task_index = task_index
