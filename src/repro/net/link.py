"""A unidirectional link: latency + serialized bandwidth.

Transmitting ``n`` bytes holds the link for ``n / bandwidth`` and the data
arrives ``latency`` later (cut-through: latency does not occupy the link).
Concurrent senders queue FIFO, so a link is a standard M/G/1-style server
and contention falls out naturally.
"""

from __future__ import annotations

import typing as _t

from repro.errors import NetworkError
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource

__all__ = ["Link"]


class Link:
    """One direction of a network cable/port."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        latency: float,
        name: str = "link",
    ):
        if bandwidth <= 0:
            raise NetworkError(f"{name}: bandwidth must be > 0")
        if latency < 0:
            raise NetworkError(f"{name}: latency must be >= 0")
        self.sim = sim
        self.bandwidth = bandwidth
        self.latency = latency
        self.name = name
        self._server = Resource(sim, capacity=1, name=f"{name}.tx")
        #: total bytes pushed through (stats)
        self.bytes_sent = 0
        #: accumulated serialization time (utilization numerator)
        self.busy_time = 0.0

    def tx_time(self, nbytes: int) -> float:
        """Serialization time for ``nbytes``."""
        return nbytes / self.bandwidth

    @property
    def queue_len(self) -> int:
        """Transfers waiting for the transmitter."""
        return self._server.queue_len

    def transmit(self, nbytes: int, label: str = "tx") -> Event:
        """Send ``nbytes``; the returned Process completes at *arrival*."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise NetworkError(f"negative transmit size {nbytes}")

        def _proc() -> _t.Generator:
            with self._server.request() as req:
                yield req
                ser = self.tx_time(nbytes)
                yield self.sim.timeout(ser)
                self.busy_time += ser
                self.bytes_sent += nbytes
            obs = self.sim.obs
            obs.count("net.bytes", nbytes)
            if obs.enabled:
                obs.observe("net.tx_bytes", nbytes)
            # propagation happens after the transmitter is released
            if self.latency > 0:
                yield self.sim.timeout(self.latency)
            return nbytes

        return self.sim.spawn(_proc(), name=f"{self.name}.{label}")

    def utilization(self, now: float | None = None) -> float:
        """busy_time / elapsed simulated time."""
        t = self.sim.now if now is None else now
        return self.busy_time / t if t > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Link {self.name} {self.bandwidth / 1e6:.0f}MB/s q={self.queue_len}>"
