"""The fabric: endpoint mailboxes + segmented flow transfer over the switch.

``send`` moves a :class:`~repro.net.message.Message` from its source port
to the destination inbox, charging uplink and downlink serialization with
segment-level pipelining: while segment *i* crosses the destination's
downlink, segment *i+1* is already on the source's uplink.  Loopback
messages skip the wire entirely.
"""

from __future__ import annotations

import typing as _t

from repro.config import NetworkConfig
from repro.errors import NetworkError
from repro.net.message import Flow, Message
from repro.net.switch import Switch
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.resources import Store

__all__ = ["Fabric"]


class Fabric:
    """The cluster interconnect seen by nodes."""

    def __init__(self, sim: Simulator, config: NetworkConfig | None = None):
        self.sim = sim
        self.config = config or NetworkConfig()
        self.switch = Switch(sim, self.config)
        self._inboxes: dict[str, Store] = {}
        #: completed flows (stats)
        self.flows: list[Flow] = []
        #: total bytes delivered endpoint-to-endpoint
        self.bytes_delivered = 0
        #: messages lost to injected faults (stats)
        self.dropped = 0

    # -- topology ---------------------------------------------------------------

    def attach(self, endpoint: str) -> Store:
        """Attach ``endpoint``; returns its inbox (idempotent)."""
        inbox = self._inboxes.get(endpoint)
        if inbox is None:
            self.switch.attach(endpoint)
            inbox = Store(self.sim, name=f"inbox:{endpoint}")
            self._inboxes[endpoint] = inbox
        return inbox

    def inbox(self, endpoint: str) -> Store:
        """The inbox of an attached endpoint."""
        try:
            return self._inboxes[endpoint]
        except KeyError:
            raise NetworkError(f"{endpoint!r} is not attached") from None

    @property
    def endpoints(self) -> list[str]:
        """All attached endpoints."""
        return list(self._inboxes)

    # -- transfers ---------------------------------------------------------------

    def _segments(self, nbytes: int) -> list[int]:
        seg = self.config.segment_bytes
        if nbytes <= 0:
            return [0]
        full, rem = divmod(nbytes, seg)
        out = [seg] * full
        if rem:
            out.append(rem)
        return out

    def send(self, msg: Message) -> Event:
        """Deliver ``msg`` into the destination inbox; Process completes then.

        Injected faults at ``net.deliver``: *drop* pays the wire cost but
        never delivers into the inbox (a lost frame — the sender's send
        still "completes", as a real NIC's does), *delay* adds latency
        before delivery.
        """
        dst_inbox = self.inbox(msg.dst)
        self.inbox(msg.src)  # validates attachment
        msg.sent_at = self.sim.now
        flow = Flow(msg.src, msg.dst, msg.nbytes, started_at=self.sim.now)
        inj = self.sim.faults
        decision = None
        if inj is not None:
            decision = inj.check(
                "net.deliver", src=msg.src, dst=msg.dst, kind=msg.kind
            )

        if msg.src == msg.dst:

            def _loopback() -> _t.Generator:
                # Local delivery: no wire cost, but still an event boundary
                # so ordering with real messages stays consistent.
                yield self.sim.timeout(0.0)
                flow.finished_at = self.sim.now
                self.flows.append(flow)
                if decision is not None and decision.action == "drop":
                    self.dropped += 1
                    return msg
                if decision is not None and decision.action == "delay":
                    yield self.sim.timeout(decision.delay)
                self.bytes_delivered += msg.nbytes
                yield dst_inbox.put(msg)
                return msg

            return self.sim.spawn(_loopback(), name=f"loopback:{msg.src}")

        uplink, downlink = self.switch.path(msg.src, msg.dst)
        segments = self._segments(msg.nbytes)
        flow.segments = len(segments)

        def _flow() -> _t.Generator:
            down_done: list[Event] = []
            for seg in segments:
                yield uplink.transmit(seg, label=f"m{msg.msg_id}")
                down_done.append(downlink.transmit(seg, label=f"m{msg.msg_id}"))
            if down_done:
                yield self.sim.all_of(down_done)
            flow.finished_at = self.sim.now
            self.flows.append(flow)
            if decision is not None and decision.action == "drop":
                self.dropped += 1
                return msg
            if decision is not None and decision.action == "delay":
                yield self.sim.timeout(decision.delay)
            self.bytes_delivered += msg.nbytes
            yield dst_inbox.put(msg)
            return msg

        return self.sim.spawn(_flow(), name=f"flow:{msg.src}->{msg.dst}")

    def transfer(self, src: str, dst: str, nbytes: int, kind: str = "bulk") -> Event:
        """Convenience bulk transfer; completes at delivery."""
        return self.send(Message(src=src, dst=dst, nbytes=nbytes, kind=kind))

    # -- stats ----------------------------------------------------------------------

    def flows_between(self, src: str, dst: str) -> list[Flow]:
        """Completed flows from src to dst."""
        return [f for f in self.flows if f.src == src and f.dst == dst]
