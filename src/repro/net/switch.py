"""A non-blocking Ethernet switch with per-port full-duplex links.

Each attached endpoint gets an *uplink* (endpoint -> switch) and a
*downlink* (switch -> endpoint).  The crossbar itself is non-blocking (a
reasonable model of a small GbE switch), so a unicast path consumes exactly
the sender's uplink and the receiver's downlink.
"""

from __future__ import annotations

import typing as _t

from repro.config import NetworkConfig
from repro.errors import NetworkError, RoutingError
from repro.net.link import Link
from repro.sim.kernel import Simulator

__all__ = ["Switch", "Port"]


class Port:
    """The pair of directed links connecting one endpoint to the switch."""

    __slots__ = ("endpoint", "uplink", "downlink")

    def __init__(self, endpoint: str, uplink: Link, downlink: Link):
        self.endpoint = endpoint
        self.uplink = uplink
        self.downlink = downlink

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Port {self.endpoint}>"


class Switch:
    """A single switch wiring up named endpoints (Fig 3's 1 Gbit switch)."""

    def __init__(self, sim: Simulator, config: NetworkConfig | None = None, name: str = "switch"):
        self.sim = sim
        self.config = config or NetworkConfig()
        self.name = name
        self._ports: dict[str, Port] = {}

    def attach(self, endpoint: str) -> Port:
        """Create (or return) the port for ``endpoint``."""
        port = self._ports.get(endpoint)
        if port is None:
            up = Link(
                self.sim,
                self.config.link_bandwidth,
                self.config.link_latency / 2.0,
                name=f"{endpoint}->{self.name}",
            )
            down = Link(
                self.sim,
                self.config.link_bandwidth,
                self.config.link_latency / 2.0,
                name=f"{self.name}->{endpoint}",
            )
            port = Port(endpoint, up, down)
            self._ports[endpoint] = port
        return port

    def port(self, endpoint: str) -> Port:
        """The existing port for ``endpoint`` (raises if not attached)."""
        try:
            return self._ports[endpoint]
        except KeyError:
            raise RoutingError(f"{endpoint!r} is not attached to {self.name}") from None

    @property
    def endpoints(self) -> list[str]:
        """Attached endpoint names (attachment order)."""
        return list(self._ports)

    def path(self, src: str, dst: str) -> tuple[Link, Link]:
        """(src uplink, dst downlink) for a unicast transfer."""
        if src == dst:
            raise RoutingError(f"loopback {src!r} does not traverse the switch")
        return self.port(src).uplink, self.port(dst).downlink
