"""Simulated cluster interconnect: links, a store-and-forward switch, flows.

Topology (Fig 3): every node owns a full-duplex port on one Gigabit switch.
A transfer from A to B is a :class:`~repro.net.message.Flow` that occupies
A's uplink and B's downlink; large flows are carved into segments so that
concurrent flows interleave (fair sharing at segment granularity).
"""

from repro.net.fabric import Fabric
from repro.net.link import Link
from repro.net.message import Flow, Message
from repro.net.switch import Switch

__all__ = ["Fabric", "Link", "Switch", "Message", "Flow"]
