"""Message and flow descriptors for the simulated fabric."""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

__all__ = ["Message", "Flow"]

_msg_ids = itertools.count(1)


@dataclasses.dataclass
class Message:
    """An application-level datagram delivered through the fabric.

    ``payload`` is an arbitrary Python object (RPC request, NFS reply, ...);
    ``nbytes`` is the *simulated* wire size, which need not match the real
    payload size (most payloads are descriptors for data that is never
    materialized).
    """

    src: str
    dst: str
    nbytes: int
    payload: object = None
    kind: str = "data"
    msg_id: int = dataclasses.field(default_factory=lambda: next(_msg_ids))
    sent_at: float = 0.0

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"negative message size {self.nbytes}")


@dataclasses.dataclass
class Flow:
    """Bookkeeping for one bulk transfer (stats / tracing)."""

    src: str
    dst: str
    nbytes: int
    started_at: float
    finished_at: float | None = None
    segments: int = 0

    @property
    def duration(self) -> float:
        """Transfer latency (valid once finished)."""
        if self.finished_at is None:
            raise ValueError("flow not finished")
        return self.finished_at - self.started_at

    @property
    def goodput(self) -> float:
        """Achieved bytes/second (valid once finished)."""
        d = self.duration
        return self.nbytes / d if d > 0 else float("inf")
