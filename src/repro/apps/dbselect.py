"""A database operation for McSD: filtered aggregation (SELECT ... WHERE).

Section VI names "database operations" as the prime candidates for
preloading into McSD nodes — the classic active-disk workload (SmartSTOR,
IDISK and the Memik et al. smart-disk architecture were all built around
DSS scans).  This module implements the canonical one:

    SELECT key_col, AGG(val_col) FROM table WHERE val_col >= threshold
    GROUP BY key_col

over a line-oriented table (``key,value`` records).  The map scans
records, filters, and emits ``(key, value)``; the combiner/reduce fold the
aggregate; fragments merge by re-aggregating — so the operation is fully
partition-able and offload-able like the paper's three benchmarks.

Calibration: parsing + predicate ~ 40 ops/byte (between SM's scan and
WC's tokenise), footprint ~2x (records + group table).
"""

from __future__ import annotations

import typing as _t

from repro.errors import WorkloadError
from repro.phoenix.api import CostProfile, Emit, MapReduceSpec
from repro.phoenix.sort import sort_by_value_desc

__all__ = ["DB_PROFILE", "db_map", "db_reduce", "db_merge", "make_dbselect_spec"]

#: filtered-aggregation cost/memory profile (see module docstring)
DB_PROFILE = CostProfile(
    name="dbselect",
    map_ops_per_byte=40.0,
    sort_ops_per_byte=4.0,
    reduce_ops_per_byte=2.0,
    merge_ops_per_byte=0.5,
    footprint_factor=2.0,
    seq_footprint_factor=1.05,
    intermediate_ratio=0.3,
    output_ratio=0.01,
)

_AGGS: dict[str, _t.Callable[[list], float]] = {
    "sum": lambda vs: float(sum(vs)),
    "count": lambda vs: float(len(vs)),
    "max": lambda vs: float(max(vs)),
    "min": lambda vs: float(min(vs)),
}


def db_map(data: object, emit: Emit, params: dict) -> None:
    """Scan ``key,value`` records; emit values passing the predicate.

    ``params``: ``threshold`` (default 0.0) — the WHERE clause; malformed
    records are skipped (robustness to torn lines is the partitioner's
    job, but defensive parsing costs nothing here).
    """
    if isinstance(data, str):
        data = data.encode()
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"dbselect expects record text, got {type(data).__name__}")
    threshold = float(params.get("threshold", 0.0))
    for line in bytes(data).splitlines():
        key, _, raw = line.partition(b",")
        if not raw:
            continue
        try:
            value = float(raw)
        except ValueError:
            continue
        if value >= threshold:
            emit(key, value)


def db_reduce(key: object, values: list, params: dict) -> float:
    """Fold one group with the requested aggregate (default: sum)."""
    agg = params.get("agg", "sum")
    try:
        fn = _AGGS[agg]
    except KeyError:
        raise WorkloadError(f"unknown aggregate {agg!r}; pick from {sorted(_AGGS)}")
    return fn(values)


def db_merge(outputs: list, params: dict) -> list:
    """Re-aggregate per-fragment groups (sum/count add; max/min fold)."""
    agg = params.get("agg", "sum")
    folded: dict[object, float] = {}
    for part in outputs:
        for key, value in part:
            if key not in folded:
                folded[key] = value
            elif agg in ("sum", "count"):
                folded[key] += value
            elif agg == "max":
                folded[key] = max(folded[key], value)
            else:  # min
                folded[key] = min(folded[key], value)
    return sort_by_value_desc(list(folded.items()))


def make_dbselect_spec(profile: CostProfile | None = None) -> MapReduceSpec:
    """The filtered-aggregation program for the McSD framework."""
    return MapReduceSpec(
        name="dbselect",
        map_fn=db_map,
        reduce_fn=db_reduce,
        combine_fn=None,  # aggregates like max/min need the value list
        merge_fn=db_merge,
        profile=profile or DB_PROFILE,
        needs_sort=True,
        sort_output=True,
        delimiters=b"\n",
    )
