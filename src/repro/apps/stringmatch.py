"""String Match (SM).

"Each Map searches one line in the 'encrypt' file to check whether the
target string from a 'keys' file is in the line.  Neither sort or the
reduce stage is required." (Section V-A)

Memory: "the memory footprint of String-Match is around two times of the
input data size" (Section V-C).

Calibration: ~55 ops per declared byte (=> ~36 MB/s per 2 GHz core):
every line is tested against each key, so SM is compute-bound too, though
with a lighter per-byte cost and footprint than WC — which is why its
partition speedups are the smaller ones in Fig 8.

The map emits ``(key, line_number)`` for every matching line; with the
default combiner the per-key value becomes a match count, and fragment
outputs concatenate (offsets are fragment-relative, disambiguated by the
fragment offset carried in the pair).
"""

from __future__ import annotations

from repro.phoenix.api import CostProfile, Emit, MapReduceSpec
from repro.partition.merge import concat_merge

__all__ = ["SM_PROFILE", "sm_map", "make_stringmatch_spec"]

#: String Match cost/memory profile (see module docstring).
SM_PROFILE = CostProfile(
    name="stringmatch",
    map_ops_per_byte=55.0,
    sort_ops_per_byte=0.0,
    reduce_ops_per_byte=0.0,
    merge_ops_per_byte=0.1,
    footprint_factor=2.0,
    seq_footprint_factor=1.02,
    intermediate_ratio=0.01,
    output_ratio=0.005,
)


def sm_map(data: object, emit: Emit, params: dict) -> None:
    """Check each line of the split against every key; emit matches.

    ``params['keys']`` is the list of target strings (bytes).  Emits
    ``(key, 1)`` per matching line so the combined value is a match count.
    """
    keys = params.get("keys", [])
    if not keys:
        return
    if isinstance(data, str):
        data = data.encode()
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"string match expects text, got {type(data).__name__}")
    bkeys = [k.encode() if isinstance(k, str) else bytes(k) for k in keys]
    for line in bytes(data).splitlines():
        for key in bkeys:
            if key in line:
                emit(key, 1)


def make_stringmatch_spec(profile: CostProfile | None = None) -> MapReduceSpec:
    """The String Match program: map-only, no sort, no reduce."""
    return MapReduceSpec(
        name="stringmatch",
        map_fn=sm_map,
        reduce_fn=None,
        combine_fn=lambda old, new: old + new,
        merge_fn=concat_merge,
        profile=profile or SM_PROFILE,
        needs_sort=False,
        sort_output=False,
        delimiters=b"\n",
    )
