"""Matrix Multiplication (MM).

"Each Map computes multiplication for a set of rows of the output matrix.
It outputs multiplication for a row ID and column ID as the key and the
corresponding result as the value.  The reduce task is just the identity
function." (Section V-A)

MM is the *computation-intensive* half of the multi-application pairs in
Section V-C, so its cost model is flop-based, not byte-based: ``2 n^3``
flops at ~1 op/flop on the reference core.  The payload holds real (small)
numpy matrices that are actually multiplied; the declared dimension ``n``
drives the cost.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.phoenix.api import CostProfile, Emit, InputSpec, MapReduceSpec
from repro.partition.merge import identity_merge

__all__ = ["MatMulProfile", "mm_map", "mm_reduce", "make_matmul_spec", "matmul_input"]

#: bytes per double-precision element
_ELEM = 8


class MatMulProfile(CostProfile):
    """Flop-based cost profile for an ``n x n`` multiplication.

    Declared input size is the two operand matrices (``16 n^2`` bytes);
    the working set adds the output (3 matrices + slack).
    """

    def __init__(self, n: int, ops_per_flop: float = 1.0):
        if n < 1:
            raise WorkloadError(f"matrix dimension must be >= 1, got {n}")
        super().__init__(
            name=f"matmul[{n}]",
            map_ops_per_byte=0.0,
            footprint_factor=1.6,  # A, B in input; + C and runtime slack
            seq_footprint_factor=1.55,
            intermediate_ratio=0.5,  # the output matrix
            output_ratio=0.5,
            setup_ops=2.0e7,
        )
        self.n = n
        self.ops_per_flop = ops_per_flop

    @property
    def flops(self) -> float:
        """Total floating-point operations of the multiplication."""
        return 2.0 * self.n**3

    def input_bytes(self) -> int:
        """Declared size of the two operand matrices."""
        return 2 * self.n * self.n * _ELEM

    def map_ops(self, input_bytes: int) -> float:
        """Flops scaled by the slice's fraction of the full input."""
        frac = input_bytes / max(1, self.input_bytes())
        return self.flops * self.ops_per_flop * frac

    def sort_ops(self, input_bytes: int) -> float:
        """MM needs no sort stage."""
        return 0.0

    def reduce_ops(self, input_bytes: int) -> float:
        """The reduce is the identity function (Section V-A): free."""
        return 0.0

    def merge_ops(self, input_bytes: int) -> float:
        """Assembling row blocks into the output: one pass over C."""
        frac = input_bytes / max(1, self.input_bytes())
        return 0.5 * self.n * self.n * frac

    def sequential_ops(self, input_bytes: int) -> float:
        """Single-threaded multiply + assembly."""
        frac = input_bytes / max(1, self.input_bytes())
        return (self.flops * self.ops_per_flop + 0.5 * self.n * self.n) * frac


def mm_map(data: object, emit: Emit, params: dict) -> None:
    """Multiply a block of A's rows against all of B."""
    if data is None:
        return
    row_start, a_block, b = data  # type: ignore[misc]
    if a_block.size == 0:
        return
    emit(int(row_start), a_block @ b)


def mm_reduce(key: object, values: list, params: dict) -> object:
    """Identity reduce (Section V-A)."""
    return values[0] if len(values) == 1 else values


def _mm_split(payload: object, n_splits: int) -> list:
    """Split A's rows into contiguous blocks; B ships to every task."""
    if payload is None:
        return [None] * n_splits
    a, b = payload  # type: ignore[misc]
    rows = a.shape[0]
    out = []
    base, extra = divmod(rows, n_splits)
    start = 0
    for i in range(n_splits):
        take = base + (1 if i < extra else 0)
        out.append((start, a[start : start + take], b))
        start += take
    return out


def make_matmul_spec(n: int, ops_per_flop: float = 1.0) -> MapReduceSpec:
    """The MM program for a declared ``n x n`` problem."""
    return MapReduceSpec(
        name="matmul",
        map_fn=mm_map,
        reduce_fn=mm_reduce,
        combine_fn=None,
        merge_fn=identity_merge,
        split_fn=_mm_split,
        profile=MatMulProfile(n, ops_per_flop),
        needs_sort=False,
        sort_output=False,
    )


def matmul_input(
    path: str,
    n: int,
    payload_n: int = 64,
    seed: int = 0,
) -> InputSpec:
    """An MM input: declared ``n x n``, materialized ``payload_n x payload_n``.

    The payload matrices are seeded so results are reproducible; tests
    verify the assembled product against ``numpy`` directly.
    """
    if payload_n > n:
        payload_n = n
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((payload_n, payload_n))
    b = rng.standard_normal((payload_n, payload_n))
    return InputSpec(
        path=path,
        size=2 * n * n * _ELEM,
        payload=(a, b),
        params={"n": n, "payload_n": payload_n},
    )


def assemble_product(pairs: list) -> np.ndarray:
    """Stack (row_start, block) map outputs into the full product matrix."""
    blocks = sorted(
        ((k, v) for k, v in pairs if v is not None and getattr(v, "size", 0) > 0),
        key=lambda kv: kv[0],
    )
    if not blocks:
        return np.zeros((0, 0))
    return np.vstack([v for _, v in blocks])
