"""The paper's benchmark applications (Section V-A).

* :mod:`repro.apps.wordcount` — Word Count (WC): ~3x memory footprint,
  full map/sort/reduce pipeline, output sorted by decreasing frequency.
* :mod:`repro.apps.stringmatch` — String Match (SM): ~2x footprint,
  map-only (neither sort nor reduce is required).
* :mod:`repro.apps.matmul` — Matrix Multiplication (MM): compute-bound,
  identity reduce.
* :mod:`repro.apps.smb` — the Sandia Micro Benchmark (SMB) emulation used
  as background "routine work" on the compute nodes.

Each application module exposes ``make_spec()`` returning a
:class:`~repro.phoenix.api.MapReduceSpec` with *real* callbacks and a cost
profile calibrated to 2008-era Core2 throughput (see DESIGN.md §5).
"""

from repro.apps.matmul import MatMulProfile, make_matmul_spec, matmul_input
from repro.apps.smb import SMBTraffic
from repro.apps.stringmatch import SM_PROFILE, make_stringmatch_spec
from repro.apps.wordcount import WC_PROFILE, make_wordcount_spec
from repro.errors import OffloadError

__all__ = [
    "make_wordcount_spec",
    "WC_PROFILE",
    "make_stringmatch_spec",
    "SM_PROFILE",
    "make_matmul_spec",
    "matmul_input",
    "MatMulProfile",
    "SMBTraffic",
    "spec_for_app",
]


def spec_for_app(app: str, params: dict | None = None):
    """The :class:`~repro.phoenix.api.MapReduceSpec` of a named benchmark.

    The single resolution point every engine (offload, scatter-gather,
    distributed) shares, so app-name -> spec mapping cannot drift between
    execution paths.  ``params`` carries app parameters (matmul reads its
    declared dimension ``n`` from it).
    """
    params = params or {}
    if app == "wordcount":
        return make_wordcount_spec()
    if app == "stringmatch":
        return make_stringmatch_spec()
    if app == "matmul":
        return make_matmul_spec(int(params.get("n", 1024)))
    raise OffloadError(f"unknown data app {app!r}")
