"""The paper's benchmark applications (Section V-A).

* :mod:`repro.apps.wordcount` — Word Count (WC): ~3x memory footprint,
  full map/sort/reduce pipeline, output sorted by decreasing frequency.
* :mod:`repro.apps.stringmatch` — String Match (SM): ~2x footprint,
  map-only (neither sort nor reduce is required).
* :mod:`repro.apps.matmul` — Matrix Multiplication (MM): compute-bound,
  identity reduce.
* :mod:`repro.apps.smb` — the Sandia Micro Benchmark (SMB) emulation used
  as background "routine work" on the compute nodes.

Each application module exposes ``make_spec()`` returning a
:class:`~repro.phoenix.api.MapReduceSpec` with *real* callbacks and a cost
profile calibrated to 2008-era Core2 throughput (see DESIGN.md §5).
"""

from repro.apps.matmul import MatMulProfile, make_matmul_spec, matmul_input
from repro.apps.smb import SMBTraffic
from repro.apps.stringmatch import SM_PROFILE, make_stringmatch_spec
from repro.apps.wordcount import WC_PROFILE, make_wordcount_spec

__all__ = [
    "make_wordcount_spec",
    "WC_PROFILE",
    "make_stringmatch_spec",
    "SM_PROFILE",
    "make_matmul_spec",
    "matmul_input",
    "MatMulProfile",
    "SMBTraffic",
]
