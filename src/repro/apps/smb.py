"""Sandia Micro Benchmark (SMB) emulation.

"It is developed by Sandia National Laboratory to evaluate and test
high-performance networks and protocols.  We use it in our experiment to
emulate the routine work." (Section V-A)  The paper runs SMB "among all
the nodes except the McSD smart-storage node".

The emulation is a seeded message-passing pattern: each participant
repeatedly sends fixed-size messages to the next node in the ring (an MPI
ping-pattern), keeping the compute nodes' links busy at a configurable
duty cycle.  This is background load — it perturbs, but does not
participate in, the McSD measurements.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ConfigError
from repro.sim.kernel import Simulator
from repro.units import KB

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node

__all__ = ["SMBTraffic"]

SMB_PORT = "smb"


class SMBTraffic:
    """Background ring traffic among a set of nodes."""

    def __init__(
        self,
        nodes: _t.Sequence["Node"],
        message_bytes: int = KB(64),
        interval: float = 0.02,
        jitter: float = 0.5,
        rng_name: str = "smb",
    ):
        if len(nodes) < 2:
            raise ConfigError("SMB needs at least two participants")
        if message_bytes < 1 or interval <= 0:
            raise ConfigError("bad SMB parameters")
        self.nodes = list(nodes)
        self.sim: Simulator = nodes[0].sim
        self.message_bytes = message_bytes
        self.interval = interval
        self.jitter = min(max(jitter, 0.0), 1.0)
        self.rng = self.sim.rng.stream(rng_name)
        self.active = False
        #: messages exchanged (stats)
        self.messages_sent = 0
        for node in self.nodes:
            node.open_port(SMB_PORT)

    def start(self) -> None:
        """Begin generating traffic (idempotent)."""
        if self.active:
            return
        self.active = True
        for i, node in enumerate(self.nodes):
            peer = self.nodes[(i + 1) % len(self.nodes)]
            self.sim.spawn(
                self._sender(node, peer), name=f"smb:{node.name}->{peer.name}"
            )

    def stop(self) -> None:
        """Stop after the in-flight round."""
        self.active = False

    def _sender(self, src: "Node", dst: "Node") -> _t.Generator:
        while self.active:
            yield src.send(dst.name, SMB_PORT, {"kind": "smb"}, self.message_bytes)
            self.messages_sent += 1
            gap = self.interval
            if self.jitter > 0:
                gap *= 1.0 + self.jitter * (float(self.rng.uniform(-1, 1)))
            yield self.sim.timeout(max(1e-6, gap))
