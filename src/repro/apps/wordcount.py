"""Word Count (WC).

"It counts the frequency of occurrence for each word in a set of files.
The Map tasks process different sections of the input files and return
intermediate data (key, value) that consist of a word and a value of 1.
Then the Reduce tasks add up the values for each identity word.  Finally,
the words are sorted and printed out in accordance with the frequency in
decreasing order." (Section V-A)

Memory: "the memory footprint of Word-Count is around three times of the
input data size" (Section V-C).

Calibration: ~120 ops per declared byte total on the reference core
(=> ~16.7 MB/s per 2 GHz core, Phoenix-era WC throughput), split across
map/sort/reduce/merge.  WC is compute-bound: the 80 MB/s disk keeps up
with even four cores, which is what makes the parallel speedup track the
core count (Fig 8(a)).
"""

from __future__ import annotations

import typing as _t

from repro.phoenix.api import CostProfile, Emit, MapReduceSpec
from repro.partition.merge import sum_merge

__all__ = ["WC_PROFILE", "wc_map", "wc_reduce", "make_wordcount_spec"]

#: Word Count cost/memory profile (see module docstring).
WC_PROFILE = CostProfile(
    name="wordcount",
    map_ops_per_byte=90.0,
    sort_ops_per_byte=20.0,
    reduce_ops_per_byte=8.0,
    merge_ops_per_byte=1.0,
    footprint_factor=3.0,
    seq_footprint_factor=1.05,
    intermediate_ratio=1.0,
    output_ratio=0.02,
)


def wc_map(data: object, emit: Emit, params: dict) -> None:
    """Emit (word, 1) for every word in this split.

    Accepts ``bytes``/``bytearray``/``memoryview`` (zero-copy chunk views
    from :func:`repro.exec.chunks.read_chunk_view`) or ``str``.
    """
    if isinstance(data, (bytes, bytearray, memoryview)):
        words: list = bytes(data).split()
    elif isinstance(data, str):
        words = data.split()
    else:
        raise TypeError(f"word count expects text, got {type(data).__name__}")
    many = getattr(emit, "many", None)
    if many is not None:
        # vectorized counting: the engine folds the whole token list in C
        many(words, 1)
        return
    for word in words:
        emit(word, 1)


def wc_reduce(key: object, values: list, params: dict) -> int:
    """Add up the values for each identity word."""
    return sum(values)


def make_wordcount_spec(profile: CostProfile | None = None) -> MapReduceSpec:
    """The Word Count program in the McSD programming model."""
    return MapReduceSpec(
        name="wordcount",
        map_fn=wc_map,
        reduce_fn=wc_reduce,
        combine_fn=lambda old, new: old + new,
        merge_fn=sum_merge,
        profile=profile or WC_PROFILE,
        needs_sort=True,
        sort_output=True,
        delimiters=b" \t\n\r",
    )
