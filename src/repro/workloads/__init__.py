"""Synthetic workload generators (the paper's datasets are not published).

Inputs follow the reproduction's scale model: each dataset has a
*declared* size (what the cost models see: 500 MB ... 2 GB, matching the
paper's sweeps) and a small *materialized* payload of real bytes with the
same statistical character, which the MapReduce callbacks actually
process.  All generators are seeded and deterministic.
"""

from repro.workloads.arrivals import Arrival, ArrivalProcess, DriveReport
from repro.workloads.keys import encrypted_input, keys_for
from repro.workloads.matrices import matrix_pair
from repro.workloads.sizes import FIG8A_SIZES, FIG8BC_SIZES, FIG9_SIZES, size_label
from repro.workloads.text import text_input, zipf_corpus

__all__ = [
    "Arrival",
    "ArrivalProcess",
    "DriveReport",
    "zipf_corpus",
    "text_input",
    "encrypted_input",
    "keys_for",
    "matrix_pair",
    "FIG8A_SIZES",
    "FIG8BC_SIZES",
    "FIG9_SIZES",
    "size_label",
]
