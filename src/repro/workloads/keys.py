"""String Match workloads: an "encrypt" file and a "keys" file.

Section V-A: each map searches lines of the encrypt file for target
strings from the keys file.  The generator plants a known number of key
occurrences so tests can assert exact match counts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.phoenix.api import InputSpec
from repro.units import KB

__all__ = ["keys_for", "encrypted_input"]


def keys_for(n_keys: int = 4, seed: int = 0, length: int = 8) -> list[bytes]:
    """Deterministic target strings ("keys" file content)."""
    if n_keys < 1:
        raise WorkloadError("need at least one key")
    rng = np.random.default_rng(seed ^ 0x5EED)
    alphabet = np.frombuffer(b"ABCDEFGHIJKLMNOPQRSTUVWXYZ", dtype=np.uint8)
    return [bytes(rng.choice(alphabet, size=length)) for _ in range(n_keys)]


def encrypted_input(
    path: str,
    declared_bytes: int,
    payload_bytes: int = 256 * KB(1),
    keys: list[bytes] | None = None,
    hit_rate: float = 0.05,
    line_bytes: int = 64,
    seed: int = 0,
) -> tuple[InputSpec, list[bytes], int]:
    """(input, keys, planted_hits): an encrypt file with known matches.

    ``hit_rate`` is the fraction of payload lines containing exactly one
    planted key.  Returns the number of planted hits so tests can check
    the match counts exactly.
    """
    if declared_bytes < 1:
        raise WorkloadError("declared_bytes must be >= 1")
    if not 0 <= hit_rate <= 1:
        raise WorkloadError("hit_rate must be in [0, 1]")
    keys = keys if keys is not None else keys_for(seed=seed)
    rng = np.random.default_rng(seed)
    alphabet = np.frombuffer(b"abcdefghijklmnopqrstuvwxyz0123456789", dtype=np.uint8)
    n_lines = max(1, min(payload_bytes, declared_bytes) // line_bytes)
    lines: list[bytes] = []
    planted = 0
    for _ in range(n_lines):
        body = bytes(rng.choice(alphabet, size=line_bytes - 1))
        if float(rng.uniform()) < hit_rate:
            key = keys[int(rng.integers(0, len(keys)))]
            pos = int(rng.integers(0, max(1, len(body) - len(key))))
            body = body[:pos] + key + body[pos + len(key):]
            planted += 1
        lines.append(body)
    payload = b"\n".join(lines) + b"\n"
    spec = InputSpec(
        path=path, size=declared_bytes, payload=payload, params={"keys": keys}
    )
    return spec, keys, planted
