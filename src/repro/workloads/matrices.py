"""Matrix workloads for the MM benchmark (thin wrapper over apps.matmul)."""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = ["matrix_pair"]


def matrix_pair(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Two seeded ``n x n`` double matrices (real, materialized)."""
    if n < 1:
        raise WorkloadError(f"matrix dimension must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)), rng.standard_normal((n, n))
