"""The paper's data-size sweep points.

Fig 8(a) and Figs 9/10 sweep 500 MB - 1.25 GB; Fig 8(b)/(c) extend to
2 GB (where the non-partitioned runtime has long since OOM'd).
"""

from __future__ import annotations

from repro.units import MB

__all__ = ["FIG8A_SIZES", "FIG8BC_SIZES", "FIG9_SIZES", "size_label"]

#: Fig 8(a): 500M, 750M, 1G, 1.25G
FIG8A_SIZES = (MB(500), MB(750), MB(1000), MB(1250))

#: Fig 8(b)/(c): 500M ... 2G
FIG8BC_SIZES = (MB(500), MB(750), MB(1000), MB(1250), MB(1500), MB(1750), MB(2000))

#: Fig 9/10: 500M, 750M, 1G, 1.25G
FIG9_SIZES = FIG8A_SIZES


def size_label(nbytes: int) -> str:
    """The paper's axis labels: 500M, 750M, 1G, 1.25G, ..."""
    if nbytes % MB(1000) == 0:
        return f"{nbytes // MB(1000)}G"
    if nbytes % MB(250) == 0 and nbytes > MB(1000):
        return f"{nbytes / MB(1000):.2f}G"
    return f"{nbytes // MB(1)}M"
