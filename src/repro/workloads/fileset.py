"""Multi-file datasets: the paper's Word Count runs over "a set of files".

A file set is a directory of text files on the SD node; the framework
treats each file as an outer partition (they already end on record
boundaries) and the partition-enabled runtime handles the within-file
fragmenting.  :func:`fileset_input` builds the descriptors;
:class:`~repro.core.fileset.FileSetJob` (in core) runs them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.phoenix.api import InputSpec
from repro.units import KB
from repro.workloads.text import zipf_corpus

__all__ = ["fileset_input"]


def fileset_input(
    dir_path: str,
    n_files: int,
    total_declared_bytes: int,
    payload_bytes_per_file: int = 64 * KB(1),
    seed: int = 0,
    vocabulary: int = 2000,
    skew: float = 0.0,
) -> list[InputSpec]:
    """A set of text files under ``dir_path`` summing to the declared size.

    ``skew`` in [0, 1) tilts the size distribution: 0 = equal files,
    larger values concentrate bytes in the first files (realistic corpora
    are rarely uniform, and skew exercises the runtime's balancing).
    """
    if n_files < 1:
        raise WorkloadError("need at least one file")
    if total_declared_bytes < n_files:
        raise WorkloadError("declared size must cover at least 1 byte per file")
    if not 0 <= skew < 1:
        raise WorkloadError("skew must be in [0, 1)")
    weights = np.array([(1.0 - skew) ** i for i in range(n_files)])
    weights /= weights.sum()
    sizes = [max(1, int(total_declared_bytes * w)) for w in weights]
    sizes[0] += total_declared_bytes - sum(sizes)  # exact total
    out = []
    for i, size in enumerate(sizes):
        payload = zipf_corpus(
            min(payload_bytes_per_file, size),
            vocabulary=vocabulary,
            seed=seed * 1000 + i,
        )
        out.append(
            InputSpec(
                path=f"{dir_path.rstrip('/')}/part-{i:04d}.txt",
                size=size,
                payload=payload,
            )
        )
    return out
