"""Zipf-distributed text corpora for Word Count.

Natural-language word frequencies are approximately Zipfian; generating
the payload that way makes WC's combiner behaviour (many repeats of few
words) realistic rather than degenerate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.phoenix.api import InputSpec
from repro.units import KB

__all__ = ["zipf_corpus", "text_input", "DEFAULT_PAYLOAD_BYTES"]

#: default materialized payload size for text datasets
DEFAULT_PAYLOAD_BYTES = 256 * KB(1)


def _vocabulary(n_words: int, rng: np.random.Generator) -> list[bytes]:
    """Deterministic pseudo-words, 3-10 lowercase letters."""
    letters = np.frombuffer(b"abcdefghijklmnopqrstuvwxyz", dtype=np.uint8)
    vocab = []
    for _ in range(n_words):
        length = int(rng.integers(3, 11))
        word = bytes(rng.choice(letters, size=length))
        vocab.append(word)
    return vocab


def zipf_corpus(
    payload_bytes: int,
    vocabulary: int = 2000,
    zipf_a: float = 1.3,
    seed: int = 0,
    line_words: int = 12,
) -> bytes:
    """Real text of ~``payload_bytes`` with Zipf word frequencies."""
    if payload_bytes < 1:
        raise WorkloadError("payload_bytes must be >= 1")
    if vocabulary < 1:
        raise WorkloadError("vocabulary must be >= 1")
    rng = np.random.default_rng(seed)
    vocab = _vocabulary(vocabulary, rng)
    avg_word = sum(len(w) for w in vocab) / len(vocab) + 1
    n_words = max(1, int(payload_bytes / avg_word))
    # ranks: Zipf draws clipped into the vocabulary
    ranks = rng.zipf(zipf_a, size=n_words)
    ranks = np.clip(ranks, 1, vocabulary) - 1
    parts: list[bytes] = []
    for i, r in enumerate(ranks):
        parts.append(vocab[int(r)])
        parts.append(b"\n" if (i + 1) % line_words == 0 else b" ")
    out = b"".join(parts)
    return out[:payload_bytes].rsplit(b" ", 1)[0] + b"\n" if b" " in out[:payload_bytes] else out[:payload_bytes]


def text_input(
    path: str,
    declared_bytes: int,
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
    seed: int = 0,
    vocabulary: int = 2000,
) -> InputSpec:
    """An :class:`InputSpec` for a text dataset (WC and SM workloads)."""
    if declared_bytes < 1:
        raise WorkloadError("declared_bytes must be >= 1")
    payload = zipf_corpus(
        min(payload_bytes, declared_bytes), vocabulary=vocabulary, seed=seed
    )
    return InputSpec(path=path, size=declared_bytes, payload=payload)
