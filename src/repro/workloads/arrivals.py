"""Open-loop job arrival processes for serving experiments.

A closed loop (submit, wait, submit) can never overload the system —
offered load falls to whatever the cluster sustains.  Serving benchmarks
need an *open* loop: jobs arrive on their own clock whether or not earlier
ones finished, so queues actually build and admission control actually
triggers.  :class:`ArrivalProcess` is that clock — a seeded Poisson stream
or a verbatim trace — and :meth:`ArrivalProcess.drive` replays it into a
:class:`~repro.sched.scheduler.ClusterScheduler`, collecting per-job
outcomes without letting one failed job abort the stream.
"""

from __future__ import annotations

import dataclasses
import random
import typing as _t

from repro.core.job import DataJob, JobResult
from repro.errors import AdmissionError, WorkloadError

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.scheduler import ClusterScheduler
    from repro.sim.process import Process

__all__ = ["Arrival", "DriveReport", "ArrivalProcess"]


@dataclasses.dataclass(frozen=True)
class Arrival:
    """One job and the instant it arrives."""

    at: float
    job: DataJob


@dataclasses.dataclass
class DriveReport:
    """Everything that happened while a stream was served."""

    #: (arrival time, job, result) for each job that completed
    completed: list[tuple[float, DataJob, JobResult]]
    #: (arrival time, job, exception) for admitted jobs that failed
    failed: list[tuple[float, DataJob, BaseException]]
    #: (arrival time, job, AdmissionError) for jobs refused at admission
    rejected: list[tuple[float, DataJob, AdmissionError]]
    #: sim time the stream's first job arrived / the last job finished
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def admitted(self) -> int:
        """Jobs that made it past admission (completed or failed)."""
        return len(self.completed) + len(self.failed)

    @property
    def span(self) -> float:
        """Seconds from first arrival to last completion."""
        return max(0.0, self.finished_at - self.started_at)

    @property
    def throughput(self) -> float:
        """Completed jobs per second over :attr:`span`."""
        return len(self.completed) / self.span if self.span > 0 else 0.0


class ArrivalProcess:
    """A deterministic stream of job arrivals (time order)."""

    def __init__(self, arrivals: _t.Sequence[Arrival]):
        self.arrivals = sorted(arrivals, key=lambda a: a.at)
        for a in self.arrivals:
            if a.at < 0:
                raise WorkloadError(f"negative arrival time {a.at}")

    def __len__(self) -> int:
        return len(self.arrivals)

    def __iter__(self) -> _t.Iterator[Arrival]:
        return iter(self.arrivals)

    # -- constructors ------------------------------------------------------

    @classmethod
    def poisson(
        cls,
        job_factory: _t.Callable[[int], DataJob],
        rate: float,
        n: int,
        seed: int = 0,
        start: float = 0.0,
    ) -> "ArrivalProcess":
        """``n`` arrivals with exponential gaps at ``rate`` jobs/second.

        ``job_factory(i)`` builds the i-th job; the stream is fully
        determined by ``seed`` (same seed, same instants).
        """
        if rate <= 0:
            raise WorkloadError(f"arrival rate must be > 0, got {rate}")
        if n < 0:
            raise WorkloadError(f"negative arrival count {n}")
        rng = random.Random(seed)
        t = start
        arrivals = []
        for i in range(n):
            t += rng.expovariate(rate)
            arrivals.append(Arrival(t, job_factory(i)))
        return cls(arrivals)

    @classmethod
    def from_trace(
        cls, trace: _t.Iterable[tuple[float, DataJob]]
    ) -> "ArrivalProcess":
        """A stream replaying explicit ``(time, job)`` pairs."""
        return cls([Arrival(t, job) for t, job in trace])

    # -- serving -----------------------------------------------------------

    def drive(self, scheduler: "ClusterScheduler") -> "Process":
        """Replay the stream into ``scheduler``; Process value: DriveReport.

        Open loop: each job is submitted at its own instant regardless of
        earlier jobs.  Rejections are recorded, never raised; a failed job
        lands in ``report.failed`` and the stream keeps going.
        """
        return scheduler.sim.spawn(
            self._drive(scheduler), name="arrivals.drive"
        )

    def _drive(self, scheduler: "ClusterScheduler") -> _t.Generator:
        sim = scheduler.sim
        report = DriveReport([], [], [], started_at=sim.now)
        pending: list[tuple[float, DataJob, object]] = []
        first = True
        for arrival in self.arrivals:
            if arrival.at > sim.now:
                yield sim.timeout(arrival.at - sim.now)
            if first:
                report.started_at = sim.now
                first = False
            try:
                done = scheduler.submit(arrival.job)
            except AdmissionError as exc:
                report.rejected.append((sim.now, arrival.job, exc))
                continue
            pending.append((sim.now, arrival.job, done))
        # Wait for every admitted job individually — a barrier (all_of)
        # would fail fast on the first error and drop the rest.
        for arrived_at, job, done in pending:
            try:
                result = yield done
            except Exception as exc:
                report.failed.append((arrived_at, job, exc))
            else:
                report.completed.append((arrived_at, job, result))
        report.finished_at = sim.now
        return report
