"""Record-table workloads for the database-operation module."""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.phoenix.api import InputSpec
from repro.units import KB

__all__ = ["records_input"]


def records_input(
    path: str,
    declared_bytes: int,
    payload_bytes: int = 256 * KB(1),
    n_keys: int = 32,
    value_scale: float = 100.0,
    seed: int = 0,
) -> InputSpec:
    """A ``key,value`` table: Zipf-ish key popularity, exponential values.

    The ground truth for tests: aggregate the payload lines directly.
    """
    if declared_bytes < 1:
        raise WorkloadError("declared_bytes must be >= 1")
    if n_keys < 1:
        raise WorkloadError("n_keys must be >= 1")
    rng = np.random.default_rng(seed)
    target = min(payload_bytes, declared_bytes)
    lines: list[bytes] = []
    size = 0
    while size < target:
        key = f"k{int(rng.zipf(1.5)) % n_keys:03d}".encode()
        value = float(rng.exponential(value_scale))
        line = b"%s,%.3f" % (key, value)
        lines.append(line)
        size += len(line) + 1
    payload = b"\n".join(lines) + b"\n"
    return InputSpec(path=path, size=declared_bytes, payload=payload)
