"""Simulated storage software: VFS, local FS, inotify, and NFS.

* :mod:`repro.fs.vfs` — the in-simulation file tree (pure state machine).
* :mod:`repro.fs.localfs` — timed file I/O through a node's disk model.
* :mod:`repro.fs.inotify` — file-event notification (the Linux subsystem
  smartFAM is built on, Section IV-A).
* :mod:`repro.fs.nfs` — NFS server/client over the fabric; the McSD testbed
  connects host and SD nodes this way (Section III-B).
"""

from repro.fs.inotify import InotifyEvent, InotifyManager, Watch
from repro.fs.localfs import LocalFS
from repro.fs.nfs import NFSClient, NFSMount, NFSServer
from repro.fs.vfs import VFS, FileHandle, Inode

__all__ = [
    "VFS",
    "Inode",
    "FileHandle",
    "LocalFS",
    "InotifyManager",
    "InotifyEvent",
    "Watch",
    "NFSServer",
    "NFSClient",
    "NFSMount",
]
