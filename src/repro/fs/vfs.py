"""The in-simulation file tree.

A :class:`VFS` is a pure state machine — no simulated time passes inside
it.  Timed access goes through :class:`~repro.fs.localfs.LocalFS` (local
disk) or :class:`~repro.fs.nfs.NFSMount` (remote).

Files carry two size notions, mirroring the reproduction's scale model:

* ``size``   — the *declared* byte count (drives every cost model), and
* ``data``   — an optional *materialized* payload (real bytes; drives real
  MapReduce execution).  ``data`` may be much smaller than ``size``.

Mutation hooks (`on_event`) let :class:`~repro.fs.inotify.InotifyManager`
observe create/modify/delete, which is the substrate smartFAM stands on.
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.errors import (
    FileExistsInVFS,
    FileNotFoundInVFS,
    FileSystemError,
    IsADirectoryInVFS,
    NotADirectoryInVFS,
    StaleHandleError,
)
from repro.fs import path as _p

__all__ = ["Inode", "FileHandle", "VFS"]

_ino_counter = itertools.count(1)

#: event names emitted through VFS.on_event
EV_CREATE = "create"
EV_MODIFY = "modify"
EV_DELETE = "delete"


class Inode:
    """A file or directory."""

    __slots__ = ("ino", "kind", "children", "size", "data", "mtime", "nlink")

    FILE = "file"
    DIR = "dir"

    def __init__(self, kind: str, mtime: float = 0.0):
        self.ino = next(_ino_counter)
        self.kind = kind
        self.children: dict[str, "Inode"] | None = {} if kind == Inode.DIR else None
        self.size = 0
        self.data: bytes | None = b"" if kind == Inode.FILE else None
        self.mtime = mtime
        self.nlink = 1

    @property
    def is_dir(self) -> bool:
        """True for directories."""
        return self.kind == Inode.DIR

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_dir:
            return f"<Inode dir#{self.ino} {len(self.children or {})} entries>"
        return f"<Inode file#{self.ino} size={self.size}>"


class FileHandle:
    """A stable reference to an inode (what NFS calls a file handle)."""

    __slots__ = ("vfs", "inode", "path")

    def __init__(self, vfs: "VFS", inode: Inode, path: str):
        self.vfs = vfs
        self.inode = inode
        self.path = path

    def valid(self) -> bool:
        """False once the inode has been unlinked."""
        return self.inode.nlink > 0

    def ensure(self) -> Inode:
        """The inode, or :class:`StaleHandleError` if unlinked."""
        if not self.valid():
            raise StaleHandleError(f"stale handle for {self.path}")
        return self.inode


class VFS:
    """One file tree (one per node)."""

    def __init__(self, name: str = "vfs"):
        self.name = name
        self.root = Inode(Inode.DIR)
        self._listeners: list[_t.Callable[[str, str, Inode], None]] = []

    # -- events -------------------------------------------------------------

    def on_event(self, fn: _t.Callable[[str, str, Inode], None]) -> None:
        """Register ``fn(event, path, inode)`` for create/modify/delete."""
        self._listeners.append(fn)

    def _emit(self, event: str, path: str, inode: Inode) -> None:
        for fn in self._listeners:
            fn(event, path, inode)

    # -- resolution -----------------------------------------------------------

    def _lookup(self, path: str) -> Inode | None:
        node = self.root
        for comp in _p.split(path):
            if not node.is_dir:
                raise NotADirectoryInVFS(f"{self.name}: not a directory on the way to {path}")
            assert node.children is not None
            node = node.children.get(comp)  # type: ignore[assignment]
            if node is None:
                return None
        return node

    def resolve(self, path: str) -> Inode:
        """The inode at ``path`` (raises if missing)."""
        node = self._lookup(path)
        if node is None:
            raise FileNotFoundInVFS(f"{self.name}: no such path {path}")
        return node

    def exists(self, path: str) -> bool:
        """True if ``path`` resolves."""
        try:
            return self._lookup(path) is not None
        except NotADirectoryInVFS:
            return False

    def handle(self, path: str) -> FileHandle:
        """A stable handle for the inode at ``path``."""
        norm = _p.normalize(path)
        return FileHandle(self, self.resolve(norm), norm)

    # -- directory ops ----------------------------------------------------------

    def mkdir(self, path: str, parents: bool = False, mtime: float = 0.0) -> Inode:
        """Create a directory (optionally with parents, like mkdir -p)."""
        norm = _p.normalize(path)
        if norm == "/":
            return self.root
        parent_path = _p.parent(norm)
        parent = self._lookup(parent_path)
        if parent is None:
            if not parents:
                raise FileNotFoundInVFS(f"{self.name}: no parent {parent_path}")
            parent = self.mkdir(parent_path, parents=True, mtime=mtime)
        if not parent.is_dir:
            raise NotADirectoryInVFS(f"{self.name}: {parent_path} is a file")
        name = _p.basename(norm)
        assert parent.children is not None
        existing = parent.children.get(name)
        if existing is not None:
            if existing.is_dir:
                return existing
            raise FileExistsInVFS(f"{self.name}: {norm} exists and is a file")
        node = Inode(Inode.DIR, mtime=mtime)
        parent.children[name] = node
        self._emit(EV_CREATE, norm, node)
        return node

    def listdir(self, path: str) -> list[str]:
        """Sorted entry names of a directory."""
        node = self.resolve(path)
        if not node.is_dir:
            raise NotADirectoryInVFS(f"{self.name}: {path} is a file")
        assert node.children is not None
        return sorted(node.children)

    # -- file ops -------------------------------------------------------------------

    def create(self, path: str, exist_ok: bool = False, mtime: float = 0.0) -> Inode:
        """Create an empty regular file."""
        norm = _p.normalize(path)
        parent = self.resolve(_p.parent(norm))
        if not parent.is_dir:
            raise NotADirectoryInVFS(f"{self.name}: parent of {norm} is a file")
        name = _p.basename(norm)
        if not name:
            raise FileSystemError("cannot create the root")
        assert parent.children is not None
        existing = parent.children.get(name)
        if existing is not None:
            if existing.is_dir:
                raise IsADirectoryInVFS(f"{self.name}: {norm} is a directory")
            if not exist_ok:
                raise FileExistsInVFS(f"{self.name}: {norm} exists")
            return existing
        node = Inode(Inode.FILE, mtime=mtime)
        parent.children[name] = node
        self._emit(EV_CREATE, norm, node)
        return node

    def write(
        self,
        path: str,
        data: bytes | None = None,
        size: int | None = None,
        append: bool = False,
        create: bool = True,
        mtime: float = 0.0,
    ) -> Inode:
        """Replace or append file content.

        ``data`` sets the materialized payload; ``size`` sets the declared
        size (defaults to ``len(data)``).  Appending concatenates payloads
        and adds sizes.
        """
        norm = _p.normalize(path)
        node = self._lookup(norm)
        if node is None:
            if not create:
                raise FileNotFoundInVFS(f"{self.name}: no such file {norm}")
            node = self.create(norm, mtime=mtime)
        if node.is_dir:
            raise IsADirectoryInVFS(f"{self.name}: {norm} is a directory")
        if size is None and data is not None:
            if isinstance(data, (bytes, bytearray)):
                new_size = len(data)
            else:
                raise FileSystemError(
                    f"{self.name}: non-byte payloads need an explicit declared size"
                )
        else:
            new_size = int(size or 0)
        if append:
            if data is not None:
                if isinstance(node.data, (bytes, bytearray)) and isinstance(
                    data, (bytes, bytearray)
                ):
                    node.data = bytes(node.data) + bytes(data)
                else:
                    node.data = data
            node.size += new_size
        else:
            node.data = data if data is not None else b""
            node.size = new_size
        node.mtime = mtime
        self._emit(EV_MODIFY, norm, node)
        return node

    def read(self, path: str) -> bytes:
        """The materialized payload (b'' if none)."""
        node = self.resolve(path)
        if node.is_dir:
            raise IsADirectoryInVFS(f"{self.name}: {path} is a directory")
        return node.data or b""

    def stat(self, path: str) -> Inode:
        """Alias of :meth:`resolve` (reads better at call sites)."""
        return self.resolve(path)

    def size_of(self, path: str) -> int:
        """Declared size of the file at ``path``."""
        node = self.resolve(path)
        if node.is_dir:
            raise IsADirectoryInVFS(f"{self.name}: {path} is a directory")
        return node.size

    def unlink(self, path: str) -> None:
        """Remove a file or an *empty* directory."""
        norm = _p.normalize(path)
        if norm == "/":
            raise FileSystemError("cannot unlink the root")
        parent = self.resolve(_p.parent(norm))
        name = _p.basename(norm)
        assert parent.children is not None
        node = parent.children.get(name)
        if node is None:
            raise FileNotFoundInVFS(f"{self.name}: no such path {norm}")
        if node.is_dir and node.children:
            raise FileSystemError(f"{self.name}: directory {norm} not empty")
        del parent.children[name]
        node.nlink = 0
        self._emit(EV_DELETE, norm, node)

    def rmtree(self, path: str) -> int:
        """Remove a file or a directory tree recursively; returns inodes removed.

        Children are unlinked before their parent, so every removal goes
        through :meth:`unlink` (and its ``EV_DELETE`` notifications — cache
        invalidation and inotify watches see the teardown file by file).
        """
        norm = _p.normalize(path)
        node = self.resolve(norm)
        removed = 0
        if node.is_dir:
            for name in sorted(node.children or {}):
                removed += self.rmtree(_p.join(norm, name))
        self.unlink(norm)
        return removed + 1

    def walk(self, top: str = "/") -> _t.Iterator[tuple[str, Inode]]:
        """Depth-first (path, inode) traversal in sorted order."""
        top = _p.normalize(top)
        node = self.resolve(top)
        yield top, node
        if node.is_dir:
            assert node.children is not None
            for name in sorted(node.children):
                child_path = _p.join(top, name)
                yield from self.walk(child_path)
