"""inotify: file-system event notification for the simulated VFS.

smartFAM's SD side is "the inotify program — a Linux kernel subsystem that
provides file system event notification" plus a daemon (Section IV-A).
This module is that subsystem: watches subscribe to paths (a file, or a
directory watching its direct children), and VFS mutations are delivered
into each watch's queue after a small notification latency.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.fs import path as _p
from repro.fs.vfs import EV_CREATE, EV_DELETE, EV_MODIFY, VFS, Inode
from repro.sim.kernel import Simulator
from repro.sim.resources import Store

__all__ = ["IN_CREATE", "IN_MODIFY", "IN_DELETE", "IN_ALL", "InotifyEvent", "Watch", "InotifyManager"]

IN_CREATE = 0x1
IN_MODIFY = 0x2
IN_DELETE = 0x4
IN_ALL = IN_CREATE | IN_MODIFY | IN_DELETE

_EVENT_MASK = {EV_CREATE: IN_CREATE, EV_MODIFY: IN_MODIFY, EV_DELETE: IN_DELETE}


@dataclasses.dataclass(frozen=True)
class InotifyEvent:
    """One delivered notification."""

    mask: int
    path: str
    time: float

    @property
    def is_modify(self) -> bool:
        """True for IN_MODIFY events."""
        return bool(self.mask & IN_MODIFY)

    @property
    def is_create(self) -> bool:
        """True for IN_CREATE events."""
        return bool(self.mask & IN_CREATE)

    @property
    def is_delete(self) -> bool:
        """True for IN_DELETE events."""
        return bool(self.mask & IN_DELETE)


class Watch:
    """A subscription; consume events by yielding ``watch.queue.get()``."""

    __slots__ = ("path", "mask", "queue", "active", "recursive_children")

    def __init__(self, sim: Simulator, path: str, mask: int, recursive_children: bool):
        self.path = _p.normalize(path)
        self.mask = mask
        self.queue = Store(sim, name=f"inotify:{path}")
        self.active = True
        #: directory watches also match events on direct children
        self.recursive_children = recursive_children

    def matches(self, event_mask: int, event_path: str) -> bool:
        """Does this watch want the event?"""
        if not self.active or not (self.mask & event_mask):
            return False
        if event_path == self.path:
            return True
        if self.recursive_children:
            return _p.parent(event_path) == self.path
        return False


class InotifyManager:
    """Delivers VFS mutation events into watch queues with a latency."""

    def __init__(self, sim: Simulator, vfs: VFS, latency: float = 0.0, name: str = "inotify"):
        self.sim = sim
        self.vfs = vfs
        self.latency = latency
        self.name = name
        self._watches: list[Watch] = []
        #: events delivered (stats)
        self.delivered = 0
        #: events lost to injected faults (stats)
        self.dropped = 0
        vfs.on_event(self._on_vfs_event)

    def add_watch(self, path: str, mask: int = IN_ALL, watch_children: bool | None = None) -> Watch:
        """Subscribe to ``path``.

        For directories, ``watch_children`` defaults to True (events on
        direct entries are reported, matching Linux inotify semantics).
        """
        norm = _p.normalize(path)
        if watch_children is None:
            try:
                watch_children = self.vfs.resolve(norm).is_dir
            except Exception:
                watch_children = False
        watch = Watch(self.sim, norm, mask, recursive_children=bool(watch_children))
        self._watches.append(watch)
        return watch

    def remove_watch(self, watch: Watch) -> None:
        """Deactivate and forget a watch."""
        watch.active = False
        try:
            self._watches.remove(watch)
        except ValueError:
            pass

    def _on_vfs_event(self, event: str, path: str, _inode: Inode) -> None:
        mask = _EVENT_MASK[event]
        targets = [w for w in self._watches if w.matches(mask, path)]
        if not targets:
            return
        # fault injection: a dropped kernel notification — the event simply
        # never reaches any queue, which is what consumers must survive
        inj = self.sim.faults
        if inj is not None:
            decision = inj.check("inotify.deliver", path=path, manager=self.name)
            if decision is not None and decision.action == "drop":
                self.dropped += 1
                return
        ev = InotifyEvent(mask=mask, path=path, time=self.sim.now)

        if self.latency <= 0:
            for w in targets:
                self.delivered += 1
                w.queue.put(ev)
            return

        def _deliver() -> _t.Generator:
            yield self.sim.timeout(self.latency)
            for w in targets:
                if w.active:
                    self.delivered += 1
                    w.queue.put(ev)

        self.sim.spawn(_deliver(), name=f"{self.name}.deliver")
