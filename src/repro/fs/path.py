"""Pure path helpers for the simulated VFS (always absolute, '/'-separated)."""

from __future__ import annotations

from repro.errors import FileSystemError

__all__ = ["normalize", "split", "parent", "basename", "join", "is_under"]


def normalize(path: str) -> str:
    """Canonical absolute form: leading '/', no empty/'.' components.

    '..' is rejected — the simulated daemons never need it and allowing it
    would complicate watch bookkeeping for no benefit.
    """
    if not isinstance(path, str) or not path.startswith("/"):
        raise FileSystemError(f"path must be absolute, got {path!r}")
    parts = []
    for comp in path.split("/"):
        if comp in ("", "."):
            continue
        if comp == "..":
            raise FileSystemError(f"'..' not supported in VFS paths: {path!r}")
        parts.append(comp)
    return "/" + "/".join(parts)


def split(path: str) -> list[str]:
    """Components of a normalized path ('/' -> [])."""
    norm = normalize(path)
    return [] if norm == "/" else norm[1:].split("/")


def parent(path: str) -> str:
    """Parent directory of a normalized path ('/' is its own parent)."""
    comps = split(path)
    if not comps:
        return "/"
    return "/" + "/".join(comps[:-1])


def basename(path: str) -> str:
    """Final component ('' for the root)."""
    comps = split(path)
    return comps[-1] if comps else ""


def join(base: str, *names: str) -> str:
    """Join relative names onto an absolute base."""
    out = normalize(base)
    for name in names:
        for comp in name.split("/"):
            if comp in ("", "."):
                continue
            if comp == "..":
                raise FileSystemError(f"'..' not supported: {name!r}")
            out = out.rstrip("/") + "/" + comp
    return normalize(out)


def is_under(path: str, prefix: str) -> bool:
    """True if ``path`` is ``prefix`` or inside it."""
    p = normalize(path)
    pre = normalize(prefix)
    return p == pre or p.startswith(pre.rstrip("/") + "/")
