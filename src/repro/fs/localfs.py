"""Timed local-file I/O: VFS operations that charge the node's disk.

Every byte-moving operation is a simulated process whose duration comes
from the :class:`~repro.hardware.disk.DiskModel`; metadata operations cost
one seek.  The timestamp written into inodes is the simulation clock.
"""

from __future__ import annotations

import typing as _t

from repro.fs.vfs import VFS, Inode
from repro.hardware.disk import DiskModel
from repro.sim.events import Event
from repro.sim.kernel import Simulator

__all__ = ["LocalFS"]


class LocalFS:
    """A node's local file system: one VFS backed by one disk."""

    def __init__(self, sim: Simulator, disk: DiskModel, name: str = "localfs"):
        self.sim = sim
        self.disk = disk
        self.name = name
        self.vfs = VFS(name=name)

    # -- instantaneous metadata helpers (no disk charge) -------------------

    def exists(self, path: str) -> bool:
        """True if ``path`` resolves (metadata cache hit, free)."""
        return self.vfs.exists(path)

    def size_of(self, path: str) -> int:
        """Declared size of a file (metadata cache hit, free)."""
        return self.vfs.size_of(path)

    # -- timed operations ------------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> Event:
        """Create a directory; costs one metadata seek."""

        def _proc() -> _t.Generator:
            yield self.disk.write(0, label="mkdir")
            return self.vfs.mkdir(path, parents=parents, mtime=self.sim.now)

        return self.sim.spawn(_proc(), name=f"{self.name}.mkdir")

    def create(self, path: str, exist_ok: bool = False) -> Event:
        """Create an empty file; costs one metadata seek."""

        def _proc() -> _t.Generator:
            yield self.disk.write(0, label="create")
            return self.vfs.create(path, exist_ok=exist_ok, mtime=self.sim.now)

        return self.sim.spawn(_proc(), name=f"{self.name}.create")

    def write(
        self,
        path: str,
        data: bytes | None = None,
        size: int | None = None,
        append: bool = False,
    ) -> Event:
        """Write (or append) to a file; charges the disk for the bytes."""
        nbytes = len(data) if size is None and data is not None else int(size or 0)

        def _proc() -> _t.Generator:
            yield self.disk.write(nbytes, label="write")
            return self.vfs.write(
                path, data=data, size=size, append=append, mtime=self.sim.now
            )

        return self.sim.spawn(_proc(), name=f"{self.name}.write")

    def read(self, path: str, nbytes: int | None = None) -> Event:
        """Read a file; charges the disk; returns the materialized payload.

        ``nbytes`` overrides the charged byte count (partial/streaming
        reads); the payload returned is always the whole materialized data
        (the scale model keeps payloads tiny).
        """

        def _proc() -> _t.Generator:
            node = self.vfs.resolve(path)
            charge = node.size if nbytes is None else int(nbytes)
            yield self.disk.read(charge, label="read")
            return self.vfs.read(path)

        return self.sim.spawn(_proc(), name=f"{self.name}.read")

    def stat(self, path: str) -> Event:
        """Stat via the attribute cache (no disk charge); returns the inode."""

        def _proc() -> _t.Generator:
            yield self.sim.timeout(0.0)
            return self.vfs.stat(path)

        return self.sim.spawn(_proc(), name=f"{self.name}.stat")

    def listdir(self, path: str) -> Event:
        """Directory listing via the dentry cache (no disk charge)."""

        def _proc() -> _t.Generator:
            yield self.sim.timeout(0.0)
            return self.vfs.listdir(path)

        return self.sim.spawn(_proc(), name=f"{self.name}.listdir")

    def unlink(self, path: str) -> Event:
        """Timed unlink (one seek)."""

        def _proc() -> _t.Generator:
            yield self.disk.write(0, label="unlink")
            self.vfs.unlink(path)

        return self.sim.spawn(_proc(), name=f"{self.name}.unlink")
