"""Timed local-file I/O: VFS operations that charge the node's disk.

Every byte-moving operation is a simulated process whose duration comes
from the :class:`~repro.hardware.disk.DiskModel`; metadata operations cost
one seek.  The timestamp written into inodes is the simulation clock.
"""

from __future__ import annotations

import typing as _t

from repro.fs.vfs import VFS, Inode
from repro.hardware.disk import DiskModel
from repro.sim.events import Event
from repro.sim.kernel import Simulator

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tier.burst import BurstBuffer

__all__ = ["LocalFS"]


class LocalFS:
    """A node's local file system: one VFS backed by one disk.

    An optional :class:`~repro.tier.burst.BurstBuffer` (see
    :meth:`attach_tier`) interposes between reads/writes and the disk:
    reads hit the tier's block cache first, writes are buffered in the
    tier's memory level and drained in the background.  Metadata
    operations always go straight to the disk.
    """

    def __init__(self, sim: Simulator, disk: DiskModel, name: str = "localfs"):
        self.sim = sim
        self.disk = disk
        self.name = name
        self.vfs = VFS(name=name)
        self.tier: "BurstBuffer | None" = None

    def attach_tier(self, tier: "BurstBuffer") -> "BurstBuffer":
        """Front the disk with a burst buffer; wires VFS invalidation."""
        self.tier = tier
        tier.watch(self.vfs)
        return tier

    # -- instantaneous metadata helpers (no disk charge) -------------------

    def exists(self, path: str) -> bool:
        """True if ``path`` resolves (metadata cache hit, free)."""
        return self.vfs.exists(path)

    def size_of(self, path: str) -> int:
        """Declared size of a file (metadata cache hit, free)."""
        return self.vfs.size_of(path)

    # -- timed operations ------------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> Event:
        """Create a directory; costs one metadata seek."""

        def _proc() -> _t.Generator:
            yield self.disk.write(0, label="mkdir")
            return self.vfs.mkdir(path, parents=parents, mtime=self.sim.now)

        return self.sim.spawn(_proc(), name=f"{self.name}.mkdir")

    def create(self, path: str, exist_ok: bool = False) -> Event:
        """Create an empty file; costs one metadata seek."""

        def _proc() -> _t.Generator:
            yield self.disk.write(0, label="create")
            return self.vfs.create(path, exist_ok=exist_ok, mtime=self.sim.now)

        return self.sim.spawn(_proc(), name=f"{self.name}.create")

    def write(
        self,
        path: str,
        data: bytes | None = None,
        size: int | None = None,
        append: bool = False,
    ) -> Event:
        """Write (or append) to a file; charges the disk for the bytes.

        With a tier attached (and write-back enabled), the foreground
        cost is one memory-tier transfer; the disk is charged later by
        the tier's background drain.
        """
        nbytes = len(data) if size is None and data is not None else int(size or 0)

        def _proc() -> _t.Generator:
            tier = self.tier
            if tier is not None and tier.spec.writeback:
                yield from tier.write_charge(nbytes)
                # the VFS mutation emits the modify event (invalidating the
                # stale blocks) before the fresh range is re-admitted dirty
                node = self.vfs.write(
                    path, data=data, size=size, append=append, mtime=self.sim.now
                )
                tier.admit_write(path, node.size, nbytes, append=append)
                return node
            yield self.disk.write(nbytes, label="write")
            return self.vfs.write(
                path, data=data, size=size, append=append, mtime=self.sim.now
            )

        return self.sim.spawn(_proc(), name=f"{self.name}.write")

    def read(self, path: str, nbytes: int | None = None, offset: int = 0) -> Event:
        """Read a file; charges the disk; returns the materialized payload.

        ``nbytes`` overrides the charged byte count (partial/streaming
        reads); the payload returned is always the whole materialized data
        (the scale model keeps payloads tiny).  ``offset`` locates the
        charged range within the file so a tier, when attached, can hit
        the exact blocks a prior read or prefetch populated.
        """

        def _proc() -> _t.Generator:
            node = self.vfs.resolve(path)
            charge = node.size if nbytes is None else int(nbytes)
            if self.tier is not None:
                yield from self.tier.read_through(path, int(offset), charge, node.size)
            else:
                yield self.disk.read(charge, label="read")
            return self.vfs.read(path)

        return self.sim.spawn(_proc(), name=f"{self.name}.read")

    def prefetch(self, path: str, offset: int = 0, nbytes: int | None = None) -> Event | None:
        """Fire-and-forget readahead of a range into the tier (if any).

        Without a tier this is a no-op — prefetching straight into a disk
        model would only add queue contention.  Returns the background
        fill Process, or None when nothing needed fetching.
        """
        if self.tier is None or not self.vfs.exists(path):
            return None
        size = self.vfs.size_of(path)
        span = size - int(offset) if nbytes is None else int(nbytes)
        if span <= 0:
            return None
        return self.tier.prefetch(path, int(offset), span, size)

    def stat(self, path: str) -> Event:
        """Stat via the attribute cache (no disk charge); returns the inode."""

        def _proc() -> _t.Generator:
            yield self.sim.timeout(0.0)
            return self.vfs.stat(path)

        return self.sim.spawn(_proc(), name=f"{self.name}.stat")

    def listdir(self, path: str) -> Event:
        """Directory listing via the dentry cache (no disk charge)."""

        def _proc() -> _t.Generator:
            yield self.sim.timeout(0.0)
            return self.vfs.listdir(path)

        return self.sim.spawn(_proc(), name=f"{self.name}.listdir")

    def unlink(self, path: str) -> Event:
        """Timed unlink (one seek)."""

        def _proc() -> _t.Generator:
            yield self.disk.write(0, label="unlink")
            self.vfs.unlink(path)

        return self.sim.spawn(_proc(), name=f"{self.name}.unlink")
