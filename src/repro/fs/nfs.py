"""NFS: the storage interface between host and McSD nodes (Section III-B).

The paper's testbed connects the host computing node to the SD node's disk
through NFS over Gigabit Ethernet; smartFAM's log files live on that share.
This module implements a compact NFSv3-flavoured protocol on the simulated
fabric:

* :class:`NFSServer` — exports a subtree of a node's local FS; each request
  is served concurrently (disk queueing provides the serialization).
* :class:`NFSClient` — per-node RPC endpoint matching replies to calls.
* :class:`NFSMount` — the client-side file API, mirroring
  :class:`~repro.fs.localfs.LocalFS` so higher layers are mount-agnostic.
  It also offers :meth:`NFSMount.watch` — mtime polling, which is how a
  file-alteration monitor has to watch an NFS file from the client side
  (kernel inotify does not propagate over NFS).

Every RPC charges a small request message; data-bearing replies (READ) or
requests (WRITE) charge the payload size, so bulk file movement costs real
simulated network time.
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.errors import NFSError
from repro.fs import path as _p
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.resources import Store

if __import__("typing").TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node

__all__ = ["NFSServer", "NFSClient", "NFSMount", "NFS_PORT", "RPC_HEADER_BYTES"]

NFS_PORT = "nfs"
NFS_REPLY_PORT = "nfs-reply"
#: simulated wire size of an RPC header / metadata-only message
RPC_HEADER_BYTES = 256

_xids = itertools.count(1)


class NFSServer:
    """Exports ``export_root`` of ``node``'s local FS to the cluster."""

    def __init__(self, node: "Node", export_root: str = "/"):
        self.node = node
        self.sim = node.sim
        self.export_root = _p.normalize(export_root)
        self._queue = node.open_port(NFS_PORT)
        #: operation counters (stats)
        self.ops: dict[str, int] = {}
        self.sim.spawn(self._serve_loop(), name=f"nfsd:{node.name}")

    def _translate(self, rel_path: str) -> str:
        rel = _p.normalize(rel_path)
        if self.export_root == "/":
            return rel
        return _p.join(self.export_root, rel.lstrip("/"))

    def _serve_loop(self) -> _t.Generator:
        while True:
            msg = yield self._queue.get()
            body = msg.payload["body"]  # type: ignore[index]
            self.sim.spawn(
                self._handle(msg.src, body), name=f"nfsd:{self.node.name}.req"
            )

    def _handle(self, client: str, req: dict) -> _t.Generator:
        op: str = req["op"]
        xid: int = req["xid"]
        self.ops[op] = self.ops.get(op, 0) + 1
        self.sim.obs.count(f"nfs.op.{op}")
        fs = self.node.fs
        reply: dict = {"xid": xid, "ok": True, "value": None}
        reply_bytes = RPC_HEADER_BYTES
        try:
            path = self._translate(req.get("path", "/"))
            if op == "read":
                data = yield fs.read(
                    path, nbytes=req.get("nbytes"), offset=int(req.get("offset", 0))
                )
                size = fs.size_of(path)
                charged = size if req.get("nbytes") is None else int(req["nbytes"])
                reply["value"] = {"data": data, "size": size}
                reply_bytes += charged
            elif op == "write":
                yield fs.write(
                    path,
                    data=req.get("data"),
                    size=req.get("size"),
                    append=req.get("append", False),
                )
                reply["value"] = True
            elif op == "create":
                yield fs.create(path, exist_ok=req.get("exist_ok", False))
                reply["value"] = True
            elif op == "mkdir":
                yield fs.mkdir(path, parents=req.get("parents", False))
                reply["value"] = True
            elif op == "getattr":
                inode = yield fs.stat(path)
                reply["value"] = {
                    "size": inode.size,
                    "mtime": inode.mtime,
                    "is_dir": inode.is_dir,
                    "ino": inode.ino,
                }
            elif op == "readdir":
                reply["value"] = (yield fs.listdir(path))
            elif op == "remove":
                yield fs.unlink(path)
                reply["value"] = True
            elif op == "access":
                reply["value"] = fs.exists(path)
            elif op == "prefetch":
                # fire-and-forget: kick the server-side tier's readahead
                # and reply immediately (the fill runs in the background)
                started = fs.prefetch(
                    path, offset=int(req.get("offset", 0)), nbytes=req.get("nbytes")
                )
                reply["value"] = started is not None
            else:
                raise NFSError(f"unknown NFS op {op!r}")
        except Exception as exc:  # deliver errors to the caller, not the server
            reply["ok"] = False
            reply["error"] = exc
        yield self.node.send(client, NFS_REPLY_PORT, reply, nbytes=reply_bytes)


class NFSClient:
    """Per-node RPC endpoint: sends requests, routes replies by xid."""

    def __init__(self, node: Node):
        self.node = node
        self.sim = node.sim
        self._pending: dict[int, Event] = {}
        self._queue = node.open_port(NFS_REPLY_PORT)
        #: RPC round trips completed (stats)
        self.rpcs = 0
        self.sim.spawn(self._reply_loop(), name=f"nfscli:{node.name}")

    def _reply_loop(self) -> _t.Generator:
        while True:
            msg = yield self._queue.get()
            reply = msg.payload["body"]  # type: ignore[index]
            ev = self._pending.pop(reply["xid"], None)
            if ev is None:
                continue  # late reply for an abandoned call
            self.rpcs += 1
            if reply["ok"]:
                ev.succeed(reply["value"])
            else:
                ev.fail(reply["error"])

    def call(self, server: str, req: dict, request_bytes: int = RPC_HEADER_BYTES) -> Event:
        """Issue one RPC; the returned event carries the reply value.

        Injected faults at ``nfs.call``: *fail* makes the RPC return a
        transient :class:`~repro.errors.NFSError` after one header round
        trip, *drop* loses the request on the floor (the reply never
        arrives — only deadlines recover this, exactly like a soft-mount
        RPC timeout), *delay* defers the send.
        """
        xid = next(_xids)
        req = dict(req, xid=xid)
        done = Event(self.sim, name=f"nfs-rpc:{req['op']}")
        self._pending[xid] = done
        inj = self.sim.faults
        decision = None
        if inj is not None:
            decision = inj.check("nfs.call", op=req["op"], server=server)

        def _send() -> _t.Generator:
            if decision is not None:
                if decision.action == "fail":
                    yield self.sim.timeout(0.0)
                    self._pending.pop(xid, None)
                    done.fail(
                        NFSError(f"injected RPC failure ({req['op']} -> {server})")
                    )
                    return
                if decision.action == "drop":
                    return  # the request is lost; the event never resolves
                if decision.action == "delay":
                    yield self.sim.timeout(decision.delay)
            yield self.node.send(server, NFS_PORT, req, nbytes=request_bytes)

        self.sim.spawn(_send(), name=f"nfscli:{self.node.name}.send")
        return done


class NFSMount:
    """A mounted NFS export, API-compatible with LocalFS timed operations."""

    def __init__(self, client: NFSClient, server: str, name: str = ""):
        self.client = client
        self.server = server
        self.sim = client.sim
        self.name = name or f"{client.node.name}:nfs:{server}"
        #: bytes moved over the wire for file data (stats)
        self.bytes_read = 0
        self.bytes_written = 0
        #: the exporting node's TierSpec, when it fronts its disk with a
        #: burst buffer (set by the cluster builder; drives readahead)
        self.remote_tier_spec = None

    # -- timed operations (all return processes/events) -----------------------

    def read(self, path: str, nbytes: int | None = None, offset: int = 0) -> Event:
        """Read a remote file; returns the materialized payload.

        ``offset`` is forwarded to the server so a burst tier on the
        exporting node sees the true block range of a fragment read.
        """

        def _proc() -> _t.Generator:
            with self.sim.obs.span(
                "nfs.read", cat="nfs", track=self.name, path=path
            ) as sp:
                value = yield self.client.call(
                    self.server,
                    {"op": "read", "path": path, "nbytes": nbytes, "offset": offset},
                )
                charged = value["size"] if nbytes is None else int(nbytes)
                self.bytes_read += charged
                self.sim.obs.count("nfs.bytes_read", charged)
                sp.set(bytes=charged)
            return value["data"]

        return self.sim.spawn(_proc(), name=f"{self.name}.read")

    def read_with_size(self, path: str, nbytes: int | None = None) -> Event:
        """Like :meth:`read` but returns ``{'data': ..., 'size': ...}``."""

        def _proc() -> _t.Generator:
            with self.sim.obs.span(
                "nfs.read", cat="nfs", track=self.name, path=path
            ) as sp:
                value = yield self.client.call(
                    self.server, {"op": "read", "path": path, "nbytes": nbytes}
                )
                charged = value["size"] if nbytes is None else int(nbytes)
                self.bytes_read += charged
                self.sim.obs.count("nfs.bytes_read", charged)
                sp.set(bytes=charged)
            return value

        return self.sim.spawn(_proc(), name=f"{self.name}.read")

    def write(
        self,
        path: str,
        data: bytes | None = None,
        size: int | None = None,
        append: bool = False,
    ) -> Event:
        """Write a remote file; request carries the payload bytes."""
        nbytes = len(data) if size is None and data is not None else int(size or 0)

        def _proc() -> _t.Generator:
            req = {
                "op": "write",
                "path": path,
                "data": data,
                "size": size,
                "append": append,
            }
            with self.sim.obs.span(
                "nfs.write", cat="nfs", track=self.name, path=path, bytes=nbytes
            ):
                yield self.client.call(
                    self.server, req, request_bytes=RPC_HEADER_BYTES + nbytes
                )
            self.bytes_written += nbytes
            self.sim.obs.count("nfs.bytes_written", nbytes)
            return True

        return self.sim.spawn(_proc(), name=f"{self.name}.write")

    def create(self, path: str, exist_ok: bool = False) -> Event:
        """Create a remote file."""
        return self._simple({"op": "create", "path": path, "exist_ok": exist_ok}, "create")

    def mkdir(self, path: str, parents: bool = False) -> Event:
        """Create a remote directory."""
        return self._simple({"op": "mkdir", "path": path, "parents": parents}, "mkdir")

    def stat(self, path: str) -> Event:
        """Remote getattr; returns a dict(size, mtime, is_dir, ino)."""
        return self._simple({"op": "getattr", "path": path}, "stat")

    def listdir(self, path: str) -> Event:
        """Remote readdir."""
        return self._simple({"op": "readdir", "path": path}, "listdir")

    def unlink(self, path: str) -> Event:
        """Remote remove."""
        return self._simple({"op": "remove", "path": path}, "unlink")

    def access(self, path: str) -> Event:
        """Timed existence check."""
        return self._simple({"op": "access", "path": path}, "access")

    def prefetch(self, path: str, offset: int = 0, nbytes: int | None = None) -> Event:
        """Ask the server to pull a range into its tier (readahead RPC).

        Returns an event carrying True when the server actually started a
        fill (False when it has no tier or the range is already cached).
        """
        return self._simple(
            {"op": "prefetch", "path": path, "offset": offset, "nbytes": nbytes},
            "prefetch",
        )

    def _simple(self, req: dict, label: str) -> Event:
        def _proc() -> _t.Generator:
            return (yield self.client.call(self.server, req))

        return self.sim.spawn(_proc(), name=f"{self.name}.{label}")

    # -- client-side watching (smartFAM host side) -------------------------------

    def watch(self, path: str, poll_interval: float) -> "NFSWatch":
        """Poll a remote file's mtime; changes appear in the watch queue.

        This models what a host-side file-alteration monitor must actually
        do for a file on an NFS share.  Each poll is a real getattr RPC, so
        the smartFAM ablation bench can measure the channel's cost.
        """
        return NFSWatch(self, path, poll_interval)


class NFSWatch:
    """An active mtime-polling watch on a remote file."""

    def __init__(self, mount: NFSMount, path: str, poll_interval: float):
        if poll_interval < 0:
            raise NFSError("poll interval must be >= 0")
        self.mount = mount
        self.path = path
        self.poll_interval = poll_interval
        self.queue = Store(mount.sim, name=f"nfswatch:{path}")
        self.active = True
        #: getattr polls issued (stats)
        self.polls = 0
        mount.sim.spawn(self._poll_loop(), name=f"nfswatch:{path}")

    def stop(self) -> None:
        """Stop polling after the current round."""
        self.active = False

    def _poll_loop(self) -> _t.Generator:
        sim = self.mount.sim
        primed = False
        existed = False
        last_mtime = 0.0
        last_size = 0
        while self.active:
            try:
                attrs = yield self.mount.stat(self.path)
            except Exception:
                attrs = None  # file may not exist yet
            self.polls += 1
            if not primed:
                # First poll establishes the baseline; nothing fires.
                primed = True
                existed = attrs is not None
                if attrs is not None:
                    last_mtime, last_size = attrs["mtime"], attrs["size"]
            elif attrs is not None:
                appeared = not existed
                changed = attrs["mtime"] != last_mtime or attrs["size"] != last_size
                if (appeared or changed) and self.active:
                    self.queue.put(dict(attrs, path=self.path, time=sim.now))
                existed = True
                last_mtime, last_size = attrs["mtime"], attrs["size"]
            else:
                existed = False
            if self.poll_interval > 0:
                yield sim.timeout(self.poll_interval)
            else:
                yield sim.timeout(0.0)
