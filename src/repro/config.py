"""Configuration dataclasses and the Table I testbed presets.

Everything tunable in the reproduction lives here: hardware specs, the
memory/thrash policy that reproduces the paper's Phoenix out-of-core
behaviour, Phoenix runtime constants, network parameters and the full
cluster layout of the paper's 5-node testbed (Table I).

Calibration note
----------------
Simulated CPUs execute abstract *ops*; one op is one cycle on a reference
core.  Application cost profiles (:mod:`repro.apps`) are expressed in
ops/byte (or ops/flop) so that a node's speed is just
``clock_hz * ops_per_cycle``.  The constants were calibrated so the
single-application curves land in the paper's reported bands (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigError
from repro.units import GiB, Gbit, MB, MiB, msec, usec

__all__ = [
    "CPUSpec",
    "DiskSpec",
    "TierSpec",
    "MemoryPolicy",
    "NetworkConfig",
    "PhoenixConfig",
    "SmartFAMConfig",
    "NodeConfig",
    "ClusterConfig",
    "NodeRole",
    "QUAD_Q9400",
    "DUO_E4400",
    "CELERON_450",
    "table1_cluster",
]


@dataclasses.dataclass(frozen=True)
class CPUSpec:
    """A processor model.

    ``ops_per_cycle`` folds micro-architecture differences into a single
    scalar relative to the reference core (Core2 at 1.0).
    """

    name: str
    cores: int
    clock_ghz: float
    ops_per_cycle: float = 1.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError(f"{self.name}: cores must be >= 1")
        if self.clock_ghz <= 0:
            raise ConfigError(f"{self.name}: clock must be > 0")
        if self.ops_per_cycle <= 0:
            raise ConfigError(f"{self.name}: ops_per_cycle must be > 0")

    @property
    def ops_per_sec_per_core(self) -> float:
        """Reference ops per second on one core."""
        return self.clock_ghz * 1e9 * self.ops_per_cycle

    def scaled(self, cores: int | None = None, clock_ghz: float | None = None) -> "CPUSpec":
        """A copy with some fields replaced (for what-if experiments)."""
        return dataclasses.replace(
            self,
            cores=self.cores if cores is None else cores,
            clock_ghz=self.clock_ghz if clock_ghz is None else clock_ghz,
        )


#: Table I — host computing node CPU.
QUAD_Q9400 = CPUSpec("Intel Core2 Quad Q9400", cores=4, clock_ghz=2.66)
#: Table I — smart-storage (SD) node CPU.
DUO_E4400 = CPUSpec("Intel Core2 Duo E4400", cores=2, clock_ghz=2.00)
#: Table I — general-purpose computing node CPU.
CELERON_450 = CPUSpec("Intel Celeron 450", cores=1, clock_ghz=2.20)


@dataclasses.dataclass(frozen=True)
class DiskSpec:
    """A SATA disk model: FIFO queue, per-request seek, stream bandwidth."""

    name: str = "SATA 7200rpm"
    bandwidth: float = 120 * 1e6  # bytes/s sequential
    seek_time: float = msec(8)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigError("disk bandwidth must be > 0")
        if self.seek_time < 0:
            raise ConfigError("seek time must be >= 0")


@dataclasses.dataclass(frozen=True)
class TierSpec:
    """A two-level burst buffer fronting a node's disk.

    Models the intermediate SSD/memory tier of the two-level storage
    papers (PAPERS.md): a small RAM sub-tier and a larger SSD sub-tier
    sit between the compute and the spinning disk.  Reads that hit a
    sub-tier pay its latency/bandwidth instead of a disk seek + stream;
    writes (when ``writeback`` is on) land in the RAM tier immediately
    and drain to disk in the background.

    The tier is tracked at ``block_bytes`` granularity — a read of an
    arbitrary ``(offset, nbytes)`` range touches the blocks it overlaps,
    so fragment-sized reads of one file hit exactly the blocks a prior
    read or prefetch of that range populated.
    """

    #: RAM sub-tier capacity (the burst absorber)
    mem_bytes: int = MiB(256)
    mem_bandwidth: float = 8_000 * 1e6  # bytes/s (DDR-ish stream)
    mem_latency: float = usec(2)
    #: SSD sub-tier capacity (the staging area RAM demotes into)
    ssd_bytes: int = GiB(8)
    ssd_bandwidth: float = 500 * 1e6  # bytes/s (SATA SSD stream)
    ssd_latency: float = usec(100)
    #: cache-line granularity of the tier index
    block_bytes: int = MiB(4)
    #: buffer writes in the RAM tier and drain to disk asynchronously
    writeback: bool = True
    #: bounded re-queues for a write-back the fault layer dropped
    writeback_retries: int = 2
    #: fragments of readahead the partitioned runtimes issue (0 = off)
    readahead_fragments: int = 1

    def __post_init__(self) -> None:
        if self.mem_bytes < 1 or self.ssd_bytes < 0:
            raise ConfigError("tier capacities must be positive")
        if min(self.mem_bandwidth, self.ssd_bandwidth) <= 0:
            raise ConfigError("tier bandwidths must be > 0")
        if min(self.mem_latency, self.ssd_latency) < 0:
            raise ConfigError("tier latencies must be >= 0")
        if self.block_bytes < 1:
            raise ConfigError("tier block_bytes must be >= 1")
        if self.writeback_retries < 0:
            raise ConfigError("writeback_retries must be >= 0")
        if self.readahead_fragments < 0:
            raise ConfigError("readahead_fragments must be >= 0")


@dataclasses.dataclass(frozen=True)
class MemoryPolicy:
    """How a node's memory reacts to pressure.

    * ``thrash_fraction`` — pressure (used/capacity) beyond which paging
      begins to slow down every task on the node.
    * thrash factor = ``1 + thrash_coeff * (pressure - thrash_fraction) **
      thrash_exponent`` for pressure above the fraction.
    * ``swap_factor`` — swap space as a multiple of RAM; allocations beyond
      RAM + swap raise :class:`~repro.errors.OutOfMemoryError`.

    Calibrated so (a) traditional (non-partitioned) Word Count at 1.25 GB
    on a 2 GB node lands at ~6x the partitioned elapsed time (Section V-B),
    (b) 500 MB shows "almost the same performance", and (c) the paper's
    600 MB fragments (3x footprint = 1.8 GB working set on a 2 GiB node)
    run clean — which pins the onset just above that pressure.
    """

    thrash_fraction: float = 0.85
    thrash_coeff: float = 6.2
    thrash_exponent: float = 2.0
    swap_factor: float = 1.5

    def __post_init__(self) -> None:
        if not 0 < self.thrash_fraction <= 1:
            raise ConfigError("thrash_fraction must be in (0, 1]")
        if self.thrash_coeff < 0 or self.thrash_exponent <= 0:
            raise ConfigError("bad thrash parameters")
        if self.swap_factor < 0:
            raise ConfigError("swap_factor must be >= 0")

    def thrash_factor(self, pressure: float) -> float:
        """CPU slowdown multiplier at a given memory pressure."""
        if pressure <= self.thrash_fraction:
            return 1.0
        return 1.0 + self.thrash_coeff * (pressure - self.thrash_fraction) ** self.thrash_exponent


@dataclasses.dataclass(frozen=True)
class NetworkConfig:
    """The cluster interconnect (Fig 3: one Gigabit switch)."""

    link_bandwidth: float = Gbit(1)
    link_latency: float = usec(100)
    #: flows are carved into segments so concurrent flows interleave fairly
    segment_bytes: int = MiB(16)

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0 or self.link_latency < 0:
            raise ConfigError("bad network parameters")
        if self.segment_bytes < 1:
            raise ConfigError("segment_bytes must be >= 1")


@dataclasses.dataclass(frozen=True)
class PhoenixConfig:
    """Runtime constants of the Phoenix-style MapReduce engine.

    ``max_input_fraction`` encodes the paper's empirical observation that
    the original Phoenix cannot support inputs beyond a fraction of node
    memory (Section IV-B says ~60 %; Section V-B observed WC/SM failing
    above 1.5 GB on 2 GB nodes, i.e. 75 % — we default to the observed 75 %
    so the Fig 8(b)/(c) curves extend exactly as far as the paper's).
    """

    max_input_fraction: float = 0.75
    #: map task granularity: tasks per core per job (dynamic scheduling pool)
    tasks_per_core: int = 4
    #: default fragment size for the partition-enabled runtime (Section V-C
    #: uses 600 MB partitions for the multi-application experiments)
    default_fragment_bytes: int = MB(600)
    #: fraction of node memory the auto-partitioner targets per fragment
    auto_fragment_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.max_input_fraction <= 1:
            raise ConfigError("max_input_fraction must be in (0, 1]")
        if self.tasks_per_core < 1:
            raise ConfigError("tasks_per_core must be >= 1")
        if self.default_fragment_bytes < 1:
            raise ConfigError("default_fragment_bytes must be >= 1")
        if not 0 < self.auto_fragment_fraction <= 1:
            raise ConfigError("auto_fragment_fraction must be in (0, 1]")


@dataclasses.dataclass(frozen=True)
class SmartFAMConfig:
    """smartFAM invocation-channel parameters (Fig 5).

    The SD-side inotify is a kernel subsystem: near-instant.  The host-side
    monitor watches a file that lives on the NFS share, which in practice
    means attribute polling; ``host_poll_interval`` models that.
    """

    inotify_latency: float = usec(200)
    host_poll_interval: float = msec(50)
    daemon_dispatch_overhead: float = msec(1)
    logfile_bytes: int = 4096
    #: SD-side retries when persisting a RESULT record hits transient I/O
    result_write_retries: int = 2
    #: host-side invoke retries in :meth:`HostSmartFAM.invoke_reliable`
    invoke_retries: int = 2
    #: base delay for exponential backoff between retries (doubles per try)
    retry_backoff: float = msec(100)

    def __post_init__(self) -> None:
        if min(self.inotify_latency, self.host_poll_interval) < 0:
            raise ConfigError("smartFAM latencies must be >= 0")
        if self.daemon_dispatch_overhead < 0:
            raise ConfigError("dispatch overhead must be >= 0")
        if self.logfile_bytes < 1:
            raise ConfigError("logfile_bytes must be >= 1")
        if min(self.result_write_retries, self.invoke_retries) < 0:
            raise ConfigError("retry counts must be >= 0")
        if self.retry_backoff < 0:
            raise ConfigError("retry_backoff must be >= 0")


class NodeRole:
    """Role labels for nodes in the testbed (string constants)."""

    HOST = "host"
    SD = "sd"
    COMPUTE = "compute"


@dataclasses.dataclass(frozen=True)
class NodeConfig:
    """One machine in the cluster."""

    name: str
    cpu: CPUSpec
    mem_bytes: int = GiB(2)
    disk: DiskSpec = dataclasses.field(default_factory=DiskSpec)
    role: str = NodeRole.COMPUTE
    memory_policy: MemoryPolicy = dataclasses.field(default_factory=MemoryPolicy)
    #: optional burst-buffer tier fronting the disk (None = reads/writes
    #: go straight to the disk model, the pre-tier behaviour)
    tier: TierSpec | None = None

    def __post_init__(self) -> None:
        if self.mem_bytes < 1:
            raise ConfigError(f"{self.name}: mem_bytes must be >= 1")
        if self.role not in (NodeRole.HOST, NodeRole.SD, NodeRole.COMPUTE):
            raise ConfigError(f"{self.name}: unknown role {self.role!r}")


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """A full cluster: nodes + interconnect + runtime constants."""

    nodes: tuple[NodeConfig, ...]
    network: NetworkConfig = dataclasses.field(default_factory=NetworkConfig)
    phoenix: PhoenixConfig = dataclasses.field(default_factory=PhoenixConfig)
    smartfam: SmartFAMConfig = dataclasses.field(default_factory=SmartFAMConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate node names in {names}")
        if not self.nodes:
            raise ConfigError("cluster needs at least one node")

    def node(self, name: str) -> NodeConfig:
        """Config of the named node."""
        for n in self.nodes:
            if n.name == name:
                return n
        raise ConfigError(f"no node named {name!r}")

    def by_role(self, role: str) -> list[NodeConfig]:
        """All node configs with the given role."""
        return [n for n in self.nodes if n.role == role]


def table1_cluster(
    *,
    sd_cpu: CPUSpec = DUO_E4400,
    mem_bytes: int = GiB(2),
    n_sd: int = 1,
    n_compute: int = 3,
    network: NetworkConfig | None = None,
    phoenix: PhoenixConfig | None = None,
    smartfam: SmartFAMConfig | None = None,
    memory_policy: MemoryPolicy | None = None,
    tier: TierSpec | None = None,
    seed: int = 0,
) -> ClusterConfig:
    """The paper's 5-node testbed (Table I).

    One Core2 Quad host, ``n_sd`` smart-storage nodes (Core2 Duo by
    default; pass ``sd_cpu`` to swap in a single-core CPU for the
    "traditional SD" scenario or the quad for what-ifs), and three Celeron
    compute nodes.  All nodes have 2 GB RAM and hang off one Gigabit
    switch.  ``n_sd > 1`` builds the multi-McSD configuration of the
    paper's future work ("the parallelisms among multiple McSD smart
    disks", Section VI).  ``tier`` attaches a burst buffer to every SD
    node (the host and compute nodes keep bare disks — the tier models
    flash co-located with the smart disk).
    """
    if n_sd < 1:
        raise ConfigError("need at least one SD node")
    mp = memory_policy or MemoryPolicy()
    nodes = [
        NodeConfig("host", QUAD_Q9400, mem_bytes, role=NodeRole.HOST, memory_policy=mp),
    ]
    for i in range(n_sd):
        nodes.append(
            NodeConfig(
                f"sd{i}", sd_cpu, mem_bytes, role=NodeRole.SD, memory_policy=mp, tier=tier
            )
        )
    for i in range(n_compute):
        nodes.append(
            NodeConfig(
                f"compute{i}", CELERON_450, mem_bytes, role=NodeRole.COMPUTE, memory_policy=mp
            )
        )
    return ClusterConfig(
        nodes=tuple(nodes),
        network=network or NetworkConfig(),
        phoenix=phoenix or PhoenixConfig(),
        smartfam=smartfam or SmartFAMConfig(),
        seed=seed,
    )
