"""Experiment CLI: ``python -m repro <command>``.

Commands regenerate individual paper results on the terminal without
going through pytest:

    python -m repro table1            # the testbed configuration
    python -m repro fig8a             # single-app speedups
    python -m repro fig8b | fig8c     # growth curves (WC / SM)
    python -m repro fig9  | fig10     # multi-application pairs (WC / SM)
    python -m repro single wordcount 1000 --platform quad --approach partitioned
    python -m repro pair mcsd wordcount 1250
    python -m repro cmd "wordcount /export/data/input 600M" --size 1000
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.metrics import Series, speedup
from repro.analysis.report import (
    banner,
    render_ascii_chart,
    render_series_table,
    render_table,
)
from repro.cluster.scenario import (
    PAIR_SCENARIOS,
    run_pair_scenario,
    run_single_app,
)
from repro.units import MB, fmt_time
from repro.workloads import FIG8A_SIZES, FIG8BC_SIZES, FIG9_SIZES, size_label


def cmd_table1(_args) -> None:
    """Print the Table I testbed configuration."""
    from repro.cluster import Testbed
    from repro.units import GiB

    bed = Testbed()
    rows = [
        [n.name, n.cpu.name, f"{n.cpu.cores}c @ {n.cpu.clock_ghz}GHz",
         f"{n.mem_bytes / GiB(1):.0f}GiB", n.role]
        for n in bed.config.nodes
    ]
    print(banner("TABLE I - the 5-node cluster"))
    print(render_table(["node", "CPU", "cores", "memory", "role"], rows))


def cmd_fig8a(_args) -> None:
    """Print the Fig 8(a) speedup tables."""
    xs = [s / MB(1) for s in FIG8A_SIZES]
    labels = [size_label(s) for s in FIG8A_SIZES]
    for baseline, title in (("sequential", "vs SEQUENTIAL"), ("parallel", "vs ORIGINAL Phoenix")):
        series = []
        for app, tag in (("wordcount", "WC"), ("stringmatch", "SM")):
            for platform in ("quad", "duo"):
                ys = []
                for size in FIG8A_SIZES:
                    part = run_single_app(app, size, platform, "partitioned").elapsed
                    base = run_single_app(app, size, platform, baseline).elapsed
                    ys.append(speedup(base, part))
                series.append(Series(f"{platform.capitalize()}, {tag}", xs, ys))
        print(banner(f"FIG 8(a) - partition-enabled speedup {title}"))
        print(render_series_table(series, labels))


def _growth(app: str, fig: str) -> None:
    xs = [s / MB(1) for s in FIG8BC_SIZES]
    labels = [size_label(s) for s in FIG8BC_SIZES]
    series = []
    for platform in ("duo", "quad"):
        for approach, name in (("parallel", "trad"), ("partitioned", "part")):
            ys = [run_single_app(app, s, platform, approach).elapsed for s in FIG8BC_SIZES]
            series.append(Series(f"{platform} {name}", xs, ys))
    series.append(
        Series("duo seq", xs, [run_single_app(app, s, "duo", "sequential").elapsed for s in FIG8BC_SIZES])
    )
    print(banner(f"FIG {fig} - {app} growth curves (seconds; n/s = memory overflow)"))
    print(render_series_table(series, labels))
    print(render_ascii_chart(series[:2], y_label=f"{app} on the duo SD: seconds vs MB"))


def cmd_fig8b(_args) -> None:
    """Print the Fig 8(b) Word Count growth curves."""
    _growth("wordcount", "8(b)")


def cmd_fig8c(_args) -> None:
    """Print the Fig 8(c) String Match growth curves."""
    _growth("stringmatch", "8(c)")


def _pair(app: str, fig: str) -> None:
    xs = [s / MB(1) for s in FIG9_SIZES]
    labels = [size_label(s) for s in FIG9_SIZES]
    base = [run_pair_scenario("mcsd", app, s).makespan for s in FIG9_SIZES]
    series = []
    for scenario, name in (
        ("host-only", "(a) Host only"),
        ("trad-sd", "(b) Trad SD"),
        ("mcsd-nopart", "(c) McSD no-part"),
    ):
        ys = [run_pair_scenario(scenario, app, s).makespan for s in FIG9_SIZES]
        series.append(Series(name, xs, [speedup(y, b) for y, b in zip(ys, base)]))
    print(banner(f"FIG {fig} - MM/{app}: McSD speedup over each baseline"))
    print(render_series_table(series, labels))


def cmd_fig9(_args) -> None:
    """Print the Fig 9 MM/WC pair speedups."""
    _pair("wordcount", "9")


def cmd_fig10(_args) -> None:
    """Print the Fig 10 MM/SM pair speedups."""
    _pair("stringmatch", "10")


def cmd_single(args) -> None:
    """Run one single-application measurement."""
    r = run_single_app(args.app, MB(args.size_mb), args.platform, args.approach)
    if not r.supported:
        print(f"not supported: {r.failure}")
        return
    print(
        f"{args.app} {args.size_mb}MB on {args.platform} ({args.approach}): "
        f"{fmt_time(r.elapsed)}"
        + (f", {r.fragments} fragments" if args.approach == "partitioned" else "")
    )


def cmd_pair(args) -> None:
    """Run one multi-application measurement."""
    r = run_pair_scenario(args.scenario, args.app, MB(args.size_mb))
    if not r.supported:
        print(f"not supported: {r.failure}")
        return
    print(
        f"{args.scenario} MM/{args.app} {args.size_mb}MB: makespan "
        f"{fmt_time(r.makespan)} (mm {fmt_time(r.mm_elapsed)}, "
        f"data {fmt_time(r.data_elapsed)})"
    )


def cmd_cmd(args) -> None:
    """Run a Section IV-C style command on a fresh Table I testbed."""
    from repro.cluster import Testbed
    from repro.cluster.scenario import make_data_app
    from repro.core.cmdline import parse_command, run_command

    job = parse_command(args.command)
    size = MB(args.size) if args.size else MB(500)
    app = job.app if job.app in ("wordcount", "stringmatch") else "wordcount"
    bed = Testbed(seed=0)
    _spec, inp = make_data_app(app, size)
    _sd, _h, sd_path = bed.stage_on_sd("input", inp)
    # rewrite the data-file to the staged path so the one-liner "just runs"
    command = args.command.replace(job.input_path, sd_path)
    if job.app == "stringmatch" and "keys=" not in command:
        keys = ",".join(k.decode() for k in inp.params.get("keys", []))
        command += f" keys={keys}"
    result = run_command(bed, command, input_size=size)
    elapsed = getattr(result, "elapsed", None)
    if elapsed is None:
        elapsed = result.stats.elapsed
    print(f"{command!r} over {size / 1e6:.0f}MB: {fmt_time(elapsed)} on {bed.sd.name}")
    output = getattr(result, "output", None)
    if output:
        print("head of output:", output[:3])


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("table1", "fig8a", "fig8b", "fig8c", "fig9", "fig10"):
        sub.add_parser(name).set_defaults(fn=globals()[f"cmd_{name}"])

    p_single = sub.add_parser("single", help="one single-application run")
    p_single.add_argument("app", choices=["wordcount", "stringmatch"])
    p_single.add_argument("size_mb", type=int)
    p_single.add_argument("--platform", default="duo", choices=["duo", "quad", "single", "celeron"])
    p_single.add_argument(
        "--approach", default="partitioned", choices=["sequential", "parallel", "partitioned"]
    )
    p_single.set_defaults(fn=cmd_single)

    p_pair = sub.add_parser("pair", help="one multi-application run")
    p_pair.add_argument("scenario", choices=list(PAIR_SCENARIOS))
    p_pair.add_argument("app", choices=["wordcount", "stringmatch"])
    p_pair.add_argument("size_mb", type=int)
    p_pair.set_defaults(fn=cmd_pair)

    p_cmd = sub.add_parser("cmd", help="run a paper-syntax command (Section IV-C)")
    p_cmd.add_argument("command", help='e.g. "wordcount /export/data/input 600M"')
    p_cmd.add_argument("--size", type=int, default=0, help="declared input size in MB")
    p_cmd.set_defaults(fn=cmd_cmd)

    args = parser.parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
