"""Small OS-level helpers: daemon processes and task handles.

The kernel's :class:`~repro.sim.process.Process` already gives us
preemptible coroutines; this module adds the thin conventions the McSD
daemons share — a restart-on-crash wrapper and a handle that joins a task
with a timeout.
"""

from __future__ import annotations

import typing as _t

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.process import Process

__all__ = ["TaskHandle", "spawn_daemon"]


class TaskHandle:
    """A joinable reference to a spawned task."""

    __slots__ = ("process",)

    def __init__(self, process: Process):
        self.process = process

    @property
    def done(self) -> bool:
        """True once the task finished (ok or failed)."""
        return self.process.triggered

    def join(self) -> Event:
        """Event completing with the task (yield it from a sim process)."""
        return self.process

    def cancel(self, cause: object = "cancelled") -> None:
        """Interrupt the task if still running."""
        if self.process.is_alive:
            self.process.interrupt(cause)


def spawn_daemon(
    sim: Simulator,
    factory: _t.Callable[[], _t.Generator],
    name: str,
    restart: bool = True,
    max_restarts: int = 16,
) -> Process:
    """Run ``factory()`` as a long-lived daemon, restarting it on crash.

    A daemon generator that *returns* is considered done (no restart); one
    that *raises* is restarted up to ``max_restarts`` times, after which
    the supervisor itself fails — silently looping forever on a broken
    daemon would hide bugs.
    """

    def _supervisor() -> _t.Generator:
        restarts = 0
        while True:
            body = sim.spawn(factory(), name=name)
            try:
                result = yield body
                return result
            except Exception:
                if not restart:
                    raise
                restarts += 1
                if restarts > max_restarts:
                    raise SimulationError(
                        f"daemon {name!r} crashed {restarts} times; giving up"
                    )
                # immediate restart at the same instant
                yield sim.timeout(0.0)

    return sim.spawn(_supervisor(), name=f"supervisor:{name}")
