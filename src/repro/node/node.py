"""A cluster machine: CPU, memory, disk, local FS, inotify, and a netstack.

The netstack gives each node one fabric endpoint and demultiplexes inbound
messages to named *service ports* (queues), so NFS, smartFAM and SMB can
coexist on one wire exactly like UDP/TCP services on one NIC.

Memory pressure is wired straight into the CPU: the memory model's thrash
factor becomes the CPU's node-wide slowdown, which is how a bloated
MapReduce working set degrades *every* task on the node (the mechanism
behind Fig 8(b)'s nonlinear curves).
"""

from __future__ import annotations

import typing as _t

from repro.config import NodeConfig
from repro.errors import NetworkError
from repro.fs.inotify import InotifyManager
from repro.fs.localfs import LocalFS
from repro.hardware.cpu import ProcessorSharingCPU
from repro.hardware.disk import DiskModel
from repro.hardware.memory import MemoryModel
from repro.net.fabric import Fabric
from repro.net.message import Message
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.resources import Store

__all__ = ["Node"]


class Node:
    """One machine in the simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        config: NodeConfig,
        fabric: Fabric,
        inotify_latency: float = 0.0,
    ):
        self.sim = sim
        self.config = config
        self.name = config.name
        self.fabric = fabric

        self.cpu = ProcessorSharingCPU(sim, config.cpu, name=f"{self.name}.cpu")
        self.memory = MemoryModel(
            sim, config.mem_bytes, policy=config.memory_policy, name=f"{self.name}.mem"
        )
        self.memory.on_thrash_change(self.cpu.set_slowdown)
        self.disk = DiskModel(sim, config.disk, name=f"{self.name}.disk")
        self.fs = LocalFS(sim, self.disk, name=f"{self.name}.fs")
        self.tier = None
        if config.tier is not None:
            from repro.tier.burst import BurstBuffer

            self.tier = self.fs.attach_tier(
                BurstBuffer(sim, self.disk, config.tier, name=f"{self.name}.tier")
            )
        self.inotify = InotifyManager(
            sim, self.fs.vfs, latency=inotify_latency, name=f"{self.name}.inotify"
        )

        self._inbox = fabric.attach(self.name)
        self._services: dict[str, Store] = {}
        self._mounts: dict[str, object] = {}  # mount point -> NFSMount
        sim.spawn(self._demux_loop(), name=f"{self.name}.netstack")

    # -- network services ---------------------------------------------------

    def open_port(self, port: str) -> Store:
        """Create (or return) the inbound queue for a named service port."""
        q = self._services.get(port)
        if q is None:
            q = Store(self.sim, name=f"{self.name}:{port}")
            self._services[port] = q
        return q

    def _demux_loop(self) -> _t.Generator:
        while True:
            msg = yield self._inbox.get()
            assert isinstance(msg, Message)
            port = "default"
            if isinstance(msg.payload, dict):
                port = msg.payload.get("port", "default")
            self.open_port(port).put(msg)

    def send(
        self,
        dst: str,
        port: str,
        body: object,
        nbytes: int,
        kind: str = "data",
    ) -> Event:
        """Send a service message to another node; completes at delivery."""
        if nbytes < 0:
            raise NetworkError(f"negative message size {nbytes}")
        msg = Message(
            src=self.name,
            dst=dst,
            nbytes=nbytes,
            payload={"port": port, "body": body},
            kind=kind,
        )
        return self.fabric.send(msg)

    # -- compute ------------------------------------------------------------

    def run_ops(self, ops: float, name: str = "task") -> Event:
        """Run a CPU task on this node; completes when the ops are done."""
        return self.cpu.submit(ops, name=name)

    # -- mounts --------------------------------------------------------------

    def add_mount(self, mount_point: str, mount: object) -> None:
        """Attach an NFS mount at ``mount_point`` (e.g. '/mnt/sd0')."""
        from repro.fs import path as _p

        self._mounts[_p.normalize(mount_point)] = mount

    def resolve_fs(self, path: str) -> tuple[object, str]:
        """(filesystem, translated path) for ``path``.

        Longest-prefix match over mount points; falls back to the local FS
        with the path unchanged.  The returned object implements the timed
        LocalFS operation set (NFSMount mirrors it).
        """
        from repro.fs import path as _p

        norm = _p.normalize(path)
        best: str | None = None
        for mp in self._mounts:
            if _p.is_under(norm, mp) and (best is None or len(mp) > len(best)):
                best = mp
        if best is None:
            return self.fs, norm
        rel = norm[len(best) :] or "/"
        if not rel.startswith("/"):
            rel = "/" + rel
        return self._mounts[best], rel

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Node {self.name} ({self.config.role}) {self.config.cpu.name}>"
