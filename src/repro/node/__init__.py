"""Cluster node model: hardware + file system + network services."""

from repro.node.node import Node
from repro.node.os_sched import TaskHandle, spawn_daemon

__all__ = ["Node", "TaskHandle", "spawn_daemon"]
