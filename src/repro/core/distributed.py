"""Distributed single-job execution: one job sharded across N McSD nodes.

The scale-out the paper leaves as future work ("the parallelisms among
multiple McSD smart disks", Section VI), following the independent
blocks-per-node model: the input is staged *replicated* on every SD node
(:meth:`~repro.cluster.testbed.Testbed.stage_replicated`), so any subset
of nodes can run any subset of the work — which is also what makes
fine-grained recovery on the survivors possible after a shard node dies.

One distributed run has four phases:

1. **plan** — the host peeks the replica payload (content never leaves
   the SD; the planner needs only boundaries) and cuts the declared input
   into integrity-checked fragments
   (:func:`~repro.partition.partitioner.plan_fragments`, the Fig 7
   check), assigning contiguous fragment runs to shard nodes;
2. **map** — every shard node runs map + combine over its local
   fragments via its own smartFAM channel (``dist_map``), persists its
   intermediate data *partitioned by the crc32 shuffle hash*
   (:func:`~repro.phoenix.sort.partition_decorated`) as crc32-framed
   shuffle artifacts under ``/export/shuffle/<job>/``, and returns only
   per-partition metadata;
3. **exchange** — each partition is routed to the shard node already
   holding the most bytes of it (minimum transfer); the other shards'
   buckets cross the simulated fabric (``kind="shuffle"``), with byte
   accounting and fault hooks at the ``shuffle.exchange`` site;
4. **reduce/merge** — partition owners reduce their merged runs
   (``dist_reduce``); the reduced partitions gather at the owner holding
   the most reduced bytes (again minimum transfer), where ``dist_merge``
   applies the user merge function and returns the final output.

Map-only applications (String Match) skip the partition exchange: the
per-fragment outputs gather directly at the minimum-transfer node and
concatenate in global fragment order — byte-identical to the single-node
extended runtime by construction, because the fragment plan is the same.

Fault tolerance is **partial restart first** (ISSUE 9): every durable
intermediate is registered in a per-attempt
:class:`~repro.core.artifacts.AttemptManifest`, so when a shard dies the
engine invalidates only what that node held, reassigns its shards to
survivors, and re-runs exactly the missing work — exchange transfers
already received at their owners are deduplicated by
``(owner, shard, partition)`` id.  A straggling map shard gets a
*speculative duplicate* on a spare replica (:class:`SpeculationPolicy`);
first result wins, the loser is cancelled, and duplicates are safe
because reduce inputs are keyed by partition id, not arrival.  Whole-job
restart (fresh plan, fresh shuffle dir) remains the escalation path when
no artifacts survive or the partial-recovery budget is exhausted; when no
replicas remain at all the engine raises
:class:`~repro.errors.DistributedJobError` — retryable, so the cluster
scheduler can fall back to a single-node host run.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import typing as _t

from repro.apps import spec_for_app
from repro.core.artifacts import AttemptManifest
from repro.errors import (
    DistributedJobError,
    InterruptError,
    NetworkError,
    OffloadError,
    OffloadTimeoutError,
    ShuffleArtifactError,
    is_retryable,
    mark_retryable,
)
from repro.fs import path as _p
from repro.phoenix.api import InputSpec
from repro.partition.partitioner import plan_fragments
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.builder import BuiltCluster

__all__ = [
    "DistributedJob",
    "DistributedResult",
    "DistPlan",
    "ShardAssignment",
    "ShardFragment",
    "SpeculationPolicy",
    "plan_distribution",
    "DistributedEngine",
]


@dataclasses.dataclass(frozen=True)
class ShardFragment:
    """One integrity-checked fragment assigned to a shard.

    ``p0``/``p1`` locate the fragment's slice inside the replica payload
    (-1 when the input carries no payload); ``index`` is the fragment's
    position in the *global* plan, which fixes the gather order for
    order-sensitive (map-only) outputs.
    """

    size: int
    p0: int = -1
    p1: int = -1
    index: int = 0


@dataclasses.dataclass
class ShardAssignment:
    """A contiguous run of fragments owned by one SD node."""

    index: int
    node: str
    fragments: list
    size: int


@dataclasses.dataclass
class DistPlan:
    """The outcome of distribution planning for one attempt."""

    app: str
    #: "bytes" (fragment plan over a byte payload) or "split" (the app's
    #: own split function shards a non-byte payload, e.g. matrix rows)
    kind: str
    #: whether a cross-node partition exchange happens (reduce apps)
    exchange: bool
    n_partitions: int
    shards: list
    n_fragments: int


@dataclasses.dataclass(frozen=True)
class SpeculationPolicy:
    """When to launch a duplicate of a straggling map shard.

    A shard becomes a straggler once it has run longer than
    ``multiplier`` times the median of this phase's completed shard
    durations (and, when tracing has accumulated a ``dist.latency.map``
    histogram, longer than its ``percentile``-th percentile, whichever
    threshold is tighter).  Speculation waits for ``min_done`` completions
    first (default: a majority of the phase's shards) so the threshold
    has signal, launches at most one duplicate per shard, and only uses
    replicas with no in-flight map work.
    """

    enabled: bool = True
    multiplier: float = 1.5
    percentile: float = 95.0
    min_done: int | None = None
    #: floor for the straggler threshold (absorbs near-zero medians)
    min_wait: float = 0.05

    def threshold(self, durations: list, histogram=None) -> float | None:
        """The straggler cutoff given completed durations (None: no signal)."""
        if not durations:
            return None
        med = sorted(durations)[len(durations) // 2]
        thr = self.multiplier * max(med, 1e-9)
        if histogram is not None and histogram.count >= 8:
            thr = min(thr, max(histogram.percentile(self.percentile), self.min_wait))
        return max(thr, self.min_wait)


@dataclasses.dataclass
class DistributedJob:
    """One logical job to be sharded across the SD replica set.

    ``n_shards=None`` uses every available replica; ``fragment_bytes``
    fixes the global fragment plan (pass the same value to a single-node
    partitioned run to compare outputs byte for byte);
    ``n_partitions=None`` defaults to one shuffle partition per shard.
    """

    app: str
    input_path: str
    input_size: int
    n_shards: int | None = None
    fragment_bytes: int | None = None
    n_partitions: int | None = None
    params: dict = dataclasses.field(default_factory=dict)
    tenant: str = "default"
    #: control-plane compatibility (a distributed job is never pinned)
    sd_node: str = ""
    mode: str = "distributed"


@dataclasses.dataclass
class DistributedResult:
    """Outcome of a distributed run (duck-compatible with JobResult)."""

    app: str
    output: object
    elapsed: float
    n_shards: int
    shard_nodes: list
    #: partition index -> reduce owner ({} for map-only apps)
    reduce_nodes: dict
    merge_node: str
    n_partitions: int
    shuffle_bytes: int
    shuffle_transfers: int
    attempts: int
    #: absolute sim times of phase completions (chaos windows key off this)
    timeline: dict
    plan: DistPlan | None = dataclasses.field(default=None, repr=False)
    #: the committed attempt's shuffle-dir id (``<app>-<seq>a<attempt>``)
    job_id: str = ""
    #: recovery accounting: partial/full restarts, dedup, speculation, failures
    recovery: dict = dataclasses.field(default_factory=dict)

    @property
    def name(self) -> str:
        """The application name (JobResult compatibility)."""
        return self.app

    @property
    def where(self) -> str:
        """Where the final merge ran (JobResult compatibility)."""
        return self.merge_node

    @property
    def offloaded(self) -> bool:
        """Distributed runs always execute on the SD fleet."""
        return True


def plan_distribution(
    job: DistributedJob,
    payload: object,
    nodes: _t.Sequence[str],
    mem_capacity: int,
    cfg,
) -> DistPlan:
    """Cut one job into per-node shards of integrity-checked fragments.

    Deterministic in (job, payload, nodes): restarting on a smaller
    replica set re-plans the *same global fragments* over fewer shards,
    which is what keeps restarted outputs byte-identical.
    """
    if not nodes:
        raise OffloadError(f"distributed job {job.app!r} needs at least one SD node")
    spec = spec_for_app(job.app, job.params)
    want = job.n_shards if job.n_shards is not None else len(nodes)
    n = max(1, min(int(want), len(nodes)))
    exchange = spec.reduce_fn is not None

    if payload is not None and not isinstance(payload, (bytes, bytearray)):
        # Non-byte payloads (matmul's matrices) shard through the app's
        # own split function at map time; the plan only fixes the declared
        # byte apportionment and the shard count.
        base, extra = divmod(job.input_size, n)
        shards = [
            ShardAssignment(
                index=i,
                node=nodes[i],
                fragments=[],
                size=base + (1 if i < extra else 0),
            )
            for i in range(n)
        ]
        n_partitions = job.n_partitions if job.n_partitions is not None else len(shards)
        return DistPlan(
            app=job.app,
            kind="split",
            exchange=exchange,
            n_partitions=max(1, int(n_partitions)),
            shards=shards,
            n_fragments=len(shards),
        )

    frag = job.fragment_bytes
    if frag is None:
        frag = max(1, math.ceil(job.input_size / n))
    inp = InputSpec(
        path=job.input_path,
        size=job.input_size,
        payload=payload,
        params=dict(job.params),
    )
    fplan = plan_fragments(
        inp, int(frag), mem_capacity, spec.profile, cfg, delimiters=spec.delimiters
    )
    fragments: list[ShardFragment] = []
    off = 0
    for gi, piece in enumerate(fplan.fragments):
        if piece.payload is not None:
            ln = len(piece.payload)
            fragments.append(ShardFragment(size=piece.size, p0=off, p1=off + ln, index=gi))
            off += ln
        else:
            fragments.append(ShardFragment(size=piece.size, index=gi))
    total = len(fragments)
    n_eff = max(1, min(n, total))
    shards = []
    for i in range(n_eff):
        lo = (i * total) // n_eff
        hi = ((i + 1) * total) // n_eff
        chunk = fragments[lo:hi]
        shards.append(
            ShardAssignment(
                index=i,
                node=nodes[i],
                fragments=chunk,
                size=sum(f.size for f in chunk),
            )
        )
    n_partitions = job.n_partitions if job.n_partitions is not None else len(shards)
    return DistPlan(
        app=job.app,
        kind="bytes",
        exchange=exchange,
        n_partitions=max(1, int(n_partitions)),
        shards=shards,
        n_fragments=total,
    )


class _ShardFailure(Exception):
    """Internal: one shard node failed its invocation (carries the cause)."""

    def __init__(self, node: str, cause: BaseException, phase: str = "?"):
        super().__init__(f"shard on {node} failed at {phase}: {cause!r}")
        self.node = node
        self.cause = cause
        self.phase = phase
        #: whether this failure was already recorded in the recovery log
        self.noted = False


class DistributedEngine:
    """Shard one job across the SD replica set and shuffle between nodes.

    Parameters
    ----------
    cluster:
        The built cluster whose SD nodes hold replicas of the input.
    inflight:
        Optional shared per-node load dict (the scheduler passes the
        offload engine's, so shard load shows up in placement decisions).
    max_attempts:
        Whole-job restarts before giving up (each restart excludes the
        nodes that failed and re-plans on the survivors).
    transfer_retries:
        In-place retries per exchange transfer before the attempt is
        abandoned and the job restarts.
    partial_restart:
        When True (default), a failed shard invalidates only its own
        artifacts in the attempt manifest and the attempt resumes from
        what survives; False restores the PR-8 whole-job restart.
    speculation:
        :class:`SpeculationPolicy` for straggling map shards (None uses
        the defaults; ``SpeculationPolicy(enabled=False)`` turns it off).
    max_rebuilds:
        Corrupt-artifact rebuilds tolerated per attempt before escalating
        to a whole-job restart.
    """

    def __init__(
        self,
        cluster: "BuiltCluster",
        inflight: dict | None = None,
        max_attempts: int = 3,
        transfer_retries: int = 2,
        backoff: float = 0.1,
        partial_restart: bool = True,
        speculation: SpeculationPolicy | None = None,
        max_rebuilds: int = 3,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.inflight: dict[str, int] = inflight if inflight is not None else {}
        self.max_attempts = max(1, max_attempts)
        self.transfer_retries = max(0, transfer_retries)
        self.backoff = backoff
        self.partial_restart = partial_restart
        self.speculation = speculation if speculation is not None else SpeculationPolicy()
        self.max_rebuilds = max(0, max_rebuilds)
        #: distributed jobs started (stats)
        self.jobs = 0
        #: whole-job restarts (fresh plan + shuffle dir)
        self.full_restarts = 0
        #: in-attempt partial restarts (manifest-driven recovery passes)
        self.partial_restarts = 0
        #: exchange transfers skipped because their copy already landed
        self.dedup_transfers = 0
        #: speculative duplicates launched / won / cancelled
        self.spec_launched = 0
        self.spec_won = 0
        self.spec_cancelled = 0
        self._seq = itertools.count(1)

    @property
    def restarts(self) -> int:
        """Total restarts of either kind (legacy stat)."""
        return self.full_restarts + self.partial_restarts

    # -- public entry point -------------------------------------------------

    def run(
        self,
        job: DistributedJob,
        nodes: _t.Sequence[str] | None = None,
        timeout: float | None = None,
    ) -> Event:
        """Run ``job``; the Process value is a :class:`DistributedResult`.

        ``nodes`` restricts the candidate replica set (default: every SD
        node holding the input).  ``timeout`` bounds each smartFAM
        invocation — the liveness signal that turns a dead shard daemon
        into an excluded node and a recovery pass on the survivors.
        """
        return self.sim.spawn(self._run(job, nodes, timeout), name=f"dist:{job.app}")

    # -- restart loop -------------------------------------------------------

    def _candidates(
        self, job: DistributedJob, nodes: _t.Sequence[str] | None, excluded: set
    ) -> list[str]:
        pool = list(nodes) if nodes is not None else [
            n.name for n in self.cluster.sd_nodes
        ]
        out = []
        for name in pool:
            if name in excluded:
                continue
            try:
                self.cluster.node(name).fs.vfs.stat(job.input_path)
            except Exception:
                continue
            out.append(name)
        return out

    def _record_failure(
        self, recovery: dict, node: str, phase: str, cause: BaseException
    ) -> None:
        recovery["failures"].append(
            {
                "node": node,
                "phase": phase,
                "cause": type(cause).__name__,
                "attempt": recovery.get("attempt", 0),
                "at": round(self.sim.now, 6),
            }
        )
        self.sim.obs.count(f"dist.fail.{phase}")

    def _note_failure(self, recovery: dict, fail: _ShardFailure) -> None:
        """Record a shard failure once: the breakdown log + exclusion sets."""
        if fail.noted:
            return
        fail.noted = True
        self._record_failure(recovery, fail.node, fail.phase, fail.cause)
        if not isinstance(fail.cause, ShuffleArtifactError):
            recovery["excluded"].add(fail.node)
            if isinstance(fail.cause, OffloadTimeoutError):
                recovery["timed_out"].add(fail.node)

    def _run(
        self,
        job: DistributedJob,
        nodes: _t.Sequence[str] | None,
        timeout: float | None,
    ) -> _t.Generator:
        obs = self.sim.obs
        seq = next(self._seq)
        self.jobs += 1
        obs.count("dist.jobs")
        track = f"dist:{job.app}#{seq}"
        last: BaseException | None = None
        t0 = self.sim.now
        recovery: dict = {
            "excluded": set(),
            "timed_out": set(),
            "failures": [],
            "attempt": 0,
            "partial_restarts": 0,
            "dedup_transfers": 0,
            "spec_launched": 0,
            "spec_won": 0,
            "spec_cancelled": 0,
        }
        with obs.span(
            "dist.job", cat="dist", track=track, force=True,
            app=job.app, input_bytes=job.input_size,
        ) as root:
            for attempt in range(self.max_attempts):
                cand = self._candidates(job, nodes, recovery["excluded"])
                if not cand:
                    break
                job_id = f"{job.app}-{seq}a{attempt}"
                recovery["attempt"] = attempt
                try:
                    result = yield from self._attempt(
                        job, cand, job_id, timeout, track, recovery
                    )
                except _ShardFailure as fail:
                    if not is_retryable(fail.cause):
                        raise fail.cause
                    self._note_failure(recovery, fail)
                    last = fail.cause
                    self.full_restarts += 1
                    obs.count("dist.restart.full")
                    obs.count("dist.restarts")
                    continue
                except Exception as exc:
                    if not is_retryable(exc):
                        raise
                    last = exc
                    self.full_restarts += 1
                    obs.count("dist.restart.full")
                    obs.count("dist.restarts")
                    continue
                result.attempts = attempt + 1
                result.elapsed = self.sim.now - t0
                result.job_id = job_id
                result.recovery = {
                    "partial_restarts": recovery["partial_restarts"],
                    "full_restarts": attempt,
                    "dedup_transfers": recovery["dedup_transfers"],
                    "speculation": {
                        "launched": recovery["spec_launched"],
                        "won": recovery["spec_won"],
                        "cancelled": recovery["spec_cancelled"],
                    },
                    "failures": list(recovery["failures"]),
                }
                root.set(
                    shards=result.n_shards,
                    attempts=result.attempts,
                    merge_node=result.merge_node,
                    shuffle_bytes=result.shuffle_bytes,
                    partial_restarts=recovery["partial_restarts"],
                )
                if attempt > 0:
                    self._cleanup_prior_attempts(job, seq, attempt, nodes)
                return result
        err = DistributedJobError(
            job.app,
            self.max_attempts,
            excluded=recovery["excluded"],
            timed_out=recovery["timed_out"],
            failures=recovery["failures"],
        )
        if last is not None:
            err.__cause__ = last
        raise err

    def _cleanup_prior_attempts(
        self, job: DistributedJob, seq: int, final_attempt: int,
        nodes: _t.Sequence[str] | None,
    ) -> None:
        """Remove abandoned attempts' shuffle dirs once a later one commits.

        Host-driven VFS teardown, so it works even on nodes whose daemons
        are dead or excluded — exactly the nodes that leak directories.
        """
        pool = list(nodes) if nodes is not None else [
            n.name for n in self.cluster.sd_nodes
        ]
        cleaned = 0
        for attempt in range(final_attempt):
            stale = f"/export/shuffle/{job.app}-{seq}a{attempt}"
            for name in pool:
                try:
                    vfs = self.cluster.node(name).fs.vfs
                except Exception:
                    continue
                if vfs.exists(stale):
                    vfs.rmtree(stale)
                    cleaned += 1
        if cleaned:
            self.sim.obs.count("dist.shuffle.cleaned", cleaned)

    # -- one attempt --------------------------------------------------------

    def _attempt(
        self,
        job: DistributedJob,
        cand: list[str],
        job_id: str,
        timeout: float | None,
        track: str,
        recovery: dict,
    ) -> _t.Generator:
        """One attempt = a fixpoint loop of recovery passes over a manifest.

        Each pass runs exactly the work whose artifacts are missing; a
        failed shard invalidates what it held, reassigns to survivors,
        and loops.  The pass budget bounds pathological schedules — when
        it is exhausted (or no survivors remain) the attempt escalates to
        the whole-job restart loop in :meth:`_run`.
        """
        sim, cluster = self.sim, self.cluster
        obs = sim.obs
        first = cluster.node(cand[0])
        # Planner peek: boundaries only — content never leaves the SD.
        payload = first.fs.vfs.read(job.input_path) or None
        with obs.span("dist.plan", cat="dist", track=track, force=True) as sp:
            plan = plan_distribution(
                job, payload, cand, first.memory.capacity, cluster.config.phoenix
            )
            sp.set(shards=len(plan.shards), partitions=plan.n_partitions, kind=plan.kind)
        obs.count("dist.shards", len(plan.shards))
        shuffle_dir = f"/export/shuffle/{job_id}"
        rank = {name: i for i, name in enumerate(cand)}
        timeline: dict[str, float] = {"started": sim.now}
        acc = {"bytes": 0, "transfers": 0}
        alive = set(cand)
        assignment = {s.index: s.node for s in plan.shards}
        manifest = AttemptManifest()

        base = {
            "job_id": job_id,
            "app": job.app,
            "app_params": dict(job.params),
            "input_path": job.input_path,
            "input_size": job.input_size,
            "kind": plan.kind,
            "exchange": plan.exchange,
            "n_shards": len(plan.shards),
            "n_partitions": plan.n_partitions,
            "total_fragments": plan.n_fragments,
            "shuffle_dir": shuffle_dir,
        }
        params_by_shard = {
            s.index: dict(
                base,
                shard_index=s.index,
                shard_size=s.size,
                fragments=[[f.size, f.p0, f.p1, f.index] for f in s.fragments],
            )
            for s in plan.shards
        }

        rebuilds = 0
        max_passes = len(cand) + self.max_rebuilds + 2
        for pass_no in itertools.count():
            if pass_no >= max_passes:
                raise mark_retryable(
                    OffloadError(
                        f"distributed job {job.app!r}: partial recovery "
                        f"exceeded {max_passes} passes in attempt {job_id!r}"
                    )
                )
            try:
                return (
                    yield from self._attempt_pass(
                        job, plan, shuffle_dir, base, params_by_shard,
                        alive, assignment, manifest, rank, timeout, track,
                        timeline, acc, recovery,
                    )
                )
            except _ShardFailure as fail:
                if not self.partial_restart or not is_retryable(fail.cause):
                    raise
                self._note_failure(recovery, fail)
                if isinstance(fail.cause, ShuffleArtifactError):
                    rebuilds += 1
                    if rebuilds > self.max_rebuilds:
                        raise  # escalate: this attempt cannot converge
                    manifest.invalidate_artifact(fail.cause)
                else:
                    alive.discard(fail.node)
                    if not alive:
                        raise  # no survivors: whole-job restart decides
                    manifest.invalidate_node(fail.node)
                    self._reassign(assignment, alive, rank)
                recovery["partial_restarts"] += 1
                self.partial_restarts += 1
                obs.count("dist.restart.partial")

    def _reassign(self, assignment: dict, alive: set, rank: dict) -> None:
        """Move dead nodes' shards to the least-loaded survivors."""
        load = {name: 0 for name in alive}
        for node in assignment.values():
            if node in load:
                load[node] += 1
        for i in sorted(assignment):
            if assignment[i] in alive:
                continue
            target = min(load, key=lambda nm: (load[nm], rank[nm]))
            assignment[i] = target
            load[target] += 1

    # -- one recovery pass --------------------------------------------------

    def _attempt_pass(
        self,
        job: DistributedJob,
        plan: DistPlan,
        shuffle_dir: str,
        base: dict,
        params_by_shard: dict,
        alive: set,
        assignment: dict,
        manifest: AttemptManifest,
        rank: dict,
        timeout: float | None,
        track: str,
        timeline: dict,
        acc: dict,
        recovery: dict,
    ) -> _t.Generator:
        sim = self.sim
        obs = sim.obs

        # ---- map: only the shards whose artifacts are missing
        todo = [s.index for s in plan.shards if s.index not in manifest.maps]
        if todo:
            with obs.span("dist.map", cat="dist", track=track, force=True) as sp:
                yield from self._map_phase(
                    todo, params_by_shard, alive, assignment, manifest, rank,
                    timeout, recovery,
                )
                sp.set(shards=len(todo))
            timeline["map_done"] = sim.now
        timeline.setdefault("map_done", sim.now)

        reduce_nodes: dict[int, str] = {}
        parts_for_merge: list[dict] = []
        if plan.exchange:
            # ---- exchange: route each partition to its max-bytes owner,
            # skipping partitions already reduced and copies already received
            by_part: dict[int, dict[int, dict]] = {
                p: {} for p in range(plan.n_partitions)
            }
            for i, art in manifest.maps.items():
                for p, info in art.partitions.items():
                    by_part[int(p)][i] = info
            with obs.span(
                "shuffle.exchange", cat="dist", track=track, force=True
            ) as sp:
                transfers = []
                deduped = 0
                for p in range(plan.n_partitions):
                    srcs = by_part[p]
                    if not srcs:
                        continue
                    already = manifest.reduced.get(p)
                    if already is not None:
                        reduce_nodes[p] = already["node"]
                        continue
                    per_node: dict[str, int] = {}
                    for i, info in srcs.items():
                        nm = manifest.maps[i].node
                        per_node[nm] = per_node.get(nm, 0) + int(info["bytes"])
                    # the owner runs dist_reduce, so it needs a live daemon;
                    # dead nodes still count as transfer *sources* (their
                    # disks stay host-readable)
                    live = {nm: b for nm, b in per_node.items() if nm in alive}
                    if live:
                        owner = max(live, key=lambda nm: (live[nm], -rank[nm]))
                    else:
                        owner = min(alive, key=lambda nm: rank[nm])
                    reduce_nodes[p] = owner
                    for i in sorted(srcs):
                        info = srcs[i]
                        if manifest.maps[i].node == owner:
                            continue
                        key = (owner, i, p)
                        dst = f"{shuffle_dir}/rx/p{p}.s{i}"
                        if key in manifest.received:
                            deduped += 1
                            continue
                        transfers.append(
                            (
                                manifest.maps[i].node,
                                owner,
                                info["path"],
                                dst,
                                max(1, int(info["bytes"])),
                                p,
                                key,
                            )
                        )
                moved = yield from self._run_transfers([t[:6] for t in transfers])
                for t in transfers:
                    manifest.received[t[6]] = t[3]
                if deduped:
                    self.dedup_transfers += deduped
                    recovery["dedup_transfers"] += deduped
                    obs.count("dist.transfer.dedup", deduped)
                acc["bytes"] += moved
                acc["transfers"] += len(transfers)
                obs.count("shuffle.partitions", len(reduce_nodes))
                sp.set(
                    bytes=moved, transfers=len(transfers),
                    partitions=len(reduce_nodes), deduped=deduped,
                )
            timeline["exchange_done"] = sim.now

            # ---- reduce: each owner reduces its still-missing partitions
            by_owner: dict[str, list[int]] = {}
            for p, owner in sorted(reduce_nodes.items()):
                if p not in manifest.reduced:
                    by_owner.setdefault(owner, []).append(p)
            total_entries = sum(a.entries for a in manifest.maps.values())
            with obs.span("dist.reduce", cat="dist", track=track, force=True) as sp:
                procs = []
                for owner, parts in by_owner.items():
                    pspecs = []
                    for p in parts:
                        sources = []
                        for i in sorted(by_part[p]):
                            info = by_part[p][i]
                            path = (
                                info["path"]
                                if manifest.maps[i].node == owner
                                else f"{shuffle_dir}/rx/p{p}.s{i}"
                            )
                            sources.append(
                                {
                                    "path": path,
                                    "bytes": int(info["bytes"]),
                                    "entries": int(info["entries"]),
                                    "shard": i,
                                    "partition": p,
                                }
                            )
                        pspecs.append({"index": p, "sources": sources})
                    params = dict(base, partitions=pspecs, total_entries=total_entries)
                    procs.append(
                        sim.spawn(
                            self._invoke_on(
                                owner, "dist_reduce", params, timeout, "reduce"
                            ),
                            name=f"dist-reduce:{owner}",
                        )
                    )
                if procs:
                    gathered = yield sim.all_of(procs)
                    failure: _ShardFailure | None = None
                    # register every success before raising, so the failed
                    # owner's partitions are the only ones re-reduced
                    for proc in procs:
                        node_name, ok, value = gathered[proc]
                        if ok:
                            for p, info in (value.get("partitions") or {}).items():
                                manifest.reduced[int(p)] = dict(info, node=node_name)
                        elif failure is None:
                            failure = _ShardFailure(node_name, value, phase="reduce")
                    if failure is not None:
                        raise failure
                sp.set(partitions=len(manifest.reduced), owners=len(by_owner))
            timeline["reduce_done"] = sim.now

            # ---- merge placement: the owner holding the most reduced bytes
            reduced = manifest.reduced
            if reduced:
                local: dict[str, int] = {}
                for info in reduced.values():
                    local[info["node"]] = local.get(info["node"], 0) + int(info["bytes"])
                merge_node = max(local, key=lambda nm: (local[nm], -rank[nm]))
            else:
                merge_node = min(alive, key=lambda nm: rank[nm])
            gather = []
            for p in sorted(reduced):
                info = reduced[p]
                if info["node"] == merge_node:
                    parts_for_merge.append(
                        {"path": info["path"], "bytes": int(info["bytes"]),
                         "partition": p}
                    )
                else:
                    dst = f"{shuffle_dir}/final/p{p}"
                    key = (merge_node, "p", p)
                    if key not in manifest.gathered:
                        gather.append(
                            (
                                info["node"],
                                merge_node,
                                info["path"],
                                dst,
                                max(1, int(info["bytes"])),
                                p,
                                key,
                            )
                        )
                    parts_for_merge.append(
                        {"path": dst, "bytes": int(info["bytes"]), "partition": p}
                    )
            if gather:
                with obs.span(
                    "shuffle.gather", cat="dist", track=track, force=True
                ) as sp:
                    moved = yield from self._run_transfers([t[:6] for t in gather])
                    for t in gather:
                        manifest.gathered[t[6]] = t[3]
                    acc["bytes"] += moved
                    acc["transfers"] += len(gather)
                    sp.set(bytes=moved, transfers=len(gather))
        else:
            # ---- map-only: gather fragment outputs in global order at the
            # node already holding the most output bytes (minimum transfer)
            all_parts = []
            for i, art in manifest.maps.items():
                for part in art.parts:
                    all_parts.append(
                        (int(part["index"]), art.node, part["path"],
                         int(part["bytes"]), i)
                    )
            all_parts.sort()
            local = {}
            for _, nm, _, nbytes, _ in all_parts:
                if nm in alive:  # dist_merge needs a live daemon
                    local[nm] = local.get(nm, 0) + nbytes
            merge_node = (
                max(local, key=lambda nm: (local[nm], -rank[nm]))
                if local
                else min(alive, key=lambda nm: rank[nm])
            )
            transfers = []
            deduped = 0
            for gi, nm, path, nbytes, i in all_parts:
                if nm == merge_node:
                    parts_for_merge.append({"path": path, "bytes": nbytes, "shard": i})
                else:
                    dst = f"{shuffle_dir}/final/part{gi}"
                    key = (merge_node, "part", gi)
                    if key in manifest.gathered:
                        deduped += 1
                    else:
                        transfers.append(
                            (nm, merge_node, path, dst, max(1, nbytes), gi, key)
                        )
                    parts_for_merge.append({"path": dst, "bytes": nbytes, "shard": i})
            with obs.span(
                "shuffle.exchange", cat="dist", track=track, force=True
            ) as sp:
                moved = yield from self._run_transfers([t[:6] for t in transfers])
                for t in transfers:
                    manifest.gathered[t[6]] = t[3]
                if deduped:
                    self.dedup_transfers += deduped
                    recovery["dedup_transfers"] += deduped
                    obs.count("dist.transfer.dedup", deduped)
                acc["bytes"] += moved
                acc["transfers"] += len(transfers)
                sp.set(bytes=moved, transfers=len(transfers), partitions=0)
            timeline["exchange_done"] = sim.now
            timeline["reduce_done"] = sim.now

        # ---- final merge at the minimum-transfer node
        with obs.span(
            "dist.merge", cat="dist", track=track, force=True, node=merge_node
        ):
            params = dict(base, parts=parts_for_merge)
            node_name, ok, value = yield sim.spawn(
                self._invoke_on(merge_node, "dist_merge", params, timeout, "merge"),
                name=f"dist-merge:{merge_node}",
            )
            if not ok:
                raise _ShardFailure(node_name, value, phase="merge")
        timeline["merge_done"] = sim.now

        return DistributedResult(
            app=job.app,
            output=value.get("output"),
            elapsed=sim.now - timeline["started"],
            n_shards=len(plan.shards),
            # where each shard's committed map artifact actually lives — a
            # dead mapper whose artifact was reused still shows up here
            shard_nodes=[
                manifest.maps[s.index].node
                if s.index in manifest.maps
                else assignment[s.index]
                for s in plan.shards
            ],
            reduce_nodes=reduce_nodes,
            merge_node=merge_node,
            n_partitions=plan.n_partitions,
            shuffle_bytes=acc["bytes"],
            shuffle_transfers=acc["transfers"],
            attempts=1,
            timeline=timeline,
            plan=plan,
        )

    # -- map phase with speculation -----------------------------------------

    def _map_phase(
        self,
        todo: list,
        params_by_shard: dict,
        alive: set,
        assignment: dict,
        manifest: AttemptManifest,
        rank: dict,
        timeout: float | None,
        recovery: dict,
    ) -> _t.Generator:
        """Run ``todo`` map shards, speculating duplicates of stragglers.

        First result per shard wins and is committed to the manifest; the
        losing duplicate is interrupted — safe, because an interrupted
        invocation simply reports an :class:`InterruptError` result that
        is dropped here, and because reduce inputs are keyed by partition
        id a late duplicate artifact can never double-count.
        """
        sim = self.sim
        obs = sim.obs
        pol = self.speculation
        pending: dict = {}  # proc -> (shard_index, node, is_spec)
        start: dict[int, float] = {}
        for i in todo:
            node = assignment[i]
            proc = sim.spawn(
                self._invoke_on(node, "dist_map", params_by_shard[i], timeout, "map"),
                name=f"dist-map:{node}",
            )
            pending[proc] = (i, node, False)
            start[i] = sim.now
        durations: list[float] = []
        resolved: set[int] = set()
        speculated: set[int] = set()
        min_done = (
            pol.min_done if pol.min_done is not None else max(1, (len(todo) + 1) // 2)
        )

        while pending:
            threshold = None
            if pol.enabled and len(durations) >= min_done:
                threshold = pol.threshold(
                    durations,
                    histogram=obs.metrics.histograms.get("dist.latency.map"),
                )
            if threshold is not None:
                self._launch_speculation(
                    pending, start, speculated, threshold, alive, rank,
                    params_by_shard, timeout, recovery,
                )
            waits = list(pending)
            delay = self._next_straggler_check(pending, start, speculated, threshold)
            if delay is not None:
                yield sim.any_of(waits + [sim.timeout(delay)])
            else:
                yield sim.any_of(waits)

            abort: _ShardFailure | None = None
            for proc in [p for p in waits if p.triggered]:
                i, node, is_spec = pending.pop(proc)
                if not proc.ok:
                    continue  # a cancelled duplicate unwinding
                node_name, ok, value = proc.value
                if i in resolved:
                    continue  # late duplicate: winner already committed
                if ok:
                    resolved.add(i)
                    dur = sim.now - start[i]
                    durations.append(dur)
                    obs.observe("dist.latency.map", dur)
                    if is_spec:
                        self.spec_won += 1
                        recovery["spec_won"] += 1
                        obs.count("spec.won")
                    assignment[i] = node_name
                    manifest.register_map(i, node_name, value)
                    # cancel the losing copy still in flight
                    for other, (oi, _onode, _ospec) in list(pending.items()):
                        if oi != i:
                            continue
                        del pending[other]
                        if not other.triggered:
                            other.interrupt("speculation resolved")
                        self.spec_cancelled += 1
                        recovery["spec_cancelled"] += 1
                        obs.count("spec.cancelled")
                else:
                    if isinstance(value, InterruptError):
                        continue  # our own cancellation, not a verdict
                    sibling = any(oi == i for (oi, _, _) in pending.values())
                    if not sibling and abort is None:
                        abort = _ShardFailure(node_name, value, phase="map")
            if abort is not None:
                # stop the phase; unfinished shards stay unregistered and
                # re-run on the next recovery pass
                for other in list(pending):
                    if not other.triggered:
                        other.interrupt("map phase aborted")
                pending.clear()
                raise abort

    def _launch_speculation(
        self,
        pending: dict,
        start: dict,
        speculated: set,
        threshold: float,
        alive: set,
        rank: dict,
        params_by_shard: dict,
        timeout: float | None,
        recovery: dict,
    ) -> None:
        sim = self.sim
        obs = sim.obs
        busy = {node for (_, node, _) in pending.values()}
        overdue = sorted(
            (
                (i, node)
                for (i, node, is_spec) in pending.values()
                if not is_spec
                and i not in speculated
                # inclusive: the straggler-check timer fires at exactly
                # start + threshold, and that firing must launch
                and sim.now - start[i] >= threshold
            ),
            key=lambda t: start[t[0]],
        )
        for i, node in overdue:
            spares = sorted(
                (nm for nm in alive if nm not in busy and nm != node),
                key=lambda nm: rank[nm],
            )
            if not spares:
                return
            spare = spares[0]
            proc = sim.spawn(
                self._invoke_on(spare, "dist_map", params_by_shard[i], timeout, "map"),
                name=f"dist-map-spec:{spare}",
            )
            pending[proc] = (i, spare, True)
            speculated.add(i)
            busy.add(spare)
            self.spec_launched += 1
            recovery["spec_launched"] += 1
            obs.count("spec.launched")

    def _next_straggler_check(
        self, pending: dict, start: dict, speculated: set, threshold: float | None
    ) -> float | None:
        """Sim-time until the next unspeculated primary crosses the cutoff."""
        if threshold is None:
            return None
        now = self.sim.now
        waits = [
            start[i] + threshold - now
            for (i, _node, is_spec) in pending.values()
            if not is_spec and i not in speculated
        ]
        # overdue-but-unspeculated shards (no spare) wait for a completion
        waits = [w for w in waits if w > 0]
        return min(waits) if waits else None

    # -- building blocks ----------------------------------------------------

    def _invoke_on(
        self, node_name: str, module: str, params: dict, timeout: float | None,
        phase: str,
    ) -> _t.Generator:
        """Invoke one SD-side module; returns (node, ok, value-or-exc)."""
        obs = self.sim.obs
        channel = self.cluster.host_channels.get(node_name)
        if channel is None:
            return (
                node_name,
                False,
                OffloadError(f"no smartFAM channel to {node_name!r}"),
            )
        self.inflight[node_name] = self.inflight.get(node_name, 0) + 1
        obs.count(f"dist.invoke.{phase}")
        try:
            with obs.span(
                "dist.shard", cat="dist", track=node_name, force=True,
                phase=phase, module=module,
            ) as sp:
                try:
                    value = yield channel.invoke_reliable(
                        module, params, timeout=timeout, max_retries=1
                    )
                except Exception as exc:
                    sp.set(error=type(exc).__name__)
                    return (node_name, False, exc)
            return (node_name, True, value)
        finally:
            self.inflight[node_name] -= 1

    def _run_transfers(self, transfers: list[tuple]) -> _t.Generator:
        """Run exchange transfers concurrently; returns delivered bytes.

        A transfer that exhausted its in-place retries raises its cause —
        retryable causes restart the whole job at the attempt loop.
        """
        if not transfers:
            return 0
        sim = self.sim
        procs = [
            sim.spawn(self._transfer(*t), name=f"shuffle:{t[0]}->{t[1]}")
            for t in transfers
        ]
        gathered = yield sim.all_of(procs)
        moved = 0
        failure: BaseException | None = None
        for proc in procs:
            ok, value = gathered[proc]
            if ok:
                moved += value
            elif failure is None:
                failure = value
        if failure is not None:
            raise failure
        return moved

    def _transfer(
        self,
        src: str,
        dst: str,
        src_path: str,
        dst_path: str,
        nbytes: int,
        partition: int,
    ) -> _t.Generator:
        """One partition-exchange leg: SD disk read -> fabric -> SD disk write.

        Fault site ``shuffle.exchange`` (ctx: src, dst, partition, nbytes):
        *fail*/*drop*/*corrupt* cost the attempt (bounded in-place retries),
        *delay* adds latency before the payload lands.  Returns
        ``(True, bytes)`` or ``(False, exc)`` — never raises, so a batch
        of concurrent transfers can be inspected as a whole.
        """
        sim = self.sim
        obs = sim.obs
        src_node = self.cluster.node(src)
        dst_node = self.cluster.node(dst)
        last: BaseException | None = None
        for att in range(self.transfer_retries + 1):
            inj = sim.faults
            decision = None
            if inj is not None:
                decision = inj.check(
                    "shuffle.exchange", src=src, dst=dst,
                    partition=partition, nbytes=nbytes,
                )
            try:
                with obs.span(
                    "shuffle.transfer", cat="dist", track=src,
                    partition=partition, bytes=nbytes, dst=dst,
                ):
                    if decision is not None and decision.action in ("fail", "kill"):
                        raise mark_retryable(
                            NetworkError(
                                f"injected shuffle fault {src}->{dst} p{partition}"
                            )
                        )
                    if decision is not None and decision.action == "delay":
                        yield sim.timeout(decision.delay)
                    data = src_node.fs.vfs.read(src_path)
                    yield src_node.fs.read(src_path, nbytes=nbytes)
                    yield self.cluster.fabric.transfer(src, dst, nbytes, kind="shuffle")
                    if decision is not None and decision.action in ("drop", "corrupt"):
                        # the wire cost was paid but the payload never
                        # landed intact — retry ships it again
                        raise mark_retryable(
                            NetworkError(
                                f"shuffle payload lost {src}->{dst} p{partition}"
                            )
                        )
                    dst_node.fs.vfs.mkdir(
                        _p.parent(_p.normalize(dst_path)), parents=True
                    )
                    yield dst_node.fs.write(dst_path, data=data, size=nbytes)
                obs.count("shuffle.bytes", nbytes)
                obs.count("shuffle.transfers")
                return (True, nbytes)
            except Exception as exc:
                last = exc
                if not is_retryable(exc) or att == self.transfer_retries:
                    return (False, exc)
                obs.count("retry.count")
                obs.count("retry.shuffle")
                if self.backoff > 0:
                    yield sim.timeout(self.backoff * (2.0 ** att))
        return (False, last)
