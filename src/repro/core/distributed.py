"""Distributed single-job execution: one job sharded across N McSD nodes.

The scale-out the paper leaves as future work ("the parallelisms among
multiple McSD smart disks", Section VI), following the independent
blocks-per-node model: the input is staged *replicated* on every SD node
(:meth:`~repro.cluster.testbed.Testbed.stage_replicated`), so any subset
of nodes can run any subset of the work — which is also what makes
whole-job restarts on the survivors possible after a shard node dies.

One distributed run has four phases:

1. **plan** — the host peeks the replica payload (content never leaves
   the SD; the planner needs only boundaries) and cuts the declared input
   into integrity-checked fragments
   (:func:`~repro.partition.partitioner.plan_fragments`, the Fig 7
   check), assigning contiguous fragment runs to shard nodes;
2. **map** — every shard node runs map + combine over its local
   fragments via its own smartFAM channel (``dist_map``), persists its
   intermediate data *partitioned by the crc32 shuffle hash*
   (:func:`~repro.phoenix.sort.partition_decorated`) under
   ``/export/shuffle/<job>/``, and returns only per-partition metadata;
3. **exchange** — each partition is routed to the shard node already
   holding the most bytes of it (minimum transfer); the other shards'
   buckets cross the simulated fabric (``kind="shuffle"``), with byte
   accounting and fault hooks at the ``shuffle.exchange`` site;
4. **reduce/merge** — partition owners reduce their merged runs
   (``dist_reduce``); the reduced partitions gather at the owner holding
   the most reduced bytes (again minimum transfer), where ``dist_merge``
   applies the user merge function and returns the final output.

Map-only applications (String Match) skip the partition exchange: the
per-fragment outputs gather directly at the minimum-transfer node and
concatenate in global fragment order — byte-identical to the single-node
extended runtime by construction, because the fragment plan is the same.

Fault tolerance is restart-on-survivors: a shard whose daemon misses its
deadline excludes that node and re-plans the whole job on the remaining
replicas (each attempt uses a fresh shuffle directory, so a half-dead
attempt cannot contaminate the retry).  When no replicas remain the
engine raises :class:`~repro.errors.DistributedJobError` — retryable, so
the cluster scheduler can fall back to a single-node host run.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import typing as _t

from repro.apps import spec_for_app
from repro.errors import (
    DistributedJobError,
    NetworkError,
    OffloadError,
    OffloadTimeoutError,
    is_retryable,
    mark_retryable,
)
from repro.fs import path as _p
from repro.phoenix.api import InputSpec
from repro.partition.partitioner import plan_fragments
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.builder import BuiltCluster

__all__ = [
    "DistributedJob",
    "DistributedResult",
    "DistPlan",
    "ShardAssignment",
    "ShardFragment",
    "plan_distribution",
    "DistributedEngine",
]


@dataclasses.dataclass(frozen=True)
class ShardFragment:
    """One integrity-checked fragment assigned to a shard.

    ``p0``/``p1`` locate the fragment's slice inside the replica payload
    (-1 when the input carries no payload); ``index`` is the fragment's
    position in the *global* plan, which fixes the gather order for
    order-sensitive (map-only) outputs.
    """

    size: int
    p0: int = -1
    p1: int = -1
    index: int = 0


@dataclasses.dataclass
class ShardAssignment:
    """A contiguous run of fragments owned by one SD node."""

    index: int
    node: str
    fragments: list
    size: int


@dataclasses.dataclass
class DistPlan:
    """The outcome of distribution planning for one attempt."""

    app: str
    #: "bytes" (fragment plan over a byte payload) or "split" (the app's
    #: own split function shards a non-byte payload, e.g. matrix rows)
    kind: str
    #: whether a cross-node partition exchange happens (reduce apps)
    exchange: bool
    n_partitions: int
    shards: list
    n_fragments: int


@dataclasses.dataclass
class DistributedJob:
    """One logical job to be sharded across the SD replica set.

    ``n_shards=None`` uses every available replica; ``fragment_bytes``
    fixes the global fragment plan (pass the same value to a single-node
    partitioned run to compare outputs byte for byte);
    ``n_partitions=None`` defaults to one shuffle partition per shard.
    """

    app: str
    input_path: str
    input_size: int
    n_shards: int | None = None
    fragment_bytes: int | None = None
    n_partitions: int | None = None
    params: dict = dataclasses.field(default_factory=dict)
    tenant: str = "default"
    #: control-plane compatibility (a distributed job is never pinned)
    sd_node: str = ""
    mode: str = "distributed"


@dataclasses.dataclass
class DistributedResult:
    """Outcome of a distributed run (duck-compatible with JobResult)."""

    app: str
    output: object
    elapsed: float
    n_shards: int
    shard_nodes: list
    #: partition index -> reduce owner ({} for map-only apps)
    reduce_nodes: dict
    merge_node: str
    n_partitions: int
    shuffle_bytes: int
    shuffle_transfers: int
    attempts: int
    #: absolute sim times of phase completions (chaos windows key off this)
    timeline: dict
    plan: DistPlan | None = dataclasses.field(default=None, repr=False)

    @property
    def name(self) -> str:
        """The application name (JobResult compatibility)."""
        return self.app

    @property
    def where(self) -> str:
        """Where the final merge ran (JobResult compatibility)."""
        return self.merge_node

    @property
    def offloaded(self) -> bool:
        """Distributed runs always execute on the SD fleet."""
        return True


def plan_distribution(
    job: DistributedJob,
    payload: object,
    nodes: _t.Sequence[str],
    mem_capacity: int,
    cfg,
) -> DistPlan:
    """Cut one job into per-node shards of integrity-checked fragments.

    Deterministic in (job, payload, nodes): restarting on a smaller
    replica set re-plans the *same global fragments* over fewer shards,
    which is what keeps restarted outputs byte-identical.
    """
    if not nodes:
        raise OffloadError(f"distributed job {job.app!r} needs at least one SD node")
    spec = spec_for_app(job.app, job.params)
    want = job.n_shards if job.n_shards is not None else len(nodes)
    n = max(1, min(int(want), len(nodes)))
    exchange = spec.reduce_fn is not None

    if payload is not None and not isinstance(payload, (bytes, bytearray)):
        # Non-byte payloads (matmul's matrices) shard through the app's
        # own split function at map time; the plan only fixes the declared
        # byte apportionment and the shard count.
        base, extra = divmod(job.input_size, n)
        shards = [
            ShardAssignment(
                index=i,
                node=nodes[i],
                fragments=[],
                size=base + (1 if i < extra else 0),
            )
            for i in range(n)
        ]
        n_partitions = job.n_partitions if job.n_partitions is not None else len(shards)
        return DistPlan(
            app=job.app,
            kind="split",
            exchange=exchange,
            n_partitions=max(1, int(n_partitions)),
            shards=shards,
            n_fragments=len(shards),
        )

    frag = job.fragment_bytes
    if frag is None:
        frag = max(1, math.ceil(job.input_size / n))
    inp = InputSpec(
        path=job.input_path,
        size=job.input_size,
        payload=payload,
        params=dict(job.params),
    )
    fplan = plan_fragments(
        inp, int(frag), mem_capacity, spec.profile, cfg, delimiters=spec.delimiters
    )
    fragments: list[ShardFragment] = []
    off = 0
    for gi, piece in enumerate(fplan.fragments):
        if piece.payload is not None:
            ln = len(piece.payload)
            fragments.append(ShardFragment(size=piece.size, p0=off, p1=off + ln, index=gi))
            off += ln
        else:
            fragments.append(ShardFragment(size=piece.size, index=gi))
    total = len(fragments)
    n_eff = max(1, min(n, total))
    shards = []
    for i in range(n_eff):
        lo = (i * total) // n_eff
        hi = ((i + 1) * total) // n_eff
        chunk = fragments[lo:hi]
        shards.append(
            ShardAssignment(
                index=i,
                node=nodes[i],
                fragments=chunk,
                size=sum(f.size for f in chunk),
            )
        )
    n_partitions = job.n_partitions if job.n_partitions is not None else len(shards)
    return DistPlan(
        app=job.app,
        kind="bytes",
        exchange=exchange,
        n_partitions=max(1, int(n_partitions)),
        shards=shards,
        n_fragments=total,
    )


class _ShardFailure(Exception):
    """Internal: one shard node failed its invocation (carries the cause)."""

    def __init__(self, node: str, cause: BaseException):
        super().__init__(f"shard on {node} failed: {cause!r}")
        self.node = node
        self.cause = cause


class DistributedEngine:
    """Shard one job across the SD replica set and shuffle between nodes.

    Parameters
    ----------
    cluster:
        The built cluster whose SD nodes hold replicas of the input.
    inflight:
        Optional shared per-node load dict (the scheduler passes the
        offload engine's, so shard load shows up in placement decisions).
    max_attempts:
        Whole-job restarts before giving up (each restart excludes the
        nodes that failed and re-plans on the survivors).
    transfer_retries:
        In-place retries per exchange transfer before the attempt is
        abandoned and the job restarts.
    """

    def __init__(
        self,
        cluster: "BuiltCluster",
        inflight: dict | None = None,
        max_attempts: int = 3,
        transfer_retries: int = 2,
        backoff: float = 0.1,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.inflight: dict[str, int] = inflight if inflight is not None else {}
        self.max_attempts = max(1, max_attempts)
        self.transfer_retries = max(0, transfer_retries)
        self.backoff = backoff
        #: distributed jobs started / whole-job restarts (stats)
        self.jobs = 0
        self.restarts = 0
        self._seq = itertools.count(1)

    # -- public entry point -------------------------------------------------

    def run(
        self,
        job: DistributedJob,
        nodes: _t.Sequence[str] | None = None,
        timeout: float | None = None,
    ) -> Event:
        """Run ``job``; the Process value is a :class:`DistributedResult`.

        ``nodes`` restricts the candidate replica set (default: every SD
        node holding the input).  ``timeout`` bounds each smartFAM
        invocation — the liveness signal that turns a dead shard daemon
        into an excluded node and a restart on the survivors.
        """
        return self.sim.spawn(self._run(job, nodes, timeout), name=f"dist:{job.app}")

    # -- restart loop -------------------------------------------------------

    def _candidates(
        self, job: DistributedJob, nodes: _t.Sequence[str] | None, excluded: set
    ) -> list[str]:
        pool = list(nodes) if nodes is not None else [
            n.name for n in self.cluster.sd_nodes
        ]
        out = []
        for name in pool:
            if name in excluded:
                continue
            try:
                self.cluster.node(name).fs.vfs.stat(job.input_path)
            except Exception:
                continue
            out.append(name)
        return out

    def _run(
        self,
        job: DistributedJob,
        nodes: _t.Sequence[str] | None,
        timeout: float | None,
    ) -> _t.Generator:
        obs = self.sim.obs
        seq = next(self._seq)
        self.jobs += 1
        obs.count("dist.jobs")
        track = f"dist:{job.app}#{seq}"
        excluded: set[str] = set()
        timed_out: set[str] = set()
        last: BaseException | None = None
        t0 = self.sim.now
        with obs.span(
            "dist.job", cat="dist", track=track, force=True,
            app=job.app, input_bytes=job.input_size,
        ) as root:
            for attempt in range(self.max_attempts):
                cand = self._candidates(job, nodes, excluded)
                if not cand:
                    break
                job_id = f"{job.app}-{seq}a{attempt}"
                try:
                    result = yield from self._attempt(job, cand, job_id, timeout, track)
                except _ShardFailure as fail:
                    if not is_retryable(fail.cause):
                        raise fail.cause
                    excluded.add(fail.node)
                    if isinstance(fail.cause, OffloadTimeoutError):
                        timed_out.add(fail.node)
                    last = fail.cause
                    self.restarts += 1
                    obs.count("dist.restarts")
                    continue
                except Exception as exc:
                    if not is_retryable(exc):
                        raise
                    last = exc
                    self.restarts += 1
                    obs.count("dist.restarts")
                    continue
                result.attempts = attempt + 1
                result.elapsed = self.sim.now - t0
                root.set(
                    shards=result.n_shards,
                    attempts=result.attempts,
                    merge_node=result.merge_node,
                    shuffle_bytes=result.shuffle_bytes,
                )
                return result
        err = DistributedJobError(
            job.app, self.max_attempts, excluded=excluded, timed_out=timed_out
        )
        if last is not None:
            err.__cause__ = last
        raise err

    # -- one attempt --------------------------------------------------------

    def _attempt(
        self,
        job: DistributedJob,
        cand: list[str],
        job_id: str,
        timeout: float | None,
        track: str,
    ) -> _t.Generator:
        sim, cluster = self.sim, self.cluster
        obs = sim.obs
        first = cluster.node(cand[0])
        # Planner peek: boundaries only — content never leaves the SD.
        payload = first.fs.vfs.read(job.input_path) or None
        with obs.span("dist.plan", cat="dist", track=track, force=True) as sp:
            plan = plan_distribution(
                job, payload, cand, first.memory.capacity, cluster.config.phoenix
            )
            sp.set(shards=len(plan.shards), partitions=plan.n_partitions, kind=plan.kind)
        obs.count("dist.shards", len(plan.shards))
        shuffle_dir = f"/export/shuffle/{job_id}"
        order = {s.node: s.index for s in plan.shards}
        timeline: dict[str, float] = {"started": sim.now}
        shuffle_bytes = 0
        shuffle_transfers = 0

        base = {
            "job_id": job_id,
            "app": job.app,
            "app_params": dict(job.params),
            "input_path": job.input_path,
            "input_size": job.input_size,
            "kind": plan.kind,
            "exchange": plan.exchange,
            "n_shards": len(plan.shards),
            "n_partitions": plan.n_partitions,
            "total_fragments": plan.n_fragments,
            "shuffle_dir": shuffle_dir,
        }

        # ---- map: every shard maps + combines its fragments locally
        metas: dict[str, dict] = {}
        with obs.span("dist.map", cat="dist", track=track, force=True) as sp:
            procs = []
            for shard in plan.shards:
                params = dict(
                    base,
                    shard_index=shard.index,
                    shard_size=shard.size,
                    fragments=[[f.size, f.p0, f.p1, f.index] for f in shard.fragments],
                )
                procs.append(
                    sim.spawn(
                        self._invoke_on(shard.node, "dist_map", params, timeout, "map"),
                        name=f"dist-map:{shard.node}",
                    )
                )
            gathered = yield sim.all_of(procs)
            for proc in procs:
                node_name, ok, value = gathered[proc]
                if not ok:
                    raise _ShardFailure(node_name, value)
                metas[node_name] = value
            sp.set(shards=len(plan.shards))
        timeline["map_done"] = sim.now

        reduce_nodes: dict[int, str] = {}
        parts_for_merge: list[dict] = []
        if plan.exchange:
            # ---- exchange: route each partition to its max-bytes owner
            by_part: dict[int, dict[str, dict]] = {
                p: {} for p in range(plan.n_partitions)
            }
            for shard in plan.shards:
                for p, info in (metas[shard.node].get("partitions") or {}).items():
                    by_part[int(p)][shard.node] = info
            with obs.span(
                "shuffle.exchange", cat="dist", track=track, force=True
            ) as sp:
                transfers = []
                for p in range(plan.n_partitions):
                    srcs = by_part[p]
                    if not srcs:
                        continue
                    owner = max(
                        srcs, key=lambda nm: (int(srcs[nm]["bytes"]), -order[nm])
                    )
                    reduce_nodes[p] = owner
                    for shard in plan.shards:
                        info = srcs.get(shard.node)
                        if info is None or shard.node == owner:
                            continue
                        transfers.append(
                            (
                                shard.node,
                                owner,
                                info["path"],
                                f"{shuffle_dir}/rx/p{p}.s{shard.index}",
                                max(1, int(info["bytes"])),
                                p,
                            )
                        )
                moved = yield from self._run_transfers(transfers)
                shuffle_bytes += moved
                shuffle_transfers += len(transfers)
                obs.count("shuffle.partitions", len(reduce_nodes))
                sp.set(
                    bytes=moved, transfers=len(transfers), partitions=len(reduce_nodes)
                )
            timeline["exchange_done"] = sim.now

            # ---- reduce: each owner reduces its merged partition runs
            by_owner: dict[str, list[int]] = {}
            for p, owner in sorted(reduce_nodes.items()):
                by_owner.setdefault(owner, []).append(p)
            total_entries = sum(
                int(metas[s.node].get("entries") or 0) for s in plan.shards
            )
            reduced: dict[int, dict] = {}
            with obs.span("dist.reduce", cat="dist", track=track, force=True) as sp:
                procs = []
                for owner, parts in by_owner.items():
                    pspecs = []
                    for p in parts:
                        sources = []
                        for shard in plan.shards:
                            info = by_part[p].get(shard.node)
                            if info is None:
                                continue
                            path = (
                                info["path"]
                                if shard.node == owner
                                else f"{shuffle_dir}/rx/p{p}.s{shard.index}"
                            )
                            sources.append(
                                {
                                    "path": path,
                                    "bytes": int(info["bytes"]),
                                    "entries": int(info["entries"]),
                                }
                            )
                        pspecs.append({"index": p, "sources": sources})
                    params = dict(base, partitions=pspecs, total_entries=total_entries)
                    procs.append(
                        sim.spawn(
                            self._invoke_on(owner, "dist_reduce", params, timeout, "reduce"),
                            name=f"dist-reduce:{owner}",
                        )
                    )
                if procs:
                    gathered = yield sim.all_of(procs)
                    for proc in procs:
                        node_name, ok, value = gathered[proc]
                        if not ok:
                            raise _ShardFailure(node_name, value)
                        for p, info in (value.get("partitions") or {}).items():
                            reduced[int(p)] = dict(info, node=node_name)
                sp.set(partitions=len(reduced), owners=len(by_owner))
            timeline["reduce_done"] = sim.now

            # ---- merge placement: the owner holding the most reduced bytes
            if reduced:
                local: dict[str, int] = {}
                for info in reduced.values():
                    local[info["node"]] = local.get(info["node"], 0) + int(info["bytes"])
                merge_node = max(local, key=lambda nm: (local[nm], -order[nm]))
            else:
                merge_node = plan.shards[0].node
            gather = []
            for p in sorted(reduced):
                info = reduced[p]
                if info["node"] == merge_node:
                    parts_for_merge.append(
                        {"path": info["path"], "bytes": int(info["bytes"])}
                    )
                else:
                    dst = f"{shuffle_dir}/final/p{p}"
                    gather.append(
                        (
                            info["node"],
                            merge_node,
                            info["path"],
                            dst,
                            max(1, int(info["bytes"])),
                            p,
                        )
                    )
                    parts_for_merge.append({"path": dst, "bytes": int(info["bytes"])})
            if gather:
                with obs.span(
                    "shuffle.gather", cat="dist", track=track, force=True
                ) as sp:
                    moved = yield from self._run_transfers(gather)
                    shuffle_bytes += moved
                    shuffle_transfers += len(gather)
                    sp.set(bytes=moved, transfers=len(gather))
        else:
            # ---- map-only: gather fragment outputs in global order at the
            # node already holding the most output bytes (minimum transfer)
            all_parts = []
            for shard in plan.shards:
                for part in metas[shard.node].get("parts") or []:
                    all_parts.append(
                        (int(part["index"]), shard.node, part["path"], int(part["bytes"]))
                    )
            all_parts.sort()
            local = {}
            for _, nm, _, nbytes in all_parts:
                local[nm] = local.get(nm, 0) + nbytes
            merge_node = (
                max(local, key=lambda nm: (local[nm], -order[nm]))
                if local
                else plan.shards[0].node
            )
            transfers = []
            for gi, nm, path, nbytes in all_parts:
                if nm == merge_node:
                    parts_for_merge.append({"path": path, "bytes": nbytes})
                else:
                    dst = f"{shuffle_dir}/final/part{gi}"
                    transfers.append((nm, merge_node, path, dst, max(1, nbytes), gi))
                    parts_for_merge.append({"path": dst, "bytes": nbytes})
            with obs.span(
                "shuffle.exchange", cat="dist", track=track, force=True
            ) as sp:
                moved = yield from self._run_transfers(transfers)
                shuffle_bytes += moved
                shuffle_transfers += len(transfers)
                sp.set(bytes=moved, transfers=len(transfers), partitions=0)
            timeline["exchange_done"] = sim.now
            timeline["reduce_done"] = sim.now

        # ---- final merge at the minimum-transfer node
        with obs.span(
            "dist.merge", cat="dist", track=track, force=True, node=merge_node
        ):
            params = dict(base, parts=parts_for_merge)
            node_name, ok, value = yield sim.spawn(
                self._invoke_on(merge_node, "dist_merge", params, timeout, "merge"),
                name=f"dist-merge:{merge_node}",
            )
            if not ok:
                raise _ShardFailure(node_name, value)
        timeline["merge_done"] = sim.now

        return DistributedResult(
            app=job.app,
            output=value.get("output"),
            elapsed=sim.now - timeline["started"],
            n_shards=len(plan.shards),
            shard_nodes=[s.node for s in plan.shards],
            reduce_nodes=reduce_nodes,
            merge_node=merge_node,
            n_partitions=plan.n_partitions,
            shuffle_bytes=shuffle_bytes,
            shuffle_transfers=shuffle_transfers,
            attempts=1,
            timeline=timeline,
            plan=plan,
        )

    # -- building blocks ----------------------------------------------------

    def _invoke_on(
        self, node_name: str, module: str, params: dict, timeout: float | None,
        phase: str,
    ) -> _t.Generator:
        """Invoke one SD-side module; returns (node, ok, value-or-exc)."""
        obs = self.sim.obs
        channel = self.cluster.host_channels.get(node_name)
        if channel is None:
            return (
                node_name,
                False,
                OffloadError(f"no smartFAM channel to {node_name!r}"),
            )
        self.inflight[node_name] = self.inflight.get(node_name, 0) + 1
        obs.count(f"dist.invoke.{phase}")
        try:
            with obs.span(
                "dist.shard", cat="dist", track=node_name, force=True,
                phase=phase, module=module,
            ) as sp:
                try:
                    value = yield channel.invoke_reliable(
                        module, params, timeout=timeout, max_retries=1
                    )
                except Exception as exc:
                    sp.set(error=type(exc).__name__)
                    return (node_name, False, exc)
            return (node_name, True, value)
        finally:
            self.inflight[node_name] -= 1

    def _run_transfers(self, transfers: list[tuple]) -> _t.Generator:
        """Run exchange transfers concurrently; returns delivered bytes.

        A transfer that exhausted its in-place retries raises its cause —
        retryable causes restart the whole job at the attempt loop.
        """
        if not transfers:
            return 0
        sim = self.sim
        procs = [
            sim.spawn(self._transfer(*t), name=f"shuffle:{t[0]}->{t[1]}")
            for t in transfers
        ]
        gathered = yield sim.all_of(procs)
        moved = 0
        failure: BaseException | None = None
        for proc in procs:
            ok, value = gathered[proc]
            if ok:
                moved += value
            elif failure is None:
                failure = value
        if failure is not None:
            raise failure
        return moved

    def _transfer(
        self,
        src: str,
        dst: str,
        src_path: str,
        dst_path: str,
        nbytes: int,
        partition: int,
    ) -> _t.Generator:
        """One partition-exchange leg: SD disk read -> fabric -> SD disk write.

        Fault site ``shuffle.exchange`` (ctx: src, dst, partition, nbytes):
        *fail*/*drop*/*corrupt* cost the attempt (bounded in-place retries),
        *delay* adds latency before the payload lands.  Returns
        ``(True, bytes)`` or ``(False, exc)`` — never raises, so a batch
        of concurrent transfers can be inspected as a whole.
        """
        sim = self.sim
        obs = sim.obs
        src_node = self.cluster.node(src)
        dst_node = self.cluster.node(dst)
        last: BaseException | None = None
        for att in range(self.transfer_retries + 1):
            inj = sim.faults
            decision = None
            if inj is not None:
                decision = inj.check(
                    "shuffle.exchange", src=src, dst=dst,
                    partition=partition, nbytes=nbytes,
                )
            try:
                with obs.span(
                    "shuffle.transfer", cat="dist", track=src,
                    partition=partition, bytes=nbytes, dst=dst,
                ):
                    if decision is not None and decision.action in ("fail", "kill"):
                        raise mark_retryable(
                            NetworkError(
                                f"injected shuffle fault {src}->{dst} p{partition}"
                            )
                        )
                    if decision is not None and decision.action == "delay":
                        yield sim.timeout(decision.delay)
                    data = src_node.fs.vfs.read(src_path)
                    yield src_node.fs.read(src_path, nbytes=nbytes)
                    yield self.cluster.fabric.transfer(src, dst, nbytes, kind="shuffle")
                    if decision is not None and decision.action in ("drop", "corrupt"):
                        # the wire cost was paid but the payload never
                        # landed intact — retry ships it again
                        raise mark_retryable(
                            NetworkError(
                                f"shuffle payload lost {src}->{dst} p{partition}"
                            )
                        )
                    dst_node.fs.vfs.mkdir(
                        _p.parent(_p.normalize(dst_path)), parents=True
                    )
                    yield dst_node.fs.write(dst_path, data=data, size=nbytes)
                obs.count("shuffle.bytes", nbytes)
                obs.count("shuffle.transfers")
                return (True, nbytes)
            except Exception as exc:
                last = exc
                if not is_retryable(exc) or att == self.transfer_retries:
                    return (False, exc)
                obs.count("retry.count")
                obs.count("retry.shuffle")
                if self.backoff > 0:
                    yield sim.timeout(self.backoff * (2.0 ** att))
        return (False, last)
