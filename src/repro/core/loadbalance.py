"""Placement policies: host vs smart-storage load balancing.

"The programming framework aims at balancing load between computing nodes
and multicore-enabled smart storage nodes" (Abstract).  A policy maps a
:class:`~repro.core.job.DataJob` plus live cluster state to a
:class:`Placement`.

* :class:`AlwaysOffloadPolicy` — the McSD default: data-intensive work
  goes where the data is.
* :class:`HostOnlyPolicy` — the paper's "Host only" baseline: everything
  on the host, data pulled over NFS.
* :class:`AdaptivePolicy` — offload unless the SD node is already busier
  than the host by a configurable margin (queue-depth heuristic); the
  "load balancing" knob the framework exposes.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import PlacementError

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.builder import BuiltCluster
    from repro.core.job import DataJob

__all__ = [
    "Placement",
    "PlacementPolicy",
    "AlwaysOffloadPolicy",
    "HostOnlyPolicy",
    "AdaptivePolicy",
    "node_load",
    "least_loaded",
]


def node_load(
    cluster: "BuiltCluster",
    engine,
    node,
    depths: _t.Mapping[str, int] | None = None,
) -> float:
    """The live load of a node, as every placement decision sees it.

    Three stacked signals:

    * runnable tasks per core (the PS-CPU's multiprogramming level),
    * jobs already *placed* on the node but not yet finished
      (``engine.inflight`` — a burst submitted at one instant still
      spreads out),
    * jobs the control plane has queued *for* the node but not yet
      dispatched (``depths``, the scheduler's per-node queue depth).

    ``node`` may be a :class:`~repro.node.node.Node` or a name.
    """
    n = cluster.node(node) if isinstance(node, str) else node
    load = n.cpu.n_active / n.cpu.cores
    if engine is not None:
        load += engine.inflight.get(n.name, 0)
    if depths:
        load += depths.get(n.name, 0)
    return load


def least_loaded(
    cluster: "BuiltCluster",
    engine,
    names: _t.Sequence[str],
    depths: _t.Mapping[str, int] | None = None,
) -> str:
    """The least-loaded of ``names`` under :func:`node_load`.

    Ties break toward the earliest candidate in ``names`` — deterministic,
    and callers list the job's preferred (primary) node first.
    """
    if not names:
        raise PlacementError("least_loaded needs at least one candidate")
    best = names[0]
    best_load = node_load(cluster, engine, best, depths)
    for name in names[1:]:
        load = node_load(cluster, engine, name, depths)
        if load < best_load:
            best, best_load = name, load
    return best


@dataclasses.dataclass(frozen=True)
class Placement:
    """Where a data job should run."""

    node: str
    offload: bool  # True => via smartFAM to an SD node
    reason: str = ""


class PlacementPolicy:
    """Base class: decide where a data job runs."""

    name = "base"

    def place(
        self, job: "DataJob", cluster: "BuiltCluster", engine=None
    ) -> Placement:
        """Return the placement for ``job`` given live cluster state.

        ``engine`` (an :class:`~repro.core.offload.OffloadEngine`, when the
        runtime provides one) exposes placement-time signals such as jobs
        already assigned but not yet running (``engine.inflight``).
        """
        raise NotImplementedError

    def _sd_name(self, job: "DataJob", cluster: "BuiltCluster") -> str:
        name = job.sd_node or cluster.sd_nodes[0].name
        if name not in {n.name for n in cluster.sd_nodes}:
            raise PlacementError(f"no SD node named {name!r}")
        return name


class AlwaysOffloadPolicy(PlacementPolicy):
    """Run data-intensive jobs on the storage node holding their data."""

    name = "always-offload"

    def place(self, job: "DataJob", cluster: "BuiltCluster", engine=None) -> Placement:
        """Always offload to the SD node named by the job (or the first)."""
        sd = self._sd_name(job, cluster)
        return Placement(node=sd, offload=True, reason="data locality")


class HostOnlyPolicy(PlacementPolicy):
    """Run everything on the host (the paper's Host-only baseline)."""

    name = "host-only"

    def place(self, job: "DataJob", cluster: "BuiltCluster", engine=None) -> Placement:
        """Always run on the host (the Fig 9 'Host only' baseline)."""
        return Placement(node=cluster.host.name, offload=False, reason="host-only policy")


class AdaptivePolicy(PlacementPolicy):
    """Offload unless the SD node is overloaded relative to the host.

    Load metric: runnable tasks per core (the PS-CPU's multiprogramming
    level) plus jobs already *placed* on the node but not yet running
    (so a burst submitted at one instant still spreads out).  The job
    offloads when

        sd_load <= host_load + tolerance

    so a saturated storage node sheds work back to the host — the simple,
    effective heuristic the paper's "load balancing" feature describes.
    """

    name = "adaptive"

    def __init__(
        self,
        tolerance: float = 1.0,
        depth_source: _t.Callable[[], _t.Mapping[str, int]] | None = None,
    ):
        if tolerance < 0:
            raise PlacementError("tolerance must be >= 0")
        self.tolerance = tolerance
        #: optional live per-node queue depths (the scheduler binds its own
        #: via :meth:`bind_depths`, folding queued-but-undispatched work
        #: into the load signal)
        self.depth_source = depth_source

    def bind_depths(
        self, source: _t.Callable[[], _t.Mapping[str, int]] | None
    ) -> None:
        """Point the policy at a live per-node queue-depth source."""
        self.depth_source = source

    @staticmethod
    def load_of(node, engine=None, depths=None) -> float:
        """Runnable tasks per core + pending placed/queued jobs on a node."""
        load = node.cpu.n_active / node.cpu.cores
        if engine is not None:
            load += engine.inflight.get(node.name, 0)
        if depths:
            load += depths.get(node.name, 0)
        return load

    def place(self, job: "DataJob", cluster: "BuiltCluster", engine=None) -> Placement:
        """Offload unless the SD is busier than the host by > tolerance."""
        sd_name = self._sd_name(job, cluster)
        sd = cluster.node(sd_name)
        host = cluster.host
        depths = self.depth_source() if self.depth_source is not None else None
        sd_load = self.load_of(sd, engine, depths)
        host_load = self.load_of(host, engine, depths)
        if sd_load <= host_load + self.tolerance:
            return Placement(
                node=sd_name,
                offload=True,
                reason=f"sd_load={sd_load:.2f} <= host_load={host_load:.2f}+{self.tolerance}",
            )
        return Placement(
            node=host.name,
            offload=False,
            reason=f"sd overloaded ({sd_load:.2f} > {host_load:.2f}+{self.tolerance})",
        )
