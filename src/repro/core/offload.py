"""The offload engine: run a DataJob wherever placement said.

Offloaded jobs cross the smartFAM channel; host-placed jobs run in the
host's own Phoenix runtime with the input pulled through the NFS mount
(exactly what the paper's Host-only baseline pays for).
"""

from __future__ import annotations

import typing as _t

from repro.core.job import DataJob, JobResult
from repro.core.loadbalance import Placement
from repro.errors import OffloadError
from repro.fs import path as _p
from repro.phoenix.api import InputSpec
from repro.phoenix.runtime import PhoenixRuntime
from repro.partition.extended import ExtendedPhoenixRuntime
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.builder import BuiltCluster

__all__ = ["OffloadEngine"]


class OffloadEngine:
    """Executes data jobs against a built cluster."""

    def __init__(self, cluster: "BuiltCluster"):
        self.cluster = cluster
        self.sim = cluster.sim
        #: jobs run via smartFAM / on the host (stats)
        self.offloaded = 0
        self.host_runs = 0
        #: jobs currently placed on each node (placement-time load signal)
        self.inflight: dict[str, int] = {}

    def run(
        self, job: DataJob, placement: Placement, timeout: float | None = None
    ) -> Event:
        """Run ``job`` per ``placement``; Process value is a JobResult.

        ``timeout`` bounds an *offloaded* attempt (queueing + execution on
        the SD node); expiry raises
        :class:`~repro.errors.OffloadTimeoutError` — the liveness signal a
        silently dead SD daemon requires.  Host placements ignore it.
        """
        if placement.offload:
            gen = self._run_offloaded(job, placement, timeout)
        else:
            gen = self._run_on_host(job)
        target = placement.node if placement.offload else self.cluster.host.name
        self.inflight[target] = self.inflight.get(target, 0) + 1

        def _tracked() -> _t.Generator:
            try:
                result = yield self.sim.spawn(gen, name=f"offload:{job.app}")
                return result
            finally:
                self.inflight[target] -= 1

        return self.sim.spawn(_tracked(), name=f"offload-track:{job.app}")

    # -- smartFAM path ---------------------------------------------------------

    def _run_offloaded(
        self, job: DataJob, placement: Placement, timeout: float | None = None
    ) -> _t.Generator:
        channel = self.cluster.host_channels.get(placement.node)
        if channel is None:
            raise OffloadError(f"no smartFAM channel to {placement.node!r}")
        t0 = self.sim.now
        result = yield channel.invoke(job.app, job.invoke_params(), timeout=timeout)
        self.offloaded += 1
        return JobResult(
            name=job.app,
            where=placement.node,
            elapsed=self.sim.now - t0,
            output=getattr(result, "output", result),
            offloaded=True,
        )

    # -- host path -----------------------------------------------------------------

    def _host_view(self, job: DataJob) -> InputSpec:
        """The job's SD-resident input as seen through the host's mount."""
        sd_name = job.sd_node or self.cluster.sd_nodes[0].name
        export_prefix = "/export"
        if not _p.is_under(job.input_path, export_prefix):
            raise OffloadError(
                f"data job input {job.input_path!r} is not under the SD export"
            )
        rel = job.input_path[len(export_prefix):] or "/"
        host_path = _p.join(f"/mnt/{sd_name}", rel.lstrip("/"))
        # peek the payload from the SD's VFS so splitting can proceed; the
        # byte charges still cross NFS when the runtime reads the mount path
        sd = self.cluster.node(sd_name)
        payload = sd.fs.vfs.read(job.input_path) or None
        return InputSpec(
            path=host_path, size=job.input_size, payload=payload, params=dict(job.params)
        )

    def _run_on_host(self, job: DataJob) -> _t.Generator:
        host = self.cluster.host
        cfg = self.cluster.config.phoenix
        inp = self._host_view(job)
        spec = _spec_for(job)
        t0 = self.sim.now
        if job.mode == "partitioned":
            ext = ExtendedPhoenixRuntime(host, cfg)
            result = yield ext.run(spec, inp, fragment_bytes=job.fragment_bytes)
            output = result.output
        else:
            rt = PhoenixRuntime(host, cfg)
            result = yield rt.run(spec, inp, mode=job.mode)
            output = result.output
        self.host_runs += 1
        return JobResult(
            name=job.app,
            where=host.name,
            elapsed=self.sim.now - t0,
            output=output,
            offloaded=False,
        )


def _spec_for(job: DataJob):
    from repro.apps import spec_for_app

    return spec_for_app(job.app, job.params)
