"""Job descriptors: what a McSD program asks the runtime to do.

A :class:`DataJob` names a *preloaded module* and the SD-resident data it
should process — the job crosses the smartFAM channel as plain parameters,
never as code or content (the module was preloaded; the data already lives
on the storage node).  A :class:`ComputeJob` carries a full MapReduce spec
plus input for host-side execution.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigError
from repro.phoenix.api import InputSpec, MapReduceSpec
from repro.units import MB

__all__ = ["DataJob", "ComputeJob", "JobResult"]


@dataclasses.dataclass
class DataJob:
    """A data-intensive job over SD-resident data.

    ``input_path`` is the SD-local path (under the export).  ``mode``
    picks the execution strategy on whichever node the job lands:
    ``partitioned`` (default — the McSD way), ``parallel`` (original
    Phoenix) or ``sequential``.
    """

    app: str
    input_path: str
    input_size: int
    mode: str = "partitioned"
    fragment_bytes: int | None = None
    params: dict = dataclasses.field(default_factory=dict)
    #: which SD node holds the data ("" = the cluster's first SD node)
    sd_node: str = ""
    #: who submitted the job — the fair-share scheduler's accounting unit
    #: (purely host-side; never crosses the smartFAM channel)
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.mode not in ("partitioned", "parallel", "sequential"):
            raise ConfigError(f"unknown mode {self.mode!r}")
        if self.input_size < 0:
            raise ConfigError("negative input size")

    def invoke_params(self) -> dict:
        """The parameter record sent through the smartFAM log file."""
        out: dict = {
            "input_path": self.input_path,
            "input_size": self.input_size,
            "mode": self.mode,
            "app": dict(self.params),
        }
        if self.mode == "partitioned":
            out["fragment_bytes"] = self.fragment_bytes
        return out


@dataclasses.dataclass
class ComputeJob:
    """A computation-intensive job that runs on the host node."""

    spec: MapReduceSpec
    input: InputSpec
    mode: str = "parallel"

    def __post_init__(self) -> None:
        if self.mode not in ("parallel", "sequential"):
            raise ConfigError(f"unknown mode {self.mode!r}")

    @classmethod
    def matmul(cls, n: int, payload_n: int = 48, seed: int = 0) -> "ComputeJob":
        """The paper's computation-intensive exemplar: an n x n MM."""
        from repro.apps.matmul import make_matmul_spec, matmul_input

        return cls(
            spec=make_matmul_spec(n),
            input=matmul_input("/data/mm", n, payload_n=payload_n, seed=seed),
        )


@dataclasses.dataclass
class JobResult:
    """Outcome of one job."""

    name: str
    where: str  # node name
    elapsed: float
    output: object = None
    offloaded: bool = False
