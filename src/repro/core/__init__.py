"""The McSD programming framework (Section IV, Fig 4).

This is the user-facing API of the reproduction: a program is split into a
*host part* (computation-intensive, runs on the host computing node) and
an *SD part* (data-intensive, offloaded to a smart-storage node through
smartFAM).  The runtime owns placement, offload and load balancing — "the
APIs and runtime environment in our McSD programming framework
automatically handles computation offload, data partitioning, and load
balancing" (Section I).

Typical use::

    from repro.cluster import Testbed
    from repro.core import DataJob, ComputeJob, McSDProgram, McSDRuntime

    bed = Testbed()
    runtime = McSDRuntime(bed.cluster)
    program = McSDProgram(
        name="analytics",
        host_part=ComputeJob.matmul(n=2048),
        sd_part=DataJob(app="wordcount", input_path=..., input_size=...),
    )
    result = bed.run(runtime.submit(program))
"""

from repro.core.framework import McSDProgram, ProgramResult
from repro.core.job import ComputeJob, DataJob, JobResult
from repro.core.loadbalance import (
    AdaptivePolicy,
    AlwaysOffloadPolicy,
    HostOnlyPolicy,
    Placement,
    PlacementPolicy,
)
from repro.core.artifacts import AttemptManifest, MapArtifact
from repro.core.cmdline import parse_command, run_command
from repro.core.distributed import (
    DistPlan,
    DistributedEngine,
    DistributedJob,
    DistributedResult,
    ShardAssignment,
    ShardFragment,
    SpeculationPolicy,
    plan_distribution,
)
from repro.core.failover import Attempt, FaultTolerantInvoker
from repro.core.offload import OffloadEngine
from repro.core.scatter import ScatterGatherEngine, ScatterJob, ScatterResult, Shard
from repro.core.runtime import McSDRuntime

__all__ = [
    "DataJob",
    "ComputeJob",
    "JobResult",
    "McSDProgram",
    "ProgramResult",
    "McSDRuntime",
    "OffloadEngine",
    "FaultTolerantInvoker",
    "Attempt",
    "ScatterGatherEngine",
    "ScatterJob",
    "ScatterResult",
    "Shard",
    "DistributedEngine",
    "DistributedJob",
    "DistributedResult",
    "DistPlan",
    "ShardAssignment",
    "ShardFragment",
    "SpeculationPolicy",
    "AttemptManifest",
    "MapArtifact",
    "plan_distribution",
    "parse_command",
    "run_command",
    "Placement",
    "PlacementPolicy",
    "AlwaysOffloadPolicy",
    "HostOnlyPolicy",
    "AdaptivePolicy",
]
