"""McSDRuntime: the end-to-end runtime system of the framework.

``submit(program)`` launches the host part on the host's Phoenix runtime
and the SD part wherever the placement policy decides (SD node via
smartFAM, or host via NFS), concurrently; the returned process completes
when both parts have, carrying a :class:`~repro.core.framework.ProgramResult`.
"""

from __future__ import annotations

import typing as _t

from repro.core.framework import McSDProgram, ProgramResult
from repro.core.job import ComputeJob, JobResult
from repro.core.loadbalance import AlwaysOffloadPolicy, PlacementPolicy
from repro.core.offload import OffloadEngine
from repro.phoenix.runtime import PhoenixRuntime
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.builder import BuiltCluster

__all__ = ["McSDRuntime"]


class McSDRuntime:
    """The programming framework's runtime, bound to a built cluster."""

    def __init__(
        self,
        cluster: "BuiltCluster",
        policy: PlacementPolicy | None = None,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.policy = policy or AlwaysOffloadPolicy()
        self.engine = OffloadEngine(cluster)
        self._host_phoenix = PhoenixRuntime(cluster.host, cluster.config.phoenix)
        #: completed programs (stats)
        self.programs_run = 0

    def submit(self, program: McSDProgram) -> Event:
        """Run a program; Process value is a :class:`ProgramResult`."""
        return self.sim.spawn(self._run(program), name=f"program:{program.name}")

    def _run(self, program: McSDProgram) -> _t.Generator:
        t0 = self.sim.now
        parts: list[Event] = []
        host_proc: Event | None = None
        sd_proc: Event | None = None

        if program.host_part is not None:
            host_proc = self.sim.spawn(
                self._run_host_part(program.host_part),
                name=f"{program.name}.host",
            )
            parts.append(host_proc)
        if program.sd_part is not None:
            placement = self.policy.place(
                program.sd_part, self.cluster, engine=self.engine
            )
            sd_proc = self.engine.run(program.sd_part, placement)
            parts.append(sd_proc)

        results = yield self.sim.all_of(parts)
        self.programs_run += 1
        return ProgramResult(
            program=program.name,
            makespan=self.sim.now - t0,
            host_result=results.get(host_proc) if host_proc is not None else None,
            sd_result=results.get(sd_proc) if sd_proc is not None else None,
        )

    def _run_host_part(self, job: ComputeJob) -> _t.Generator:
        host = self.cluster.host
        # stage the input on the host's local FS if it is not there yet
        from repro.fs import path as _p

        if not host.fs.exists(job.input.path):
            host.fs.vfs.mkdir(_p.parent(job.input.path), parents=True)
            host.fs.vfs.write(
                job.input.path,
                data=job.input.payload
                if isinstance(job.input.payload, (bytes, bytearray))
                else job.input.payload,
                size=job.input.size,
            )
        t0 = self.sim.now
        result = yield self._host_phoenix.run(job.spec, job.input, mode=job.mode)
        return JobResult(
            name=job.spec.name,
            where=host.name,
            elapsed=self.sim.now - t0,
            output=result.output,
            offloaded=False,
        )
