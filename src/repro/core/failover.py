"""Fault tolerance for offloaded jobs (Section VI future work).

"...and (3) a mechanism in McSD to support fault tolerance and improve
reliability."  The smartFAM channel gives no failure notifications — a
dead daemon simply never answers — so reliability is built host-side:

* every call carries a deadline (:class:`~repro.errors.OffloadTimeoutError`),
* failed/timed-out calls retry on the same SD node (transient faults),
* after ``max_retries`` the job *fails over*: to another SD node holding a
  replica if one is configured, else to the host itself over NFS — degraded
  but correct.

:class:`FaultTolerantInvoker` wraps a cluster's channels with this policy
and keeps the audit trail (attempts, timeouts, failovers).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.job import DataJob, JobResult
from repro.core.loadbalance import Placement
from repro.core.offload import OffloadEngine
from repro.errors import OffloadError, OffloadTimeoutError, is_retryable
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.builder import BuiltCluster

__all__ = ["Attempt", "FaultTolerantInvoker"]


@dataclasses.dataclass
class Attempt:
    """One try at running a job (the audit trail entry)."""

    target: str
    started_at: float
    finished_at: float
    outcome: str  # ok | error | timeout
    detail: str = ""


class FaultTolerantInvoker:
    """Deadline + retry + failover around the smartFAM channel."""

    def __init__(
        self,
        cluster: "BuiltCluster",
        timeout: float | None = 120.0,
        max_retries: int = 1,
        fallback_to_host: bool = True,
        backoff: float = 0.1,
    ):
        if max_retries < 0:
            raise OffloadError("max_retries must be >= 0")
        if backoff < 0:
            raise OffloadError("backoff must be >= 0")
        self.cluster = cluster
        self.sim = cluster.sim
        self.timeout = timeout
        self.max_retries = max_retries
        self.fallback_to_host = fallback_to_host
        #: base delay between same-target retries (doubles per attempt)
        self.backoff = backoff
        self.engine = OffloadEngine(cluster)
        #: per-run audit trails (job app -> list of attempts), most recent last
        self.history: list[list[Attempt]] = []

    def run(self, job: DataJob, replicas: _t.Sequence[str] = ()) -> Event:
        """Run ``job`` reliably; Process value is a JobResult.

        ``replicas`` names additional SD nodes holding a copy of the input
        at the same export path (the failover targets tried, in order,
        after the primary exhausts its retries).
        """
        return self.sim.spawn(self._run(job, list(replicas)), name=f"ft:{job.app}")

    def _run(self, job: DataJob, replicas: list[str]) -> _t.Generator:
        primary = job.sd_node or self.cluster.sd_nodes[0].name
        obs = self.sim.obs
        trail: list[Attempt] = []
        self.history.append(trail)
        targets = [primary] + [r for r in replicas if r != primary]
        last_exc: BaseException | None = None

        for target in targets:
            channel = self.cluster.host_channels.get(target)
            if channel is None:
                continue
            if trail:
                obs.count("failover.count")  # moving past an exhausted target
            for attempt in range(self.max_retries + 1):
                if attempt > 0:
                    obs.count("retry.count")
                    obs.count(f"retry.offload.{job.app}")
                    if self.backoff > 0:
                        yield self.sim.timeout(self.backoff * (2.0 ** (attempt - 1)))
                t0 = self.sim.now
                try:
                    result = yield channel.invoke(
                        job.app, job.invoke_params(), timeout=self.timeout
                    )
                    trail.append(
                        Attempt(target, t0, self.sim.now, "ok")
                    )
                    return JobResult(
                        name=job.app,
                        where=target,
                        elapsed=self.sim.now - trail[0].started_at,
                        output=getattr(result, "output", result),
                        offloaded=True,
                    )
                except OffloadTimeoutError as exc:
                    last_exc = exc
                    trail.append(
                        Attempt(target, t0, self.sim.now, "timeout", str(exc))
                    )
                except Exception as exc:
                    last_exc = exc
                    trail.append(
                        Attempt(target, t0, self.sim.now, "error", str(exc))
                    )
                    if not is_retryable(exc):
                        # permanent (module missing, bad params, OOM): more
                        # tries on this target cannot change the outcome
                        break

        if self.fallback_to_host:
            t0 = self.sim.now
            obs.count("failover.count")
            obs.count("failover.host")
            # degraded mode: pull the data over NFS and run on the host
            host_job = dataclasses.replace(job, sd_node=primary)
            result = yield self.engine.run(
                host_job,
                Placement(node=self.cluster.host.name, offload=False, reason="failover"),
            )
            trail.append(Attempt(self.cluster.host.name, t0, self.sim.now, "ok", "failover"))
            return dataclasses.replace(
                result, elapsed=self.sim.now - trail[0].started_at
            )

        raise OffloadError(
            f"{job.app}: all targets failed ({len(trail)} attempts)"
        ) from last_exc

    # -- stats ------------------------------------------------------------

    @property
    def total_attempts(self) -> int:
        """Attempts across all runs."""
        return sum(len(t) for t in self.history)

    @property
    def failovers(self) -> int:
        """Runs that ended on the host fallback."""
        return sum(
            1
            for trail in self.history
            if trail and trail[-1].detail == "failover"
        )
