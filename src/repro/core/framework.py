"""McSDProgram: the two-part program model of Fig 4.

"Host program | SD program (data-intensive)" running over the McSD
runtime system — a program couples an optional computation-intensive host
part with an optional data-intensive SD part; the runtime executes both
concurrently and the program completes when both have.
"""

from __future__ import annotations

import dataclasses

from repro.core.job import ComputeJob, DataJob, JobResult
from repro.errors import ConfigError

__all__ = ["McSDProgram", "ProgramResult"]


@dataclasses.dataclass
class McSDProgram:
    """A user program: host part + SD part (either may be omitted)."""

    name: str
    host_part: ComputeJob | None = None
    sd_part: DataJob | None = None

    def __post_init__(self) -> None:
        if self.host_part is None and self.sd_part is None:
            raise ConfigError(f"program {self.name!r} has no parts")


@dataclasses.dataclass
class ProgramResult:
    """Outcome of one program run."""

    program: str
    makespan: float
    host_result: JobResult | None = None
    sd_result: JobResult | None = None

    @property
    def results(self) -> list[JobResult]:
        """The defined per-part results."""
        return [r for r in (self.host_result, self.sd_result) if r is not None]
