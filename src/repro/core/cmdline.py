"""The paper's command syntax for data-intensive programs (Section IV-C).

"Take an example of a Word-count command: ``wordcount [data-file]
[partition-size]``. ... If there is no [partition-size] parameter, the
program will run in native way.  Otherwise, the number of
[partition-size] can be manually filled in by the programmer or
automatically determined by the runtime system."

:func:`parse_command` turns that exact syntax into a
:class:`~repro.core.job.DataJob`; :func:`run_command` executes it against
a testbed.  Extras beyond the paper's two positionals use ``key=value``
tokens (``mode=sequential``, ``keys=a,b``, ``threshold=5``) so the shell
stays one line.

    wordcount /export/data/corpus 600M
    wordcount /export/data/corpus auto
    stringmatch /export/data/encrypt keys=SECRET,TOKEN
    dbselect /export/data/table 300M threshold=100 agg=max
"""

from __future__ import annotations

import shlex
import typing as _t

from repro.core.job import DataJob
from repro.errors import ConfigError
from repro.units import parse_bytes

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.testbed import Testbed

__all__ = ["parse_command", "run_command"]

#: option keys consumed by the framework itself (everything else goes to
#: the application through InputSpec.params)
_FRAMEWORK_KEYS = {"mode", "sd"}


def parse_command(command: str, input_size: int | None = None) -> DataJob:
    """Parse ``<module> <data-file> [partition-size] [key=value ...]``.

    * no partition-size   -> the native (non-partitioned parallel) run,
    * ``auto``            -> runtime-determined fragments,
    * ``600M`` / ``1.25G``-> programmer-chosen fragments (paper units).

    ``input_size`` supplies the declared size when the caller knows it;
    otherwise the executing side resolves it from the file.
    """
    tokens = shlex.split(command)
    if len(tokens) < 2:
        raise ConfigError(
            f"usage: <module> <data-file> [partition-size] [k=v ...]; got {command!r}"
        )
    module, data_file = tokens[0], tokens[1]
    rest = tokens[2:]

    mode = "parallel"  # the paper's "native way"
    fragment_bytes: int | None = None
    if rest and "=" not in rest[0]:
        spec = rest.pop(0)
        mode = "partitioned"
        if spec.lower() != "auto":
            fragment_bytes = parse_bytes(spec)

    params: dict = {}
    sd_node = ""
    for token in rest:
        if "=" not in token:
            raise ConfigError(f"expected key=value, got {token!r}")
        key, _, raw = token.partition("=")
        if key == "mode":
            mode = raw
        elif key == "sd":
            sd_node = raw
        elif key == "keys":
            params["keys"] = [k.encode() for k in raw.split(",") if k]
        else:
            params[key] = _coerce(raw)

    return DataJob(
        app=module,
        input_path=data_file,
        input_size=0 if input_size is None else int(input_size),
        mode=mode,
        fragment_bytes=fragment_bytes,
        params=params,
        sd_node=sd_node,
    )


def _coerce(raw: str) -> object:
    for caster in (int, float):
        try:
            return caster(raw)
        except ValueError:
            continue
    return raw


def run_command(bed: "Testbed", command: str, input_size: int | None = None):
    """Execute a paper-syntax command over a testbed's smartFAM channel.

    Returns the module's result object (e.g. an
    :class:`~repro.phoenix.runtime.PhoenixResult` or
    :class:`~repro.partition.extended.ExtendedResult`).
    """
    job = parse_command(command, input_size=input_size)
    channel = bed.cluster.channel(job.sd_node)
    invoke_params = job.invoke_params()
    if input_size is None:
        invoke_params.pop("input_size", None)

    def _go():
        return (yield channel.invoke(job.app, invoke_params))

    return bed.run(_go(), name=f"cmd:{job.app}")
