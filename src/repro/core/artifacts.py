"""Durable shuffle artifacts and the per-attempt recovery manifest.

Partial shard restart (ISSUE 9) turns every intermediate the distributed
engine materializes — map partition buckets, reduced partitions, gathered
merge inputs — into a *shuffle artifact*: a crc32-framed blob in the
attempt's shuffle directory, registered in an :class:`AttemptManifest`.
When a shard dies mid-job the engine consults the manifest and re-runs
only the work whose artifacts were lost, instead of re-planning the whole
attempt from scratch.

The frame is byte-compatible with the PR-4 spill frame
(``repro.core.outofcore._BLOCK_HEADER``): ``<length:u32><crc32:u32>``
followed by the pickled payload.  A frame that fails its length or crc
check raises :class:`~repro.errors.ShuffleArtifactError`, which the
engine treats as "rebuild the producing shard", not "the node is dead".
"""

from __future__ import annotations

import dataclasses
import pickle
import struct
import typing as _t
import zlib

from repro.errors import ShuffleArtifactError

__all__ = [
    "FRAME",
    "pack_artifact",
    "unpack_artifact",
    "corrupt_artifact",
    "MapArtifact",
    "AttemptManifest",
]

#: ``<length:u32><crc32:u32>`` — identical to the out-of-core spill frame.
FRAME = struct.Struct("<II")


def pack_artifact(obj: object) -> bytes:
    """Frame ``obj`` as ``<length><crc32><pickle>``."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def unpack_artifact(
    blob: bytes,
    path: str = "",
    shard: int | None = None,
    partition: int | None = None,
) -> object:
    """Verify and unpickle a framed artifact.

    Raises :class:`ShuffleArtifactError` on a short frame, a length
    mismatch, or a crc32 mismatch — the caller maps that back to the
    producing shard via the manifest and rebuilds it.
    """
    if len(blob) < FRAME.size:
        raise ShuffleArtifactError(
            path, shard=shard, partition=partition,
            detail=f"short frame ({len(blob)} B < {FRAME.size} B header)",
        )
    length, crc = FRAME.unpack_from(blob)
    payload = blob[FRAME.size:]
    if len(payload) != length:
        raise ShuffleArtifactError(
            path, shard=shard, partition=partition,
            detail=f"length mismatch (header {length}, payload {len(payload)})",
        )
    if zlib.crc32(payload) != crc:
        raise ShuffleArtifactError(
            path, shard=shard, partition=partition, detail="crc32 mismatch",
        )
    return pickle.loads(payload)


def corrupt_artifact(blob: bytes) -> bytes:
    """Flip one payload byte past the header (fault-injection helper)."""
    if len(blob) <= FRAME.size:
        return blob + b"\xff"
    pos = FRAME.size + (len(blob) - FRAME.size) // 2
    return blob[:pos] + bytes([blob[pos] ^ 0xFF]) + blob[pos + 1:]


@dataclasses.dataclass
class MapArtifact:
    """One shard's committed map output: where it ran and what it wrote."""

    shard_index: int
    node: str
    #: exchange kind: partition id -> {"path", "bytes", "entries"}
    partitions: dict[int, dict]
    #: map-only kind: [{"index", "path", "bytes"}, ...] global output parts
    parts: list[dict]
    entries: int


class AttemptManifest:
    """Every durable intermediate of one attempt, keyed for invalidation.

    ``received`` keys are ``(owner, shard_index, partition)`` — the dedup
    id for exchange transfers: a re-run of the (deterministic) producing
    shard regenerates byte-identical buckets, so a copy that already
    landed at its reduce owner never needs re-shipping.  ``gathered``
    keys are ``(merge_node, "p"|"part", index)`` for merge-input legs.
    """

    def __init__(self) -> None:
        self.maps: dict[int, MapArtifact] = {}
        self.received: dict[tuple, str] = {}
        #: partition -> {"path", "bytes", "entries", "node"}
        self.reduced: dict[int, dict] = {}
        self.gathered: dict[tuple, str] = {}

    # -- registration -----------------------------------------------------------

    def register_map(self, shard_index: int, node: str, result: dict) -> None:
        """Commit a ``dist_map`` result into the manifest."""
        self.maps[shard_index] = MapArtifact(
            shard_index=shard_index,
            node=node,
            partitions={
                int(p): dict(info)
                for p, info in (result.get("partitions") or {}).items()
            },
            parts=[dict(part) for part in (result.get("parts") or [])],
            entries=int(result.get("entries") or 0),
        )

    # -- invalidation -----------------------------------------------------------

    def invalidate_node(self, node: str) -> None:
        """Drop what died with ``node``'s *daemon* (kill or exclusion).

        A kill crashes the smartFAM daemon, not the SD disk: the export
        stays host-readable (``revive`` brings the daemon back over the
        same filesystem), so committed map artifacts on the dead node are
        KEPT — the exchange replays them through host-driven transfers,
        and every read re-verifies the crc32 frame.  What is dropped is
        the daemon's derived working state held there — received exchange
        copies, reduced partitions and gathered merge legs — which is
        conservatively re-derived on survivors, since reduce/merge must
        re-run on a node with a live daemon anyway.

        Copies of buckets that already reached live reduce owners are
        also kept — they were received intact, and a deterministic re-map
        regenerates identical bytes, so they stay valid (and dedupable)
        sources.
        """
        for key in [k for k in self.received if k[0] == node]:
            del self.received[key]
        for p in [p for p, info in self.reduced.items() if info["node"] == node]:
            self.invalidate_reduced(p)
        for key in [k for k in self.gathered if k[0] == node]:
            del self.gathered[key]

    def invalidate_shard(self, shard_index: int) -> None:
        """Drop a shard's map artifact and every copy derived from it."""
        art = self.maps.pop(shard_index, None)
        for key in [k for k in self.received if k[1] == shard_index]:
            del self.received[key]
        if art is not None:
            # map-only outputs gathered toward a merge node
            part_ids = {int(part["index"]) for part in art.parts}
            for key in [
                k for k in self.gathered
                if k[1] == "part" and k[2] in part_ids
            ]:
                del self.gathered[key]

    def invalidate_reduced(self, partition: int) -> None:
        """Drop one reduced partition and its gathered merge-input legs."""
        self.reduced.pop(partition, None)
        for key in [
            k for k in self.gathered if k[1] == "p" and k[2] == partition
        ]:
            del self.gathered[key]

    def invalidate_artifact(self, exc: ShuffleArtifactError) -> None:
        """Targeted invalidation for one corrupt frame.

        A corrupt reduced partition needs only that partition re-reduced;
        anything else (a map bucket, an rx copy, a map-only part) traces
        back to its producing shard, whose deterministic re-map replaces
        the whole derived family.
        """
        name = exc.path.rsplit("/", 1)[-1]
        if name.startswith("red.p") and exc.partition is not None:
            self.invalidate_reduced(int(exc.partition))
        elif exc.shard is not None:
            self.invalidate_shard(int(exc.shard))
        elif exc.partition is not None:
            self.invalidate_reduced(int(exc.partition))
        else:
            # no attribution: rebuild the attempt's durable state wholesale
            self.maps.clear()
            self.received.clear()
            self.reduced.clear()
            self.gathered.clear()

    # -- introspection ----------------------------------------------------------

    def summary(self) -> dict:
        """Counts per category (for spans and failure breakdowns)."""
        return {
            "maps": len(self.maps),
            "received": len(self.received),
            "reduced": len(self.reduced),
            "gathered": len(self.gathered),
        }
