"""Scatter-gather across multiple McSD nodes (Section VI future work).

"Perhaps the most exciting future work lies in exploring ... (2) the
parallelisms among multiple McSD smart disks."  With the dataset sharded
across ``n`` storage nodes, the host invokes the same preloaded module on
every node concurrently (each over its own smartFAM channel, against its
local shard) and merges the per-shard outputs with the application's
user merge function — MapReduce one level up.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.job import JobResult
from repro.errors import OffloadError
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.builder import BuiltCluster

__all__ = ["Shard", "ScatterJob", "ScatterGatherEngine"]


@dataclasses.dataclass(frozen=True)
class Shard:
    """One piece of a sharded dataset: which SD node holds which bytes."""

    sd_node: str
    path: str
    size: int


@dataclasses.dataclass
class ScatterJob:
    """A data-intensive job over a dataset sharded across SD nodes."""

    app: str
    shards: list[Shard]
    mode: str = "partitioned"
    fragment_bytes: int | None = None
    params: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.shards:
            raise OffloadError("scatter job needs at least one shard")

    @property
    def total_size(self) -> int:
        """Declared bytes across all shards."""
        return sum(s.size for s in self.shards)


@dataclasses.dataclass
class ScatterResult:
    """Outcome of a scatter-gather run."""

    app: str
    output: object
    elapsed: float
    shard_results: list[JobResult]

    @property
    def n_shards(self) -> int:
        """Number of shards processed."""
        return len(self.shard_results)


class ScatterGatherEngine:
    """Fan a job out over the shards' home SD nodes, gather and merge."""

    def __init__(self, cluster: "BuiltCluster"):
        self.cluster = cluster
        self.sim = cluster.sim

    def run(self, job: ScatterJob) -> Event:
        """Run ``job``; the Process value is a :class:`ScatterResult`."""
        return self.sim.spawn(self._run(job), name=f"scatter:{job.app}")

    def _run(self, job: ScatterJob) -> _t.Generator:
        sd_names = {n.name for n in self.cluster.sd_nodes}
        for shard in job.shards:
            if shard.sd_node not in sd_names:
                raise OffloadError(f"shard on unknown SD node {shard.sd_node!r}")
        t0 = self.sim.now

        def one(shard: Shard) -> _t.Generator:
            channel = self.cluster.host_channels[shard.sd_node]
            params = {
                "input_path": shard.path,
                "input_size": shard.size,
                "mode": job.mode,
                "app": dict(job.params),
            }
            if job.mode == "partitioned":
                params["fragment_bytes"] = job.fragment_bytes
            s0 = self.sim.now
            result = yield channel.invoke(job.app, params)
            return JobResult(
                name=f"{job.app}@{shard.sd_node}",
                where=shard.sd_node,
                elapsed=self.sim.now - s0,
                output=getattr(result, "output", result),
                offloaded=True,
            )

        procs = [
            self.sim.spawn(one(shard), name=f"scatter:{job.app}:{shard.sd_node}")
            for shard in job.shards
        ]
        gathered = yield self.sim.all_of(procs)
        shard_results = [gathered[p] for p in procs]

        # Gather: merge per-shard outputs with the app's own merge function
        # (the same user code Fig 6 requires), charged to the host CPU.
        spec = _spec_for_app(job.app, job.params)
        merge_ops = spec.profile.merge_ops(job.total_size)
        if len(shard_results) > 1 and merge_ops > 0:
            yield self.cluster.host.cpu.submit(merge_ops, name=f"{job.app}.gather")
        outputs = [r.output for r in shard_results]
        if len(outputs) == 1:
            merged = outputs[0]
        elif spec.merge_fn is not None:
            merged = spec.merge_fn(outputs, dict(job.params))
        else:
            merged = outputs
        return ScatterResult(
            app=job.app,
            output=merged,
            elapsed=self.sim.now - t0,
            shard_results=shard_results,
        )


def _spec_for_app(app: str, params: dict):
    from repro.apps import spec_for_app

    return spec_for_app(app, params)
