"""Running one application over a *set of files* (the paper's WC input).

"[Word Count] counts the frequency of occurrence for each word in a set
of files" (Section V-A).  Each file is an outer partition — file
boundaries are record boundaries by construction — so the runner streams
the files through the partition-enabled runtime one after another on the
SD node and folds their outputs with the application's merge function,
charging the merge to the node exactly like Fig 6's final stage.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import OffloadError
from repro.phoenix.api import InputSpec, MapReduceSpec
from repro.phoenix.runtime import JobStats
from repro.partition.extended import ExtendedPhoenixRuntime, ExtendedResult
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node

__all__ = ["FileSetResult", "run_fileset"]


@dataclasses.dataclass
class FileSetResult:
    """Outcome of a multi-file run."""

    output: object
    per_file: list[ExtendedResult]
    elapsed: float

    @property
    def n_files(self) -> int:
        """Files processed."""
        return len(self.per_file)

    @property
    def total_bytes(self) -> int:
        """Declared bytes across the set."""
        return sum(
            sum(s.input_bytes for s in r.fragment_stats) for r in self.per_file
        )


def run_fileset(
    node: "Node",
    spec: MapReduceSpec,
    files: _t.Sequence[InputSpec],
    fragment_bytes: int | None = None,
    phoenix_cfg=None,
) -> Event:
    """Process every file on ``node`` and merge; Process value is a
    :class:`FileSetResult`."""
    if not files:
        raise OffloadError("file set is empty")
    if spec.merge_fn is None:
        raise OffloadError(f"{spec.name}: multi-file runs need a merge_fn")
    sim = node.sim
    ext = ExtendedPhoenixRuntime(node, phoenix_cfg)

    def _run() -> _t.Generator:
        t0 = sim.now
        per_file: list[ExtendedResult] = []
        outputs: list[object] = []
        for inp in files:
            res: ExtendedResult = yield ext.run(
                spec, inp, fragment_bytes=fragment_bytes, write_output=False
            )
            per_file.append(res)
            outputs.append(res.output)
        total = sum(inp.size for inp in files)
        merge_ops = spec.profile.merge_ops(total)
        if len(outputs) > 1 and merge_ops > 0:
            yield node.cpu.submit(merge_ops, name=f"{spec.name}.fileset-merge")
        output = spec.merge_fn(outputs, files[0].params) if len(outputs) > 1 else outputs[0]
        return FileSetResult(output=output, per_file=per_file, elapsed=sim.now - t0)

    return sim.spawn(_run(), name=f"fileset:{spec.name}@{node.name}")
