"""CSV export of experiment series (for external plotting).

``tools/run_experiments.py --csv results/`` drops one file per figure so
the curves can be re-plotted with any tool; cells that the paper reports
as unsupported are empty.
"""

from __future__ import annotations

import csv
import os
import typing as _t

from repro.analysis.metrics import Series

__all__ = ["write_series_csv", "write_rows_csv"]


def write_series_csv(
    path: str,
    series: _t.Sequence[Series],
    x_labels: _t.Sequence[str],
    x_header: str = "size",
) -> str:
    """Write figure series as columns; returns the path."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow([x_header] + [s.label for s in series])
        for i, xl in enumerate(x_labels):
            row: list[object] = [xl]
            for s in series:
                y = s.ys[i] if i < len(s.ys) else None
                row.append("" if y is None else f"{y:.6g}")
            writer.writerow(row)
    return path


def write_rows_csv(path: str, headers: _t.Sequence[str], rows: _t.Sequence[_t.Sequence[object]]) -> str:
    """Write a plain table; None cells become empty strings."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(["" if c is None else c for c in row])
    return path
