"""Speedup computation and series assembly.

The paper "defined the performance speedup to be the ratio of the elapsed
time without the optimization technique to that with the McSD technique"
(Section V-C) — i.e. ``speedup = t_baseline / t_optimized``; larger is
better and 1.0 means parity.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

__all__ = ["speedup", "Series", "speedup_series", "geometric_mean"]


def speedup(t_baseline: float | None, t_optimized: float | None) -> float | None:
    """t_baseline / t_optimized; None if either side is unsupported (OOM)."""
    if t_baseline is None or t_optimized is None:
        return None
    if t_optimized <= 0:
        raise ValueError(f"non-positive optimized time {t_optimized}")
    return t_baseline / t_optimized


@dataclasses.dataclass
class Series:
    """One plotted line: label + (x, y) points; y may be None (unsupported)."""

    label: str
    xs: list[float]
    ys: list[float | None]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must align")

    def defined(self) -> list[tuple[float, float]]:
        """Points where the system actually ran."""
        return [(x, y) for x, y in zip(self.xs, self.ys) if y is not None]

    @property
    def max_y(self) -> float:
        """Largest defined value (0 if empty)."""
        vals = [y for y in self.ys if y is not None]
        return max(vals) if vals else 0.0

    def mean(self) -> float:
        """Arithmetic mean of defined values (0 if none)."""
        vals = [y for y in self.ys if y is not None]
        return sum(vals) / len(vals) if vals else 0.0

    def is_monotone_increasing(self, tol: float = 1e-9) -> bool:
        """True if defined values never decrease (growth-curve check)."""
        vals = [y for y in self.ys if y is not None]
        return all(b >= a - tol for a, b in zip(vals, vals[1:]))

    def linearity_ratio(self) -> float | None:
        """max over defined points of y / (slope-from-first-point * x).

        ~1.0 means linear growth through the first point; >> 1 means
        superlinear (the thrash signature on the Fig 8(b) curves).
        """
        pts = [(x, y) for x, y in self.defined() if x > 0 and y > 0]
        if len(pts) < 2:
            return None
        x0, y0 = pts[0]
        slope = y0 / x0
        return max(y / (slope * x) for x, y in pts)


def speedup_series(
    label: str,
    xs: _t.Sequence[float],
    baseline: _t.Sequence[float | None],
    optimized: _t.Sequence[float | None],
) -> Series:
    """Pointwise speedup series with None propagation."""
    ys = [speedup(b, o) for b, o in zip(baseline, optimized)]
    return Series(label=label, xs=list(xs), ys=ys)


def geometric_mean(values: _t.Iterable[float]) -> float:
    """Geometric mean (for aggregating speedups)."""
    vals = [v for v in values if v is not None]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
