"""Result assembly and rendering for the evaluation harness."""

from repro.analysis.metrics import Series, speedup, speedup_series
from repro.analysis.csvout import write_rows_csv, write_series_csv
from repro.analysis.report import (
    banner,
    render_ascii_chart,
    render_series_table,
    render_table,
)

__all__ = [
    "speedup",
    "speedup_series",
    "Series",
    "render_table",
    "render_series_table",
    "render_ascii_chart",
    "banner",
    "write_series_csv",
    "write_rows_csv",
]
