"""Plain-text rendering of tables and figure series for the bench harness.

Every benchmark prints the same rows/series the paper's table or figure
reports, so ``pytest benchmarks/ --benchmark-only`` output can be read
side-by-side with the paper.
"""

from __future__ import annotations

import typing as _t

from repro.analysis.metrics import Series

__all__ = ["render_table", "render_series_table", "render_ascii_chart", "banner", "fmt_cell"]


def fmt_cell(value: object) -> str:
    """Human cell formatting: floats to 2-3 significant places, None = 'n/s'."""
    if value is None:
        return "n/s"  # not supported (the paper's memory-overflow cells)
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: _t.Sequence[str],
    rows: _t.Sequence[_t.Sequence[object]],
    title: str = "",
) -> str:
    """A fixed-width text table."""
    cells = [[fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(parts: _t.Sequence[str]) -> str:
        return "  ".join(p.rjust(w) for p, w in zip(parts, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in cells:
        out.append(line(row))
    return "\n".join(out)


def render_series_table(
    series: _t.Sequence[Series],
    x_labels: _t.Sequence[str],
    title: str = "",
    x_header: str = "size",
) -> str:
    """Figure data as a table: one column per series, one row per x."""
    headers = [x_header] + [s.label for s in series]
    rows = []
    for i, xl in enumerate(x_labels):
        row: list[object] = [xl]
        for s in series:
            row.append(s.ys[i] if i < len(s.ys) else None)
        rows.append(row)
    return render_table(headers, rows, title=title)


def banner(text: str, width: int = 72) -> str:
    """A section banner for bench output."""
    bar = "=" * width
    return f"\n{bar}\n{text}\n{bar}"


def render_ascii_chart(
    series: _t.Sequence[Series],
    width: int = 56,
    height: int = 12,
    y_label: str = "",
) -> str:
    """Plot series as an ASCII scatter/line chart (one glyph per series).

    Gives bench output and the CLI a visual read of the growth curves
    without any plotting dependency.  Undefined points (``None`` — the
    paper's "not supported" cells) simply do not appear.
    """
    glyphs = "o*x+#@%&"
    pts = [(s, [(x, y) for x, y in s.defined()]) for s in series]
    all_pts = [p for _, ps in pts for p in ps]
    if not all_pts:
        return "(no data)"
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1
    grid = [[" "] * width for _ in range(height)]
    for si, (s, ps) in enumerate(pts):
        g = glyphs[si % len(glyphs)]
        for x, y in ps:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = height - 1 - int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[row][col] = g
    lines = []
    for i, row in enumerate(grid):
        label = f"{y_hi:8.1f} |" if i == 0 else ("     0.0 |" if i == height - 1 else "         |")
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(f"          {x_lo:<10.0f}{'':^{max(0, width - 20)}}{x_hi:>10.0f}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={s.label}" for i, s in enumerate(series)
    )
    header = f"  [{y_label}]" if y_label else ""
    return header + "\n" + "\n".join(lines) + "\n  " + legend
