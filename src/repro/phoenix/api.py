"""The Phoenix programming API: job specs, cost profiles, input descriptors.

A :class:`MapReduceSpec` is what a programmer writes (Section IV): the
``map``/``reduce`` callbacks plus, for the extended two-stage model of
Fig 6, a ``merge`` callback combining per-fragment outputs.  Everything
else — splitting, worker scheduling, sorting, memory management — belongs
to the runtime.

A :class:`CostProfile` translates *declared* data sizes into CPU demand
(abstract ops; one op = one cycle on a reference core) and memory
footprint.  Profiles for the paper's three benchmarks live in
:mod:`repro.apps`.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import WorkloadError

__all__ = ["Emit", "CostProfile", "MapReduceSpec", "InputSpec"]

#: the emit callback handed to map functions
Emit = _t.Callable[[object, object], None]


class CostProfile:
    """CPU/memory demand model for one application.

    The default implementation is linear in bytes, which fits scan-shaped
    applications (Word Count, String Match).  Compute-bound applications
    (Matrix Multiplication) subclass and override the ``*_ops`` methods.

    Parameters are ops per *declared* byte on the reference core
    (1 op = 1 cycle at 1 GHz => ops/byte 30 on a 2 GHz core ~ 66 MB/s).
    """

    def __init__(
        self,
        name: str,
        map_ops_per_byte: float,
        sort_ops_per_byte: float = 0.0,
        reduce_ops_per_byte: float = 0.0,
        merge_ops_per_byte: float = 0.0,
        footprint_factor: float = 2.0,
        seq_footprint_factor: float = 1.0,
        intermediate_ratio: float = 1.0,
        output_ratio: float = 0.05,
        setup_ops: float = 2.0e7,
    ):
        if map_ops_per_byte < 0 or footprint_factor <= 0:
            raise WorkloadError(f"bad cost profile for {name}")
        self.name = name
        self.map_ops_per_byte = map_ops_per_byte
        self.sort_ops_per_byte = sort_ops_per_byte
        self.reduce_ops_per_byte = reduce_ops_per_byte
        self.merge_ops_per_byte = merge_ops_per_byte
        #: working-set size as a multiple of input (paper: WC ~3x, SM ~2x)
        self.footprint_factor = footprint_factor
        #: footprint of the *sequential, streaming* implementation
        self.seq_footprint_factor = seq_footprint_factor
        #: intermediate (map output) bytes per input byte
        self.intermediate_ratio = intermediate_ratio
        #: final output bytes per input byte
        self.output_ratio = output_ratio
        #: fixed per-job runtime setup cost (thread pool, buffers)
        self.setup_ops = setup_ops

    # -- stage demand ------------------------------------------------------

    def map_ops(self, input_bytes: int) -> float:
        """Total map-phase ops for ``input_bytes`` of input."""
        return self.map_ops_per_byte * input_bytes

    def sort_ops(self, input_bytes: int) -> float:
        """Total sort-phase ops."""
        return self.sort_ops_per_byte * self.intermediate_bytes(input_bytes)

    def reduce_ops(self, input_bytes: int) -> float:
        """Total reduce-phase ops."""
        return self.reduce_ops_per_byte * self.intermediate_bytes(input_bytes)

    def merge_ops(self, input_bytes: int) -> float:
        """Single-threaded final-merge ops."""
        return self.merge_ops_per_byte * self.intermediate_bytes(input_bytes)

    def total_ops(self, input_bytes: int) -> float:
        """All parallelizable + serial ops (the sequential implementation
        performs the same algorithmic work, minus runtime setup)."""
        return (
            self.map_ops(input_bytes)
            + self.sort_ops(input_bytes)
            + self.reduce_ops(input_bytes)
            + self.merge_ops(input_bytes)
        )

    def sequential_ops(self, input_bytes: int) -> float:
        """Ops of the plain sequential implementation."""
        return self.total_ops(input_bytes)

    # -- data sizes ----------------------------------------------------------

    def intermediate_bytes(self, input_bytes: int) -> int:
        """Declared size of the map output."""
        return int(self.intermediate_ratio * input_bytes)

    def output_bytes(self, input_bytes: int) -> int:
        """Declared size of the final output."""
        return int(self.output_ratio * input_bytes)

    def footprint(self, input_bytes: int) -> int:
        """Working set of the (original) parallel runtime."""
        return int(self.footprint_factor * input_bytes)

    def seq_footprint(self, input_bytes: int) -> int:
        """Working set of the sequential streaming implementation."""
        return int(self.seq_footprint_factor * input_bytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CostProfile {self.name} map={self.map_ops_per_byte} ops/B>"


@dataclasses.dataclass
class InputSpec:
    """One input to a MapReduce job.

    ``path`` is resolved on the executing node (may cross an NFS mount);
    ``size`` is the declared byte count charged to disk/network/CPU;
    ``payload`` is the real content the callbacks run on (may be ``None``
    for pure cost-model runs, or much smaller than ``size``).
    ``params`` carries app-specific parameters (e.g. the SM keys).
    """

    path: str
    size: int
    payload: object = None
    params: dict = dataclasses.field(default_factory=dict)
    #: byte offset of this slice inside its parent input (partitioning)
    offset: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise WorkloadError(f"negative input size {self.size}")

    @property
    def payload_bytes(self) -> bytes | None:
        """The payload if it is raw bytes, else None."""
        return self.payload if isinstance(self.payload, (bytes, bytearray)) else None


@dataclasses.dataclass
class MapReduceSpec:
    """A user program in the McSD/Phoenix programming model.

    ``map_fn(data, emit, params)`` consumes one split of the input and
    emits intermediate pairs.  ``reduce_fn(key, values, params)`` folds all
    values of one key.  ``combine_fn(old, new)``, when given, pre-combines
    values per key inside each map task (Phoenix's combiner; keeps real
    intermediate data proportional to distinct keys, like the C original).
    ``merge_fn(outputs, params)`` combines per-fragment outputs in the
    extended two-stage model (Fig 6) and is *user-provided*, exactly as the
    paper specifies ("the Merge function needs to be programmed by the
    user", Section IV-C).
    ``split_fn(payload, n)`` splits a payload into n map inputs; the
    default splits bytes on line boundaries and lists evenly.
    """

    name: str
    map_fn: _t.Callable[[object, Emit, dict], None]
    profile: CostProfile
    reduce_fn: _t.Callable[[object, list, dict], object] | None = None
    combine_fn: _t.Callable[[object, object], object] | None = None
    merge_fn: _t.Callable[[list, dict], object] | None = None
    split_fn: _t.Callable[[object, int], list] | None = None
    needs_sort: bool = True
    #: sort final output by descending value (word count prints by frequency)
    sort_output: bool = False
    #: record delimiter for the integrity check (Fig 7)
    delimiters: bytes = b" \t\n\r"

    def split(self, payload: object, n_splits: int) -> list:
        """Split ``payload`` into at most ``n_splits`` map inputs."""
        if self.split_fn is not None:
            return self.split_fn(payload, n_splits)
        return default_split(payload, n_splits)


def default_split(payload: object, n_splits: int) -> list:
    """Even split: bytes on line boundaries, sequences by slices."""
    if payload is None:
        return [None] * n_splits
    if isinstance(payload, (bytes, bytearray)):
        data = bytes(payload)
        if not data:
            return [b""] * n_splits
        chunks: list[bytes] = []
        approx = max(1, len(data) // n_splits)
        start = 0
        while start < len(data) and len(chunks) < n_splits - 1:
            end = min(len(data), start + approx)
            # advance to the next newline/space so no word is split
            while end < len(data) and data[end : end + 1] not in (b" ", b"\n", b"\t"):
                end += 1
            chunks.append(data[start:end])
            start = end
        chunks.append(data[start:])
        while len(chunks) < n_splits:
            chunks.append(b"")
        return chunks
    if isinstance(payload, _t.Sequence):
        seq = list(payload)
        k, m = divmod(len(seq), n_splits)
        out, idx = [], 0
        for i in range(n_splits):
            take = k + (1 if i < m else 0)
            out.append(seq[idx : idx + take])
            idx += take
        return out
    raise WorkloadError(
        f"cannot default-split payload of type {type(payload).__name__}; "
        "provide split_fn"
    )
