"""A Phoenix-style MapReduce runtime for (simulated) multicore nodes.

Phoenix [Ranger et al., HPCA'07] is the shared-memory MapReduce
implementation the paper embeds in McSD storage nodes (Section II-C).
This package reproduces its architecture:

* :mod:`repro.phoenix.api` — the programming API: users supply ``map``,
  ``reduce`` and (for the partition extension) ``merge`` callbacks plus a
  cost profile; the runtime owns splitting, scheduling and concurrency.
* :mod:`repro.phoenix.scheduler` — dynamic task scheduling over a worker
  pool (one worker per core).
* :mod:`repro.phoenix.sort` — the real intermediate group/sort machinery.
* :mod:`repro.phoenix.memory` — the out-of-core rule: the original runtime
  cannot support inputs beyond a fraction of node memory (Section IV-B).
* :mod:`repro.phoenix.runtime` — the engine: split -> map -> sort ->
  reduce -> merge on a node's simulated cores, with *real* execution of
  the user callbacks over the dataset payload.

Execution is *dual*: user callbacks run for real over the (small,
materialized) payload, while elapsed time is charged against the declared
data size through the cost profile — see DESIGN.md §2 for why.
"""

from repro.phoenix.api import CostProfile, InputSpec, MapReduceSpec
from repro.phoenix.memory import footprint_bytes, max_supported_input
from repro.phoenix.runtime import JobStats, PhoenixResult, PhoenixRuntime

__all__ = [
    "MapReduceSpec",
    "CostProfile",
    "InputSpec",
    "PhoenixRuntime",
    "PhoenixResult",
    "JobStats",
    "footprint_bytes",
    "max_supported_input",
]
