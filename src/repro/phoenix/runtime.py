"""The Phoenix engine: split -> map -> sort -> reduce -> merge (Fig 1).

Workers are simulated processes pinned to the node's PS-CPU; the user's
callbacks run for real over the payload; stage durations come from the
cost profile applied to the *declared* input size.  Memory is reserved for
the job's working set up front, so an oversized job degrades (thrash) or
kills (OOM) the node exactly the way Sections IV-B/V-B describe.

``mode="parallel"`` is the original Phoenix; ``mode="sequential"`` is the
plain single-threaded streaming implementation the paper uses as its
baseline ("the sequential approach") — same algorithmic work, one core,
no MapReduce working set.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.config import PhoenixConfig
from repro.errors import PhoenixError
from repro.phoenix.api import InputSpec, MapReduceSpec
from repro.phoenix.memory import check_supportable
from repro.phoenix.scheduler import Task, run_task_pool
from repro.phoenix.sort import (
    Combiner,
    KeyCache,
    decorate_sorted,
    merge_combiner_maps,
    merge_entry_runs,
    partition_decorated,
    sort_decorated_by_value_desc,
    undecorate,
)
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node

__all__ = ["JobStats", "PhoenixResult", "PhoenixRuntime"]


@dataclasses.dataclass
class JobStats:
    """Timing/size accounting of one job run.

    The ``*_time`` fields are a materialized view over the job's span
    tree: each phase of the runtime opens a span (``phoenix.read``,
    ``phoenix.map``, ...) and the field is filled from that span's
    simulated duration when it closes.  The root ``phoenix.job`` span is
    attached as :attr:`span` so callers can walk the full tree (including
    sub-phase children like ``phoenix.split``).
    """

    app: str
    mode: str
    node: str
    input_bytes: int
    started_at: float = 0.0
    finished_at: float = 0.0
    read_time: float = 0.0
    map_time: float = 0.0
    sort_time: float = 0.0
    reduce_time: float = 0.0
    merge_time: float = 0.0
    write_time: float = 0.0
    map_tasks: int = 0
    emitted_pairs: int = 0
    footprint: int = 0
    peak_pressure: float = 0.0
    #: the root phoenix.job span (phase spans are its children)
    span: object | None = dataclasses.field(default=None, repr=False, compare=False)

    @property
    def elapsed(self) -> float:
        """Wall-clock (simulated) duration of the whole job."""
        return self.finished_at - self.started_at

    def phases(self) -> dict[str, float]:
        """Phase name -> simulated seconds, read from the span tree.

        Falls back to the materialized ``*_time`` fields when the span is
        absent or detached from its store (stats that crossed a pickle
        boundary, e.g. through the smartFAM log file).
        """
        if self.span is not None:
            by_child = {child.name: child.dur for child in self.span.children()}
            if by_child:
                return by_child
        return {
            f"phoenix.{name}": value
            for name, value in (
                ("read", self.read_time),
                ("map", self.map_time),
                ("sort", self.sort_time),
                ("reduce", self.reduce_time),
                ("merge", self.merge_time),
                ("write", self.write_time),
            )
            if value > 0
        }


@dataclasses.dataclass
class PhoenixResult:
    """What a job returns: real output + accounting."""

    output: object
    stats: JobStats


class PhoenixRuntime:
    """The MapReduce engine bound to one node."""

    def __init__(self, node: "Node", cfg: PhoenixConfig | None = None):
        self.node = node
        self.sim = node.sim
        self.cfg = cfg or PhoenixConfig()

    # -- public entry points ------------------------------------------------

    def run(
        self,
        spec: MapReduceSpec,
        input_spec: InputSpec,
        mode: str = "parallel",
        enforce_memory_rule: bool = True,
        write_output: bool = True,
        output_path: str | None = None,
    ) -> Event:
        """Run one MapReduce job; Process value is a :class:`PhoenixResult`.

        ``enforce_memory_rule`` applies the original runtime's input-size
        limit (disabled per fragment checks are still applied by the
        extended runtime itself).
        """
        if mode == "parallel":
            gen = self._run_parallel(
                spec, input_spec, enforce_memory_rule, write_output, output_path
            )
        elif mode == "sequential":
            gen = self._run_sequential(spec, input_spec, write_output, output_path)
        else:
            raise PhoenixError(f"unknown mode {mode!r}")
        return self.sim.spawn(gen, name=f"phoenix:{spec.name}@{self.node.name}")

    # -- parallel (the original Phoenix) -----------------------------------------

    def _run_parallel(
        self,
        spec: MapReduceSpec,
        inp: InputSpec,
        enforce_memory_rule: bool,
        write_output: bool,
        output_path: str | None,
    ) -> _t.Generator:
        node, sim, profile = self.node, self.sim, spec.profile
        obs = sim.obs
        stats = JobStats(
            app=spec.name,
            mode="parallel",
            node=node.name,
            input_bytes=inp.size,
            started_at=sim.now,
        )
        # Phase spans are forced: the job needs them for its own JobStats
        # accounting, and a handful per job is well under the noise floor.
        with obs.span(
            "phoenix.job",
            cat="phoenix",
            track=node.name,
            force=True,
            app=spec.name,
            mode="parallel",
            input_bytes=inp.size,
        ) as job_sp:
            stats.span = job_sp
            if enforce_memory_rule:
                check_supportable(
                    spec.name, inp.size, node.memory.capacity, self.cfg, profile
                )
            stats.footprint = profile.footprint(inp.size)
            alloc = node.memory.alloc(stats.footprint, owner=spec.name)
            try:
                stats.peak_pressure = node.memory.pressure
                cores = node.cpu.cores

                # ---- read input (disk or NFS charge for the declared bytes).
                # Phoenix memory-maps its input, so reading streams concurrently
                # with the map phase; only a payload-less input forces a serial
                # read (we need the bytes before we can split them).
                with obs.span(
                    "phoenix.read", cat="phoenix", track=node.name, force=True
                ) as sp:
                    fs, rel = node.resolve_fs(inp.path)
                    read_proc = fs.read(rel, nbytes=inp.size, offset=inp.offset)
                    if inp.payload is not None:
                        payload = inp.payload
                    else:
                        payload = yield read_proc
                        read_proc = None
                stats.read_time = sp.dur

                # ---- map stage: dynamic pool, tasks_per_core x cores splits
                with obs.span(
                    "phoenix.map", cat="phoenix", track=node.name, force=True
                ) as sp:
                    with obs.span(
                        "phoenix.split", cat="phoenix", track=node.name, force=True
                    ) as split_sp:
                        n_tasks = max(1, self.cfg.tasks_per_core * cores)
                        chunks = spec.split(payload, n_tasks)
                        split_sp.set(chunks=len(chunks))
                    stats.map_tasks = len(chunks)
                    ops_total = profile.map_ops(inp.size) + profile.setup_ops
                    weights = _chunk_weights(chunks)
                    combiners: list[Combiner] = []

                    def make_map(chunk: object) -> _t.Callable[[], object]:
                        def _run() -> object:
                            comb = Combiner(spec.combine_fn)
                            if chunk is not None and _nonempty(chunk):
                                spec.map_fn(chunk, comb.emit, inp.params)
                            combiners.append(comb)
                            return None

                        return _run

                    tasks = [
                        Task(
                            name=f"map{i}",
                            ops=ops_total * weights[i],
                            compute=make_map(chunks[i]),
                        )
                        for i in range(len(chunks))
                    ]
                    pool = run_task_pool(
                        sim, node.cpu, tasks, cores, label=f"{spec.name}.map"
                    )
                    if read_proc is not None:
                        yield sim.all_of([pool, read_proc])
                    else:
                        yield pool
                    stats.emitted_pairs = sum(c.emitted for c in combiners)
                    sp.set(tasks=len(tasks), emitted=stats.emitted_pairs)
                stats.map_time = sp.dur

                # ---- sort stage (cost parallelized across cores; the real
                #      data work is one dict-merge of the combiner maps plus a
                #      single decorate-sort computing each key's repr once)
                entries: list | None = None
                if spec.needs_sort:
                    with obs.span(
                        "phoenix.sort", cat="phoenix", track=node.name, force=True
                    ) as sp:
                        sort_total = profile.sort_ops(inp.size)
                        sort_tasks = [
                            Task(name=f"sort{i}", ops=sort_total / cores)
                            for i in range(cores)
                        ]
                        yield run_task_pool(
                            sim, node.cpu, sort_tasks, cores, label=f"{spec.name}.sort"
                        )
                        entries = decorate_sorted(
                            merge_combiner_maps(
                                (c.data for c in combiners), spec.combine_fn
                            )
                        )
                    stats.sort_time = sp.dur

                # ---- reduce stage: buckets inherit the sorted order, so the
                #      per-bucket outputs are sorted runs merged below
                reduced_parts: list[list] | None = None
                if spec.reduce_fn is not None:
                    with obs.span(
                        "phoenix.reduce", cat="phoenix", track=node.name, force=True
                    ) as sp:
                        if entries is None:
                            entries = decorate_sorted(
                                merge_combiner_maps(
                                    (c.data for c in combiners), spec.combine_fn
                                )
                            )
                        buckets = partition_decorated(entries, cores)
                        total_items = max(1, sum(len(b) for b in buckets))
                        reduce_total = profile.reduce_ops(inp.size)
                        reduced_parts = [[] for _ in buckets]

                        def make_reduce(bidx: int) -> _t.Callable[[], object]:
                            def _run() -> object:
                                reduced_parts[bidx] = [
                                    (skey, key, spec.reduce_fn(key, values, inp.params))
                                    for skey, key, values in buckets[bidx]
                                ]
                                return None

                            return _run

                        rtasks = [
                            Task(
                                name=f"reduce{i}",
                                ops=reduce_total * (len(buckets[i]) / total_items),
                                compute=make_reduce(i),
                            )
                            for i in range(len(buckets))
                        ]
                        yield run_task_pool(
                            sim, node.cpu, rtasks, cores, label=f"{spec.name}.reduce"
                        )
                        sp.set(buckets=len(buckets))
                    stats.reduce_time = sp.dur

                # ---- final merge (single-threaded, like Phoenix's merge phase)
                with obs.span(
                    "phoenix.merge", cat="phoenix", track=node.name, force=True
                ) as sp:
                    merge_ops = profile.merge_ops(inp.size)
                    if merge_ops > 0:
                        yield node.cpu.submit(merge_ops, name=f"{spec.name}.merge")
                    if reduced_parts is not None:
                        if spec.sort_output:
                            # the value sort is a total order (distinct sort
                            # keys break ties); the key-order merge would be
                            # wasted work
                            out_entries: _t.Iterable = (
                                e for part in reduced_parts for e in part
                            )
                        else:
                            out_entries = merge_entry_runs(reduced_parts)
                    elif entries is not None:
                        out_entries = entries
                    else:
                        # no sort, no reduce: per-worker sorted runs in worker
                        # order; the cache holds cross-worker keys to one repr
                        cache = KeyCache()
                        out_entries = [
                            e for c in combiners for e in decorate_sorted(c.data, cache)
                        ]
                    if spec.sort_output:
                        out_entries = sort_decorated_by_value_desc(out_entries)
                    output: object = undecorate(out_entries)
                stats.merge_time = sp.dur

                # ---- write output
                if write_output:
                    with obs.span(
                        "phoenix.write", cat="phoenix", track=node.name, force=True
                    ) as sp:
                        opath = output_path or f"{inp.path}.out"
                        ofs, orel = node.resolve_fs(opath)
                        yield ofs.write(orel, size=profile.output_bytes(inp.size))
                    stats.write_time = sp.dur
            finally:
                alloc.free()
            stats.finished_at = sim.now
            job_sp.set(map_tasks=stats.map_tasks, emitted=stats.emitted_pairs)
        return PhoenixResult(output=output, stats=stats)

    # -- sequential baseline --------------------------------------------------------

    def _run_sequential(
        self,
        spec: MapReduceSpec,
        inp: InputSpec,
        write_output: bool,
        output_path: str | None,
    ) -> _t.Generator:
        node, sim, profile = self.node, self.sim, spec.profile
        obs = sim.obs
        stats = JobStats(
            app=spec.name,
            mode="sequential",
            node=node.name,
            input_bytes=inp.size,
            started_at=sim.now,
        )
        with obs.span(
            "phoenix.job",
            cat="phoenix",
            track=node.name,
            force=True,
            app=spec.name,
            mode="sequential",
            input_bytes=inp.size,
        ) as job_sp:
            stats.span = job_sp
            stats.footprint = profile.seq_footprint(inp.size)
            alloc = node.memory.alloc(stats.footprint, owner=f"{spec.name}.seq")
            try:
                stats.peak_pressure = node.memory.pressure
                # The sequential implementation is a streaming scan: reading
                # overlaps computing (unless the payload must come from disk).
                with obs.span(
                    "phoenix.read", cat="phoenix", track=node.name, force=True
                ) as sp:
                    fs, rel = node.resolve_fs(inp.path)
                    read_proc = fs.read(rel, nbytes=inp.size, offset=inp.offset)
                    if inp.payload is not None:
                        payload = inp.payload
                    else:
                        payload = yield read_proc
                        read_proc = None
                stats.read_time = sp.dur

                with obs.span(
                    "phoenix.map", cat="phoenix", track=node.name, force=True,
                    sequential=True,
                ) as sp:
                    compute = node.cpu.submit(
                        profile.sequential_ops(inp.size), name=f"{spec.name}.seq"
                    )
                    if read_proc is not None:
                        yield sim.all_of([compute, read_proc])
                    else:
                        yield compute
                    output = _sequential_compute(spec, payload, inp.params)
                stats.map_time = sp.dur
                stats.map_tasks = 1

                if write_output:
                    with obs.span(
                        "phoenix.write", cat="phoenix", track=node.name, force=True
                    ) as sp:
                        opath = output_path or f"{inp.path}.out"
                        ofs, orel = node.resolve_fs(opath)
                        yield ofs.write(orel, size=profile.output_bytes(inp.size))
                    stats.write_time = sp.dur
            finally:
                alloc.free()
            stats.finished_at = sim.now
        return PhoenixResult(output=output, stats=stats)


def _sequential_compute(spec: MapReduceSpec, payload: object, params: dict) -> object:
    """Run the whole algorithm single-threaded over the real payload."""
    comb = Combiner(spec.combine_fn)
    if payload is not None and _nonempty(payload):
        spec.map_fn(payload, comb.emit, params)
    if spec.reduce_fn is not None or spec.needs_sort:
        entries = decorate_sorted(merge_combiner_maps([comb.data], spec.combine_fn))
        if spec.reduce_fn is not None:
            entries = [
                (skey, key, spec.reduce_fn(key, values, params))
                for skey, key, values in entries
            ]
    else:
        entries = decorate_sorted(comb.data)
    if spec.sort_output:
        entries = sort_decorated_by_value_desc(entries)
    return undecorate(entries)


def _chunk_weights(chunks: list) -> list[float]:
    """Fraction of total work per chunk (by real size when available)."""
    sizes = []
    for c in chunks:
        if isinstance(c, (bytes, bytearray, str)) or hasattr(c, "__len__"):
            try:
                sizes.append(len(c))  # type: ignore[arg-type]
                continue
            except TypeError:
                pass
        sizes.append(1)
    total = sum(sizes)
    if total <= 0:
        return [1.0 / len(chunks)] * len(chunks) if chunks else []
    return [s / total for s in sizes]


def _nonempty(payload: object) -> bool:
    try:
        return len(payload) > 0  # type: ignore[arg-type]
    except TypeError:
        return True
