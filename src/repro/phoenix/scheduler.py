"""Dynamic task scheduling for Phoenix workers.

Phoenix "automatically manages thread creation [and] dynamic task
scheduling" (Section I).  The pool is a shared queue: one worker process
per core pulls tasks until the queue drains, so stragglers self-balance —
a worker finishing a small split immediately grabs the next.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

from repro.sim.events import Event
from repro.sim.kernel import Simulator

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.cpu import ProcessorSharingCPU

__all__ = ["Task", "run_task_pool"]


@dataclasses.dataclass
class Task:
    """One schedulable unit: CPU demand + an optional real computation."""

    name: str
    ops: float
    #: runs *after* the CPU charge completes; returns the task's result
    compute: _t.Callable[[], object] | None = None


def run_task_pool(
    sim: Simulator,
    cpu: "ProcessorSharingCPU",
    tasks: _t.Sequence[Task],
    n_workers: int,
    label: str = "pool",
) -> Event:
    """Run ``tasks`` on ``n_workers`` workers over ``cpu``.

    Returns a Process whose value is the list of task results in *task
    order* (not completion order).  A raising ``compute`` fails the pool.
    """
    results: list[object] = [None] * len(tasks)
    # deque: workers pull from the head in O(1) (a list's pop(0) is O(n))
    queue: collections.deque[int] = collections.deque(range(len(tasks)))

    def worker(wid: int) -> _t.Generator:
        while queue:
            idx = queue.popleft()
            task = tasks[idx]
            yield cpu.submit(task.ops, name=f"{label}.{task.name}@w{wid}")
            if task.compute is not None:
                results[idx] = task.compute()

    def pool() -> _t.Generator:
        if not tasks:
            return []
        workers = [
            sim.spawn(worker(w), name=f"{label}.worker{w}")
            for w in range(max(1, n_workers))
        ]
        yield sim.all_of(workers)
        return results

    return sim.spawn(pool(), name=label)
