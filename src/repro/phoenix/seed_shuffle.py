"""The seed PR's shuffle, frozen as a reference implementation.

PR 1 replaced the intermediate-data path (flatten → per-worker ``repr``
sort → full-re-sort grouping → byte-at-a-time FNV-1a partitioning → full
re-sort merge) with the sort-once/merge-after pipeline in
:mod:`repro.phoenix.sort`.  This module keeps the *original* dataflow,
verbatim, for two purposes:

- ``tools/perf_gate.py`` times it against the new pipeline and refuses to
  pass unless outputs are identical (and reports the speedup into
  ``BENCH_shuffle.json``);
- the equivalence property suite (``tests/test_equivalence_properties.py``)
  asserts, over random workloads, that the new shuffle is byte-identical
  to this one.

Do not "optimize" this file — its slowness is the baseline.
"""

from __future__ import annotations

import typing as _t

__all__ = [
    "seed_hash_partition",
    "seed_group_by_key",
    "seed_merge_grouped",
    "seed_sort_by_value_desc",
    "seed_shuffle_parallel",
    "seed_local_worker_run",
    "seed_local_merge_runs",
]


def _fnv1a(data: bytes) -> int:
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def seed_hash_partition(
    pairs: _t.Iterable[tuple[object, object]], n_buckets: int
) -> list[list[tuple[object, object]]]:
    """The seed partitioner: pure-Python FNV-1a over ``repr(key)``."""
    buckets: list[list[tuple[object, object]]] = [[] for _ in range(max(1, n_buckets))]
    for key, value in pairs:
        h = _fnv1a(repr(key).encode())
        buckets[h % len(buckets)].append((key, value))
    return buckets


def seed_group_by_key(
    pairs: _t.Iterable[tuple[object, object]], values_are_lists: bool = False
) -> list[tuple[object, list]]:
    """The seed grouper: dict accumulate + full ``repr`` re-sort."""
    grouped: dict[object, list] = {}
    for key, value in pairs:
        bucket = grouped.setdefault(key, [])
        if values_are_lists and isinstance(value, list):
            bucket.extend(value)
        else:
            bucket.append(value)
    return sorted(grouped.items(), key=lambda kv: repr(kv[0]))


def seed_merge_grouped(
    results: _t.Iterable[list[tuple[object, object]]]
) -> list[tuple[object, object]]:
    """The seed merger: concatenate and globally re-sort by ``repr``."""
    out: list[tuple[object, object]] = []
    for part in results:
        out.extend(part)
    return sorted(out, key=lambda kv: repr(kv[0]))


def seed_sort_by_value_desc(
    pairs: _t.Iterable[tuple[object, object]]
) -> list[tuple[object, object]]:
    """The seed output ordering: frequency-descending, ``repr`` tiebreak."""
    return sorted(pairs, key=lambda kv: (-_as_num(kv[1]), repr(kv[0])))


def _as_num(v: object) -> float:
    try:
        return float(v)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return 0.0


def seed_shuffle_parallel(
    combiner_maps: _t.Sequence[dict],
    combine_fn: _t.Callable[[object, object], object] | None,
    reduce_fn: _t.Callable[[object, list, dict], object] | None,
    needs_sort: bool,
    sort_output: bool,
    n_buckets: int,
    params: dict,
) -> list[tuple[object, object]]:
    """Exactly the seed ``PhoenixRuntime._run_parallel`` data path."""
    pairs = [
        kv
        for m in combiner_maps
        for kv in sorted(m.items(), key=lambda kv: repr(kv[0]))
    ]
    grouped: list[tuple[object, list]] | None = None
    if needs_sort:
        grouped = seed_group_by_key(pairs, values_are_lists=combine_fn is None)
    if reduce_fn is not None:
        source = (
            grouped
            if grouped is not None
            else seed_group_by_key(pairs, values_are_lists=combine_fn is None)
        )
        buckets = seed_hash_partition(source, n_buckets)
        reduced_parts: list[list[tuple[object, object]]] = []
        for bucket in buckets:
            out = []
            for key, values in bucket:
                vals = values if isinstance(values, list) else [values]
                out.append((key, reduce_fn(key, vals, params)))
            reduced_parts.append(out)
        out_pairs = seed_merge_grouped(reduced_parts)
    else:
        out_pairs = [(k, v) for k, v in grouped] if grouped is not None else pairs
    return seed_sort_by_value_desc(out_pairs) if sort_output else out_pairs


def seed_local_worker_run(acc: dict) -> list[tuple[object, object]]:
    """Exactly the seed ``_apply_chunk`` return: per-chunk ``repr`` sort."""
    return sorted(acc.items(), key=lambda kv: repr(kv[0]))


def seed_local_merge_runs(
    parts: _t.Sequence[list[tuple[object, object]]],
    combine_fn: _t.Callable[[object, object], object] | None,
    reduce_fn: _t.Callable[[object, list, dict], object] | None,
    sort_output: bool,
    params: dict,
) -> list[tuple[object, object]]:
    """Exactly the seed ``LocalMapReduce.run`` post-map path."""
    pairs = [kv for part in parts for kv in part]
    if reduce_fn is not None:
        grouped = seed_group_by_key(pairs, values_are_lists=combine_fn is None)
        out = [
            (k, reduce_fn(k, v if isinstance(v, list) else [v], params))
            for k, v in grouped
        ]
    elif combine_fn is not None:
        folded: dict[object, object] = {}
        for k, v in pairs:
            folded[k] = combine_fn(folded[k], v) if k in folded else v
        out = sorted(folded.items(), key=lambda kv: repr(kv[0]))
    else:
        out = seed_group_by_key(pairs, values_are_lists=True)
    if sort_output:
        out = seed_sort_by_value_desc(out)
    return out
