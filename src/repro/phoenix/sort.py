"""Real intermediate-data machinery: combine, partition, group, sort.

This is the functional half of the runtime — it operates on the actual
key/value pairs the user's map emitted (over the materialized payload), so
tests can assert that word counts really count and matches really match.
"""

from __future__ import annotations

import typing as _t

__all__ = [
    "Combiner",
    "hash_partition",
    "group_by_key",
    "merge_grouped",
    "sort_by_value_desc",
]


class Combiner:
    """Collects map emissions, optionally pre-combining values per key.

    With a ``combine_fn(old, new)`` the structure holds one value per key
    (e.g. running counts); without, it holds the full value list.
    """

    __slots__ = ("combine_fn", "data", "emitted")

    def __init__(self, combine_fn: _t.Callable[[object, object], object] | None):
        self.combine_fn = combine_fn
        self.data: dict[object, object] = {}
        #: raw emissions seen (stats; drives intermediate-size accounting)
        self.emitted = 0

    def emit(self, key: object, value: object) -> None:
        """The callback handed to user map functions."""
        self.emitted += 1
        if self.combine_fn is None:
            bucket = self.data.setdefault(key, [])
            bucket.append(value)  # type: ignore[union-attr]
        else:
            if key in self.data:
                self.data[key] = self.combine_fn(self.data[key], value)
            else:
                self.data[key] = value

    def pairs(self) -> list[tuple[object, object]]:
        """(key, value-or-valuelist) pairs in deterministic key order."""
        return sorted(self.data.items(), key=lambda kv: repr(kv[0]))


def hash_partition(
    pairs: _t.Iterable[tuple[object, object]], n_buckets: int
) -> list[list[tuple[object, object]]]:
    """Deterministically spread pairs over ``n_buckets`` reduce buckets.

    Python's str hash is salted per process, so bucket choice uses a stable
    FNV-1a over ``repr(key)`` — reproducibility beats speed here.
    """
    buckets: list[list[tuple[object, object]]] = [[] for _ in range(max(1, n_buckets))]
    for key, value in pairs:
        h = _fnv1a(repr(key).encode())
        buckets[h % len(buckets)].append((key, value))
    return buckets


def _fnv1a(data: bytes) -> int:
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def group_by_key(
    pairs: _t.Iterable[tuple[object, object]], values_are_lists: bool = False
) -> list[tuple[object, list]]:
    """Sort by key and group values (the 'Sort' box of Fig 1)."""
    grouped: dict[object, list] = {}
    for key, value in pairs:
        bucket = grouped.setdefault(key, [])
        if values_are_lists and isinstance(value, list):
            bucket.extend(value)
        else:
            bucket.append(value)
    return sorted(grouped.items(), key=lambda kv: repr(kv[0]))


def merge_grouped(results: _t.Iterable[list[tuple[object, object]]]) -> list[tuple[object, object]]:
    """Merge sorted per-worker (key, value) lists into one sorted list."""
    out: list[tuple[object, object]] = []
    for part in results:
        out.extend(part)
    return sorted(out, key=lambda kv: repr(kv[0]))


def sort_by_value_desc(pairs: _t.Iterable[tuple[object, object]]) -> list[tuple[object, object]]:
    """Final output ordering of Word Count: by frequency, descending."""
    return sorted(pairs, key=lambda kv: (-_as_num(kv[1]), repr(kv[0])))


def _as_num(v: object) -> float:
    try:
        return float(v)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return 0.0
