"""Real intermediate-data machinery: combine, partition, group, sort.

This is the functional half of the runtime — it operates on the actual
key/value pairs the user's map emitted (over the materialized payload), so
tests can assert that word counts really count and matches really match.

The hot path is a **sort-once, merge-after** pipeline (the "Sort" box of
Fig 1).  Per-worker combiner maps are dict-merged (no per-worker sort, no
flatten/regroup), leaving one map of *distinct* keys; a single
decorate-sort pass then computes each key's sort key — ``repr(key)`` —
exactly once per distinct key per job and carries it, as the first element
of a ``(sort_key, key, value)`` *decorated entry*, through partitioning,
reduction, and the final merge, none of which ever re-sort or re-``repr``.
Partition hashes are ``zlib.crc32`` over the decorated sort-key bytes:
C-speed and salt-free, hence deterministic across processes (Python's
``hash`` is salted per process).  Reduce buckets inherit the sorted order,
so per-bucket outputs are sorted runs; the final merge exploits that via
Timsort's natural-run galloping (:func:`merge_entry_runs`) or, for
streaming consumers, a lazy ``heapq.merge`` (:func:`merge_decorated_runs`).
"""

from __future__ import annotations

import functools
import heapq
import operator
import typing as _t
import zlib

__all__ = [
    "Combiner",
    "KeyCache",
    "merge_combiner_maps",
    "merge_map_into",
    "fold_map_into",
    "finalize_merged_map",
    "finalize_folded_map",
    "decorate_sorted",
    "partition_decorated",
    "merge_entry_runs",
    "merge_decorated_runs",
    "sort_decorated_by_value_desc",
    "undecorate",
    "shuffle_parallel",
    "local_merge_maps",
    "hash_partition",
    "group_by_key",
    "merge_grouped",
    "sort_by_value_desc",
]

#: A decorated entry: (cached sort key, key, value).
Entry = _t.Tuple[str, object, object]

_SORT_KEY = operator.itemgetter(0)
_VALUE_KEY = operator.itemgetter(2)
_PAIR_VALUE = operator.itemgetter(1)


def _REPR_KEY(kv: tuple) -> str:
    return repr(kv[0])


class Combiner:
    """Collects map emissions, optionally pre-combining values per key.

    With a ``combine_fn(old, new)`` the structure holds one value per key
    (e.g. running counts); without, it holds the full value list.
    """

    __slots__ = ("combine_fn", "data", "emitted")

    def __init__(self, combine_fn: _t.Callable[[object, object], object] | None):
        self.combine_fn = combine_fn
        self.data: dict[object, object] = {}
        #: raw emissions seen (stats; drives intermediate-size accounting)
        self.emitted = 0

    def emit(self, key: object, value: object) -> None:
        """The callback handed to user map functions."""
        self.emitted += 1
        if self.combine_fn is None:
            bucket = self.data.setdefault(key, [])
            bucket.append(value)  # type: ignore[union-attr]
        else:
            if key in self.data:
                self.data[key] = self.combine_fn(self.data[key], value)
            else:
                self.data[key] = value

    def pairs(self) -> list[tuple[object, object]]:
        """(key, value-or-valuelist) pairs in deterministic key order."""
        return sorted(self.data.items(), key=lambda kv: repr(kv[0]))


class KeyCache:
    """Cross-run ``repr`` memo for paths that decorate the *same* key twice.

    The merged pipeline decorates distinct keys, so it needs no cache; this
    exists for the unsorted flatten path (no sort, no reduce), where one
    key may recur across per-worker runs and must still be repr'd once.
    """

    __slots__ = ("sort_keys",)

    def __init__(self) -> None:
        self.sort_keys: dict[object, str] = {}

    def sort_key(self, key: object) -> str:
        """``repr(key)``, computed once per distinct key."""
        r = self.sort_keys.get(key)
        if r is None:
            r = self.sort_keys[key] = repr(key)
        return r


def merge_combiner_maps(
    maps: _t.Iterable[dict], combine_fn: _t.Callable[[object, object], object] | None
) -> dict[object, list]:
    """Dict-merge per-worker combiner maps into one ``key -> values`` map.

    Replaces the seed's flatten-then-regroup dance: without ``combine_fn``
    workers hold value lists, which are extended; with it, each worker's
    folded partial is appended — so reducers see exactly the per-worker
    value lists the seed pipeline produced, with zero sorting.
    """
    merged: dict[object, list] = {}
    merged_get = merged.get
    if combine_fn is None:
        for m in maps:
            for key, values in m.items():
                bucket = merged_get(key)
                if bucket is None:
                    merged[key] = list(values)
                else:
                    bucket.extend(values)
    else:
        for m in maps:
            for key, value in m.items():
                bucket = merged_get(key)
                if bucket is None:
                    merged[key] = [value]
                else:
                    bucket.append(value)
    return merged


def merge_map_into(
    merged: dict[object, list],
    m: dict,
    combine_fn: _t.Callable[[object, object], object] | None,
) -> None:
    """Fold one combiner map into ``merged`` (incremental counterpart of
    :func:`merge_combiner_maps`).

    The streaming engine merges each worker result the moment it arrives —
    merge CPU overlaps the remaining map work and the parent never holds
    more than the accumulator plus in-flight results — so the merge has to
    be expressible one map at a time.  Semantics match the batch function:
    value lists are extended (no ``combine_fn``), folded partials are
    appended (with one).
    """
    merged_get = merged.get
    if combine_fn is None:
        for key, values in m.items():
            bucket = merged_get(key)
            if bucket is None:
                merged[key] = list(values)
            else:
                bucket.extend(values)
    else:
        for key, value in m.items():
            bucket = merged_get(key)
            if bucket is None:
                merged[key] = [value]
            else:
                bucket.append(value)


def fold_map_into(
    merged: dict[object, object],
    m: dict,
    combine_fn: _t.Callable[[object, object], object],
) -> None:
    """Scalar-fold one combiner map into ``merged``: ``key -> folded value``.

    The allocation-lean counterpart of :func:`merge_map_into` for jobs
    *with* a combiner: instead of appending each batch's partial to a
    per-key list (one list plus one append per key per batch) and folding
    the lists at finalize time, the partial folds into the accumulator
    immediately — the merge loop allocates nothing per key.  Licensed by
    the combiner contract (the engine may pre-combine across any grouping
    of chunks); the hot (existing-key) path is a bare ``try``/``except``
    dict probe, and ``operator.add`` combiners fold with the inline ``+``
    operator instead of a call per key.
    """
    if combine_fn is operator.add:
        for key, value in m.items():
            try:
                old = merged[key]
            except KeyError:
                merged[key] = value
            else:
                merged[key] = old + value
    else:
        for key, value in m.items():
            try:
                old = merged[key]
            except KeyError:
                merged[key] = value
            else:
                merged[key] = combine_fn(old, value)


def decorate_sorted(
    items: dict | _t.Iterable[tuple[object, object]],
    cache: KeyCache | None = None,
) -> list[Entry]:
    """The single sort: decorated ``(sort_key, key, value)`` entries.

    This is the only place the shuffle calls ``repr``; on the merged map
    every key is distinct, so each is repr'd exactly once.  The sort
    compares only the precomputed strings, and downstream stages reuse
    them — nothing after this point sorts or reprs again.
    """
    pairs = items.items() if isinstance(items, dict) else items
    if cache is None:
        entries = [(repr(k), k, v) for k, v in pairs]
    else:
        sort_key = cache.sort_key
        entries = [(sort_key(k), k, v) for k, v in pairs]
    entries.sort(key=_SORT_KEY)
    return entries


def partition_decorated(
    entries: _t.Iterable[Entry], n_buckets: int
) -> list[list[Entry]]:
    """Spread decorated entries over reduce buckets.

    The bucket hash is ``zlib.crc32`` of the already-computed sort-key
    bytes — O(1)-ish per key, no second ``repr``.  Each bucket preserves
    the input's sorted order, so per-bucket reduce outputs are sorted runs
    ready for :func:`merge_entry_runs`.
    """
    buckets: list[list[Entry]] = [[] for _ in range(max(1, n_buckets))]
    n = len(buckets)
    crc32 = zlib.crc32
    for entry in entries:
        h = crc32(entry[0].encode("utf-8", "backslashreplace"))
        buckets[h % n].append(entry)
    return buckets


def merge_entry_runs(runs: _t.Iterable[list[Entry]]) -> list[Entry]:
    """Eager k-way merge of sorted entry runs — no global re-sort cost.

    Timsort detects the concatenated natural runs and gallops through
    them, so this is a C-speed merge; comparisons touch only the
    precomputed sort keys.
    """
    out = [e for run in runs for e in run]
    out.sort(key=_SORT_KEY)
    return out


def merge_decorated_runs(runs: _t.Iterable[_t.Iterable[Entry]]) -> _t.Iterator[Entry]:
    """Lazy k-way heap merge of sorted entry runs.

    Constant memory in the number of runs: the streaming counterpart of
    :func:`merge_entry_runs` for consumers that cannot materialize all
    runs at once (the out-of-core engine streams spilled fragment runs
    through this).  Hand-rolled rather than ``heapq.merge(key=...)``: the
    stdlib version layers a generator and a key-wrapper per element,
    which measures ~2x slower on the spill-merge path.  Heap items carry
    the run index, so equal sort keys pop in run order (stability the
    cross-run value-list fold relies on) and comparisons never reach the
    (possibly uncomparable) raw entries.
    """
    heap: list[tuple] = []
    for i, run in enumerate(runs):
        it = iter(run)
        for entry in it:
            heap.append((entry[0], i, entry, it))
            break
    heapq.heapify(heap)
    heapreplace, heappop = heapq.heapreplace, heapq.heappop
    while heap:
        _skey, i, entry, it = heap[0]
        yield entry
        for nxt in it:
            heapreplace(heap, (nxt[0], i, nxt, it))
            break
        else:
            heappop(heap)


def sort_decorated_by_value_desc(entries: _t.Iterable[Entry]) -> list[Entry]:
    """Frequency-descending output order, tie-broken on the cached sort key.

    When every value is a plain number, two stable passes with C-speed
    itemgetter keys — sort-key ascending, then value descending
    (``reverse=True`` preserves the order of equal elements) — equal one
    sort by ``(-value, sort_key)`` without a Python-level key lambda
    allocating a tuple per entry.  Any other value type falls back to the
    seed's permissive ordering, whose :func:`_as_num` coercion treats
    non-numbers as equal (and parses numeric strings!), which direct
    comparison would not reproduce — among entries whose fallback keys
    tie, the sort-key pass already restored the order a direct stable
    sort would keep.
    """
    entries = list(entries)
    entries.sort(key=_SORT_KEY)
    if all(type(e[2]) is int or type(e[2]) is float for e in entries):
        return sorted(entries, key=_VALUE_KEY, reverse=True)
    entries.sort(key=lambda e: (-_as_num(e[2]), e[0]))
    return entries


def undecorate(entries: _t.Iterable[Entry]) -> list[tuple[object, object]]:
    """Strip the cached sort keys back off: plain (key, value) pairs."""
    return [(key, value) for _, key, value in entries]


def shuffle_parallel(
    combiner_maps: _t.Sequence[dict],
    combine_fn: _t.Callable[[object, object], object] | None,
    reduce_fn: _t.Callable[[object, list, dict], object] | None,
    needs_sort: bool,
    sort_output: bool,
    n_buckets: int,
    params: dict,
) -> list[tuple[object, object]]:
    """The whole Phoenix-shaped shuffle as one pure function.

    :class:`~repro.phoenix.runtime.PhoenixRuntime` runs these exact stages
    interleaved with simulated cost charging; this composition exists so
    benchmarks and equivalence tests exercise the identical dataflow
    without a simulator.
    """
    entries: list[Entry] | None = None
    if needs_sort or reduce_fn is not None:
        entries = decorate_sorted(merge_combiner_maps(combiner_maps, combine_fn))
    if reduce_fn is not None:
        assert entries is not None
        buckets = partition_decorated(entries, n_buckets)
        parts = [
            [(skey, key, reduce_fn(key, values, params)) for skey, key, values in b]
            for b in buckets
        ]
        if sort_output:
            # the value sort is a total order (distinct sort keys break
            # ties), so the key-order merge would be wasted work
            return undecorate(
                sort_decorated_by_value_desc(e for part in parts for e in part)
            )
        return undecorate(merge_entry_runs(parts))
    if entries is None:
        # no sort, no reduce: the per-worker sorted runs, flattened in
        # worker order (what the seed pipeline emitted for this case);
        # the cache keeps keys recurring across workers at one repr each
        cache = KeyCache()
        out_entries: _t.Iterable[Entry] = [
            e for m in combiner_maps for e in decorate_sorted(m, cache)
        ]
    else:
        out_entries = entries
    if sort_output:
        out_entries = sort_decorated_by_value_desc(out_entries)
    return undecorate(out_entries)


def local_merge_maps(
    maps: _t.Sequence[dict],
    combine_fn: _t.Callable[[object, object], object] | None,
    reduce_fn: _t.Callable[[object, list, dict], object] | None,
    sort_output: bool,
    params: dict,
) -> list[tuple[object, object]]:
    """Parent-side shuffle of LocalMapReduce: dict-merge the worker maps.

    Workers ship their raw combiner maps (smaller IPC than decorated
    runs); the parent dict-merges them and pays exactly one ``repr`` per
    distinct key per job in the single decorate-sort — repr'ing in the
    workers would cost one per key per *chunk*, which measures slower even
    before pickling the extra strings.
    """
    return finalize_merged_map(
        merge_combiner_maps(maps, combine_fn), combine_fn, reduce_fn,
        sort_output, params,
    )


def finalize_merged_map(
    merged: dict[object, list],
    combine_fn: _t.Callable[[object, object], object] | None,
    reduce_fn: _t.Callable[[object, list, dict], object] | None,
    sort_output: bool,
    params: dict,
) -> list[tuple[object, object]]:
    """Reduce/fold + decorate-sort one already-merged ``key -> values`` map.

    The tail of :func:`local_merge_maps`, split out so the streaming
    engine can feed it an accumulator built incrementally (via
    :func:`merge_map_into`) instead of a materialized list of maps.
    """
    if reduce_fn is not None:
        entries = [
            (repr(k), k, reduce_fn(k, values, params))
            for k, values in merged.items()
        ]
    elif combine_fn is not None:
        # per-worker combined partials need one cross-worker fold
        entries = [
            (repr(k), k, functools.reduce(combine_fn, values))
            for k, values in merged.items()
        ]
    else:
        entries = [(repr(k), k, v) for k, v in merged.items()]
    entries.sort(key=_SORT_KEY)
    if sort_output:
        # fast path only for plain numbers: _as_num orders anything else
        # differently than direct comparison (see sort_decorated_by_value_desc)
        if all(type(e[2]) is int or type(e[2]) is float for e in entries):
            entries = sorted(entries, key=_VALUE_KEY, reverse=True)
        else:
            entries.sort(key=lambda e: (-_as_num(e[2]), e[0]))
    return undecorate(entries)


def finalize_folded_map(
    merged: dict[object, object],
    reduce_fn: _t.Callable[[object, list, dict], object] | None,
    sort_output: bool,
    params: dict,
) -> list[tuple[object, object]]:
    """Reduce + decorate-sort a *scalar-folded* ``key -> value`` map.

    The counterpart of :func:`finalize_merged_map` for accumulators built
    with :func:`fold_map_into`: each key's combine is already complete,
    so there is no per-key list to fold — ``reduce_fn`` (whose contract
    must tolerate any pre-combining once a combiner is declared) receives
    the single folded partial.

    Unlike the multi-stage shuffle, nothing downstream reuses the sort
    key here, so this skips the decorate/undecorate round trip and sorts
    plain ``(key, value)`` pairs: one stable ``repr``-order pass (the
    same key order every decorated path produces), then for sorted output
    one stable value-descending pass with a C-speed itemgetter key.
    """
    if reduce_fn is not None:
        out = [(k, reduce_fn(k, [v], params)) for k, v in merged.items()]
    else:
        out = list(merged.items())
    out.sort(key=_REPR_KEY)
    if sort_output:
        # fast path only for plain numbers: _as_num orders anything else
        # differently than direct comparison (see sort_decorated_by_value_desc)
        if all(type(kv[1]) is int or type(kv[1]) is float for kv in out):
            out = sorted(out, key=_PAIR_VALUE, reverse=True)
        else:
            out.sort(key=lambda kv: (-_as_num(kv[1]), repr(kv[0])))
    return out


# -- seed-compatible helpers (kept for callers outside the hot path) --------


def hash_partition(
    pairs: _t.Iterable[tuple[object, object]], n_buckets: int
) -> list[list[tuple[object, object]]]:
    """Deterministically spread pairs over ``n_buckets`` reduce buckets.

    Python's str hash is salted per process, so bucket choice uses
    ``zlib.crc32`` over ``repr(key)`` — salt-free and C-speed; the hash is
    memoized per distinct key so repeated keys cost one dict probe.
    """
    buckets: list[list[tuple[object, object]]] = [[] for _ in range(max(1, n_buckets))]
    n = len(buckets)
    cache: dict[object, int] = {}
    for key, value in pairs:
        try:
            h = cache.get(key)
            if h is None:
                h = cache[key] = zlib.crc32(
                    repr(key).encode("utf-8", "backslashreplace")
                )
        except TypeError:  # unhashable key: no memo, hash directly
            h = zlib.crc32(repr(key).encode("utf-8", "backslashreplace"))
        buckets[h % n].append((key, value))
    return buckets


def group_by_key(
    pairs: _t.Iterable[tuple[object, object]], values_are_lists: bool = False
) -> list[tuple[object, list]]:
    """Sort by key and group values (the 'Sort' box of Fig 1)."""
    grouped: dict[object, list] = {}
    for key, value in pairs:
        bucket = grouped.setdefault(key, [])
        if values_are_lists and isinstance(value, list):
            bucket.extend(value)
        else:
            bucket.append(value)
    return sorted(grouped.items(), key=lambda kv: repr(kv[0]))


def merge_grouped(results: _t.Iterable[list[tuple[object, object]]]) -> list[tuple[object, object]]:
    """Merge sorted per-worker (key, value) lists into one sorted list."""
    out: list[tuple[object, object]] = []
    for part in results:
        out.extend(part)
    return sorted(out, key=lambda kv: repr(kv[0]))


def sort_by_value_desc(pairs: _t.Iterable[tuple[object, object]]) -> list[tuple[object, object]]:
    """Final output ordering of Word Count: by frequency, descending."""
    return sorted(pairs, key=lambda kv: (-_as_num(kv[1]), repr(kv[0])))


def _as_num(v: object) -> float:
    try:
        return float(v)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return 0.0
