"""The Phoenix out-of-core rule (Section IV-B).

"We observed that the Phoenix runtime system does not support any
application whose required data size exceeds approximately 60% of a
computing node's memory size."  On the 2 GB testbed nodes Section V-B then
reports Word Count and String Match failing beyond 1.5 GB of input (75 %).
We expose the fraction as configuration (default: the observed 0.75) and
raise :class:`~repro.errors.PhoenixMemoryError` when the rule trips —
benchmarks use the exception to truncate the non-partitioned curves
exactly where the paper's do.
"""

from __future__ import annotations

from repro.config import PhoenixConfig
from repro.errors import PhoenixMemoryError
from repro.phoenix.api import CostProfile

__all__ = ["footprint_bytes", "max_supported_input", "check_supportable"]


def footprint_bytes(profile: CostProfile, input_bytes: int) -> int:
    """Working-set size of the original runtime for an input."""
    return profile.footprint(input_bytes)


def max_supported_input(mem_capacity: int, cfg: PhoenixConfig) -> int:
    """Largest input the original Phoenix supports on a node."""
    return int(cfg.max_input_fraction * mem_capacity)


def check_supportable(
    app: str,
    input_bytes: int,
    mem_capacity: int,
    cfg: PhoenixConfig,
    profile: CostProfile,
) -> None:
    """Raise :class:`PhoenixMemoryError` if the original runtime cannot run.

    The *extended* (partition-enabled) runtime never calls this for the
    whole input — only per fragment.
    """
    if input_bytes > max_supported_input(mem_capacity, cfg):
        raise PhoenixMemoryError(
            footprint=footprint_bytes(profile, input_bytes),
            capacity=mem_capacity,
            app=app,
        )
