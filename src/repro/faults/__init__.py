"""repro.faults: deterministic, seedable fault injection (Section VI).

The paper defers fault tolerance to future work; this package supplies
the other half of that work — a way to *produce* faults on demand so the
retry/failover/recompute machinery in the rest of the tree can be
exercised deterministically:

* :class:`FaultPlan` / :class:`FaultRule` — declarative, site-scoped
  rules (probability, count, one-shot, sim-time window, context match),
* :class:`FaultInjector` — the runtime evaluator hooks consult; installed
  on a simulator via :meth:`repro.sim.kernel.Simulator.install_faults`
  or handed to the real engine via ``LocalMapReduce(faults=...)``,
* :func:`standard_plan` / :func:`standard_engine_plan` — the chaos-gate
  plans ``tools/chaos_soak.py`` runs the benchmark apps under.
"""

from repro.faults.injector import FaultInjector, Injection
from repro.faults.plan import (
    ACTIONS,
    FaultPlan,
    FaultRule,
    distributed_chaos_plan,
    recovery_chaos_plan,
    tier_chaos_plan,
    standard_engine_plan,
    standard_plan,
    transport_chaos_plan,
)

__all__ = [
    "ACTIONS",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "Injection",
    "standard_plan",
    "standard_engine_plan",
    "transport_chaos_plan",
    "distributed_chaos_plan",
    "recovery_chaos_plan",
    "tier_chaos_plan",
]
