"""Fault plans: declarative, seedable descriptions of what breaks where.

A :class:`FaultPlan` is a list of :class:`FaultRule` site-scoped rules.
Each rule names an injection *site* (a dotted name such as ``disk.read``
or ``fam.result``; ``fnmatch`` globs like ``nfs.*`` match families), an
*action* (what the hook does when the rule fires), and scoping knobs:

* ``probability`` — chance a matching event fires (drawn from the rule's
  own deterministic stream, so two runs with the same plan seed and the
  same event sequence inject identically);
* ``count`` — total injections before the rule burns out (``None`` =
  unlimited; ``count=1`` is a one-shot);
* ``after`` — skip the first N matching events (lets a rule target "the
  third spill write" without touching the first two);
* ``window`` — ``(t0, t1)`` half-open interval on the injector's clock
  (simulated seconds on a simulator-bound injector); outside it the rule
  is dormant;
* ``where`` — equality constraints against the hook's context kwargs
  (``where={"module": "wordcount"}`` scopes a rule to one module,
  ``where={"index": 0}`` to one pool task).

Actions are interpreted by the hook that owns the site:

========  ==========================================================
action    meaning at the hook
========  ==========================================================
fail      raise the site's native transient exception
drop      swallow the effect (lose an inotify event, a network
          delivery, a smartFAM result record, an NFS reply)
delay     add ``delay`` seconds before the effect lands
corrupt   flip bytes in the payload (spill blocks)
kill      terminate the worker process holding the task (pool only)
========  ==========================================================

Every injection site in the tree:

========================  ============================================
site                      hook
========================  ============================================
``disk.read``/``.write``  :class:`repro.hardware.disk.DiskModel`
``nfs.call``              :class:`repro.fs.nfs.NFSClient` (ctx: op)
``inotify.deliver``       :class:`repro.fs.inotify.InotifyManager`
``net.deliver``           :class:`repro.net.fabric.Fabric` (src, dst)
``fam.dispatch``          SD daemon event loop (ctx: module)
``fam.module``            SD daemon module run (ctx: module)
``fam.result``            SD daemon result write (ctx: module)
``pool.worker``           :class:`repro.exec.pool.WorkerPool` (index)
``transport.slot``        shm slot write, :mod:`repro.exec.transport`
                          (index; decided parent-side at submission)
``spill.write``           :func:`repro.exec.outofcore.write_run` (run)
``spill.read``            :func:`repro.exec.outofcore.iter_run` (run)
``shuffle.exchange``      :class:`repro.core.distributed.DistributedEngine`
                          partition transfer (src, dst, partition,
                          nbytes); fail/drop cost one bounded in-place
                          retry, delay adds wire latency
``shuffle.artifact``      :mod:`repro.smartfam.distmod` durable shuffle
                          frames (node, op, shard, partition, path);
                          *corrupt* on ``op="write"`` flips framed bytes
                          on disk (caught later by the reader's crc),
                          fail/drop/corrupt on ``op="read"`` raise
                          :class:`~repro.errors.ShuffleArtifactError`
                          (partial rebuild of just that artifact),
                          delay stalls the read
``heartbeat.drop``        SD daemon heartbeat loop (node); drop/fail
                          swallow one ping (the detector's phi rises),
                          delay postpones it
``tier.read``             burst-buffer hit path — sim
                          :class:`repro.tier.burst.BurstBuffer` (path,
                          blocks) and real
                          :class:`repro.tier.store.TieredStore` (key,
                          level).  fail/drop degrade the hit to a disk
                          read / recompute (entry invalidated),
                          *corrupt* flips returned bytes (caught by the
                          spill crc upstream), delay stalls the hit
``tier.writeback``        background drain of dirty tier blocks (key,
                          bytes); fail/drop cost bounded retries, then
                          the entry is *lost* — a later read degrades
                          to re-read/recompute, never wrong bytes
``tier.evict``            capacity eviction (key); fail/drop wedge the
                          eviction (``tier.evict.stuck``) so the tier
                          runs over budget rather than losing data
========================  ============================================
"""

from __future__ import annotations

import dataclasses
import fnmatch
import typing as _t

from repro.errors import ConfigError

__all__ = [
    "ACTIONS",
    "FaultRule",
    "FaultPlan",
    "standard_plan",
    "standard_engine_plan",
    "transport_chaos_plan",
    "distributed_chaos_plan",
    "recovery_chaos_plan",
    "tier_chaos_plan",
]

ACTIONS = ("fail", "drop", "delay", "corrupt", "kill")


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One site-scoped fault: where, what, how often, and when."""

    site: str
    action: str = "fail"
    probability: float = 1.0
    count: int | None = None
    after: int = 0
    window: tuple[float, float] | None = None
    delay: float = 0.0
    where: _t.Mapping[str, object] | None = None

    def __post_init__(self) -> None:
        if not self.site:
            raise ConfigError("fault rule needs a site pattern")
        if self.action not in ACTIONS:
            raise ConfigError(
                f"unknown fault action {self.action!r} (have: {', '.join(ACTIONS)})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(f"probability must be in [0, 1], got {self.probability}")
        if self.count is not None and self.count < 1:
            raise ConfigError(f"count must be >= 1 or None, got {self.count}")
        if self.after < 0:
            raise ConfigError(f"after must be >= 0, got {self.after}")
        if self.delay < 0:
            raise ConfigError(f"delay must be >= 0, got {self.delay}")
        if self.window is not None and self.window[1] < self.window[0]:
            raise ConfigError(f"empty fault window {self.window}")

    def matches_site(self, site: str) -> bool:
        """Whether this rule covers ``site`` (exact or glob)."""
        if self.site == site:
            return True
        return fnmatch.fnmatchcase(site, self.site)

    def matches_ctx(self, ctx: _t.Mapping[str, object]) -> bool:
        """Whether the hook context satisfies the ``where`` constraints."""
        if not self.where:
            return True
        return all(ctx.get(k) == v for k, v in self.where.items())


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seedable set of fault rules, ready to install on an injector."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def __iter__(self) -> _t.Iterator[FaultRule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def sites(self) -> list[str]:
        """The distinct site patterns this plan touches."""
        seen: dict[str, None] = {}
        for rule in self.rules:
            seen.setdefault(rule.site, None)
        return list(seen)


def standard_plan(seed: int = 0) -> FaultPlan:
    """The chaos-gate plan for the *simulated* cluster.

    One bounded fault at every fragile boundary the paper's deployment
    crosses: a dropped SD-side inotify event, a crashed module run, a
    daemon death after the module ran but before the result record was
    persisted, a failed NFS round trip, a lost network delivery, and a
    transient disk error.  Every count is finite, so a correctly hardened
    stack absorbs the whole plan with bounded retries and byte-identical
    output.
    """
    return FaultPlan(
        rules=(
            FaultRule("inotify.deliver", action="drop", count=1),
            FaultRule("fam.module", action="fail", count=1),
            FaultRule("fam.result", action="drop", count=1),
            FaultRule("nfs.call", action="fail", count=2, after=4),
            FaultRule("net.deliver", action="drop", count=1, after=8),
            FaultRule("disk.read", action="fail", count=1, after=2),
        ),
        seed=seed,
    )


def standard_engine_plan(seed: int = 0) -> FaultPlan:
    """The chaos-gate plan for the *real-machine* engine.

    Scoped by task/run index so the injection history is reproducible even
    though worker completion order is not: a killed worker process (the
    pool must respawn and re-dispatch), a worker-side task failure, and a
    corrupted spill run (the merge must detect the bad crc and recompute
    the fragment).
    """
    return FaultPlan(
        rules=(
            FaultRule("pool.worker", action="kill", count=1, where={"index": 0}),
            FaultRule("pool.worker", action="fail", count=1, where={"index": 1}),
            FaultRule("spill.write", action="corrupt", count=1, where={"run": 0}),
            FaultRule("spill.read", action="fail", count=1, where={"run": 1}),
        ),
        seed=seed,
    )


def distributed_chaos_plan(seed: int = 0) -> FaultPlan:
    """The chaos plan for the cross-node shuffle (``shuffle.exchange``).

    A failed exchange transfer (absorbed by the engine's bounded in-place
    retry), a dropped payload that paid the wire cost before vanishing
    (ditto, one attempt later), and a delayed leg (pure latency, no
    failure).  A hardened distributed engine absorbs the whole plan
    without a job restart and with byte-identical output.
    """
    return FaultPlan(
        rules=(
            FaultRule("shuffle.exchange", action="fail", count=1),
            FaultRule("shuffle.exchange", action="drop", count=1, after=1),
            FaultRule("shuffle.exchange", action="delay", count=1, after=2,
                      delay=0.05),
        ),
        seed=seed,
    )


def recovery_chaos_plan(seed: int = 0) -> FaultPlan:
    """The chaos plan for fine-grained recovery (``shuffle.artifact``).

    One shuffle artifact corrupted *as it is written* — the frame's crc
    no longer matches, so the damage is persistent on disk and escapes
    the channel-level retry.  A hardened engine detects it at read time
    (:class:`~repro.errors.ShuffleArtifactError`), invalidates exactly
    that artifact in the attempt manifest, and re-derives it via a
    partial restart: byte-identical output, zero full restarts.
    """
    return FaultPlan(
        rules=(
            FaultRule(
                "shuffle.artifact", action="corrupt", count=1,
                where={"op": "write"},
            ),
        ),
        seed=seed,
    )


def tier_chaos_plan(seed: int = 0) -> FaultPlan:
    """The chaos plan for the burst-buffer tier (``tier.*`` sites).

    The write-back killer: dirty entries whose background drain is
    dropped until retries exhaust (the entry is *lost* — a warm read
    must degrade to recompute), a degraded read (fail → treat as miss),
    a corrupted read (crc upstream must catch it and invalidate), and a
    wedged eviction (the tier must run over budget, not lose data).  A
    hardened engine absorbs all of it with byte-identical output and
    zero leaked tier files — the tier trades time, never answers.
    """
    return FaultPlan(
        rules=(
            # probability 1 + retries exhausted = guaranteed lost entries
            FaultRule("tier.writeback", action="drop", count=9),
            FaultRule("tier.read", action="fail", count=1, after=1),
            FaultRule("tier.read", action="corrupt", count=1, after=3),
            FaultRule("tier.evict", action="drop", count=1),
        ),
        seed=seed,
    )


def transport_chaos_plan(seed: int = 0) -> FaultPlan:
    """The chaos plan for the shared-memory transport ring.

    Kept separate from :func:`standard_engine_plan` (whose coverage gate
    asserts every rule fires on the pickle path too): a worker killed
    *mid-slot-write* — half a frame in shared memory, header never
    committed — which the pool must answer by respawning, releasing the
    slot, and re-dispatching; plus a frame corrupted after its crc, which
    the parent's verify must catch as a retryable
    :class:`~repro.errors.TransportCorruptionError`.
    """
    return FaultPlan(
        rules=(
            FaultRule("transport.slot", action="kill", count=1, where={"index": 0}),
            FaultRule("transport.slot", action="corrupt", count=1, where={"index": 1}),
        ),
        seed=seed,
    )
