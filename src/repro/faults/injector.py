"""The runtime side of fault injection: deterministic decisions at hooks.

A :class:`FaultInjector` evaluates a :class:`~repro.faults.plan.FaultPlan`
at every instrumented site.  Hooks call::

    inj = self.sim.faults            # None when no plan is installed
    if inj is not None:
        decision = inj.check("disk.read", node=self.name)
        if decision is not None:
            ...act on decision.action...

The ``is not None`` guard is the entire cost of an uninstalled layer —
one attribute load and one branch per hook — which is what keeps the
no-plan overhead inside the perf gate's 2 % budget.

Determinism: each rule owns a private ``random.Random`` stream seeded
from ``(plan.seed, rule index, rule site)`` (the same derivation idiom as
:mod:`repro.sim.rng`), and a draw is consumed for every *matching* event
whether or not it fires.  Two runs with the same plan and the same
sequence of hook calls therefore inject at exactly the same points — and
the simulator's event loop makes the hook-call sequence itself
deterministic.  Every injection lands in :attr:`FaultInjector.history`,
so reproducibility is a one-line list comparison.
"""

from __future__ import annotations

import dataclasses
import random
import typing as _t

from repro.faults.plan import FaultPlan, FaultRule
from repro.sim.rng import derive_seed

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

__all__ = ["Injection", "FaultInjector"]


@dataclasses.dataclass(frozen=True)
class Injection:
    """One fired fault: the audit-trail entry hooks act on."""

    site: str
    action: str
    rule_index: int
    seq: int
    time: float
    delay: float = 0.0
    ctx: tuple = ()

    def signature(self) -> tuple:
        """The order-stable identity used for reproducibility checks."""
        return (self.seq, self.site, self.action, self.rule_index, self.ctx)


class _RuleState:
    """Mutable per-rule bookkeeping (the rule itself stays frozen)."""

    __slots__ = ("rule", "index", "rng", "seen", "fired")

    def __init__(self, rule: FaultRule, index: int, plan_seed: int):
        self.rule = rule
        self.index = index
        self.rng = random.Random(derive_seed(plan_seed, f"fault:{index}:{rule.site}"))
        self.seen = 0
        self.fired = 0

    def exhausted(self) -> bool:
        return self.rule.count is not None and self.fired >= self.rule.count


class FaultInjector:
    """Evaluates a fault plan; one per simulator or engine run.

    ``clock`` feeds the rules' time windows (the simulator binds its sim
    clock; the real engine usually leaves windows unused and passes
    nothing — window-scoped rules are then dormant).  ``obs`` receives
    the ``fault.injected`` counters.
    """

    __slots__ = ("plan", "history", "_states", "_by_site", "_clock", "_obs")

    def __init__(
        self,
        plan: FaultPlan,
        clock: _t.Callable[[], float] | None = None,
        obs: "Observability | None" = None,
    ):
        self.plan = plan
        #: every fired injection, in decision order
        self.history: list[Injection] = []
        self._states = [
            _RuleState(rule, i, plan.seed) for i, rule in enumerate(plan.rules)
        ]
        #: site -> matching rule states (resolved lazily, globs included)
        self._by_site: dict[str, list[_RuleState]] = {}
        self._clock = clock
        self._obs = obs

    # -- the hook entry point --------------------------------------------------

    def check(self, site: str, **ctx: object) -> Injection | None:
        """The decision for one event at ``site`` (None = proceed normally).

        At most one rule fires per event — the first matching, in-window,
        non-exhausted rule whose probability draw succeeds — so stacked
        rules on one site behave as an ordered fallback chain.
        """
        states = self._by_site.get(site)
        if states is None:
            states = self._by_site[site] = [
                s for s in self._states if s.rule.matches_site(site)
            ]
        if not states:
            return None
        now = self._clock() if self._clock is not None else 0.0
        for state in states:
            rule = state.rule
            if state.exhausted() or not rule.matches_ctx(ctx):
                continue
            if rule.window is not None:
                if self._clock is None:
                    continue
                t0, t1 = rule.window
                if not (t0 <= now < t1):
                    continue
            state.seen += 1
            if state.seen <= rule.after:
                continue
            if rule.probability < 1.0 and state.rng.random() >= rule.probability:
                continue
            state.fired += 1
            injection = Injection(
                site=site,
                action=rule.action,
                rule_index=state.index,
                seq=len(self.history),
                time=now,
                delay=rule.delay,
                ctx=tuple(sorted((k, _ctx_safe(v)) for k, v in ctx.items())),
            )
            self.history.append(injection)
            if self._obs is not None:
                self._obs.count("fault.injected")
                self._obs.count(f"fault.injected.{site}")
            return injection
        return None

    # -- introspection ---------------------------------------------------------

    @property
    def injections(self) -> int:
        """Total faults fired so far."""
        return len(self.history)

    def signatures(self) -> list[tuple]:
        """Order-stable identities of every injection (reproducibility)."""
        return [inj.signature() for inj in self.history]

    def fired_by_site(self) -> dict[str, int]:
        """Injection counts grouped by site."""
        out: dict[str, int] = {}
        for inj in self.history:
            out[inj.site] = out.get(inj.site, 0) + 1
        return out

    def corrupt_bytes(self, blob: bytes, injection: Injection) -> bytes:
        """Deterministically flip one byte of ``blob`` for a corrupt action.

        The position comes from the owning rule's stream, so corruption is
        as reproducible as the injection itself; empty blobs pass through.
        """
        if not blob:
            return blob
        state = self._states[injection.rule_index]
        pos = state.rng.randrange(len(blob))
        return blob[:pos] + bytes([blob[pos] ^ 0xFF]) + blob[pos + 1 :]


def _ctx_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
