"""repro.tier — the two-level burst buffer between compute and disk.

The package has two symmetrical halves:

* :mod:`repro.tier.burst` — the *simulated* tier: a block-granular
  memory+SSD cache attached to a node's :class:`~repro.fs.localfs.LocalFS`
  that turns disk reads into sub-tier transfers, buffers writes
  (write-back) and absorbs readahead prefetch.
* :mod:`repro.tier.store` — the *real-engine* tier: a byte-budgeted
  memory+SSD store the out-of-core engine spills into, with a background
  write-back thread and crc-checked degradation (a lying tier causes a
  recompute, never corruption).

Shared pieces: :mod:`repro.tier.hierarchy` (the result-cache → block-cache
→ burst-tier → disk registry with cascade invalidation) and
:mod:`repro.tier.prefetch` (the background readahead thread for the real
engine).  All halves emit the same ``tier.*`` counter vocabulary through
:mod:`repro.obs`.
"""

from repro.config import TierSpec
from repro.tier.burst import BurstBuffer
from repro.tier.hierarchy import CacheHierarchy, standard_hierarchy
from repro.tier.prefetch import ReadaheadPrefetcher
from repro.tier.store import TieredStore, live_tier_dirs

__all__ = [
    "TierSpec",
    "BurstBuffer",
    "CacheHierarchy",
    "standard_hierarchy",
    "ReadaheadPrefetcher",
    "TieredStore",
    "live_tier_dirs",
]
