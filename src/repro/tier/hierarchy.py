"""The explicit cache hierarchy: result cache → block cache → tier → disk.

Before this module the caches were islands: the scheduler's
:class:`~repro.sched.cache.ResultCache` invalidated itself off VFS events,
the mmap handle cache in :mod:`repro.exec.chunks` revalidated off stat,
and nothing tied their counters together.  :class:`CacheHierarchy` is the
thin registry that makes the layering explicit: each level registers a
stats callback and (optionally) a path-invalidation callback, ordered
top (cheapest, most derived) to bottom (the disk itself).

It deliberately stays a registry, not a dispatcher — reads still flow
through each layer's own fast path.  What the hierarchy adds is the two
cross-cutting operations that need to see *all* levels at once:

* :meth:`report` — one ordered stats table (trace_view's tier section),
* :meth:`invalidate_path` — cascade invalidation: when an input changes,
  every level that derived state from it drops that state, top-down, so
  no level can serve data a lower level has already abandoned.
"""

from __future__ import annotations

import typing as _t

__all__ = ["CacheHierarchy", "standard_hierarchy"]


class _Level:
    __slots__ = ("name", "stats_fn", "invalidate_fn")

    def __init__(
        self,
        name: str,
        stats_fn: _t.Callable[[], dict],
        invalidate_fn: _t.Callable[[str], int] | None,
    ):
        self.name = name
        self.stats_fn = stats_fn
        self.invalidate_fn = invalidate_fn


class CacheHierarchy:
    """Ordered registry of cache levels with cascade invalidation."""

    def __init__(self) -> None:
        self._levels: list[_Level] = []

    def register(
        self,
        name: str,
        stats_fn: _t.Callable[[], dict],
        invalidate_fn: _t.Callable[[str], int] | None = None,
    ) -> None:
        """Add a level at the bottom of the hierarchy.

        Register top-down (result cache first, burst tier last) so
        :meth:`report` reads like the read path.  ``invalidate_fn`` takes
        a path and returns how many entries it dropped.
        """
        if any(lv.name == name for lv in self._levels):
            raise ValueError(f"cache level {name!r} already registered")
        self._levels.append(_Level(name, stats_fn, invalidate_fn))

    @property
    def levels(self) -> list[str]:
        """Level names, top to bottom."""
        return [lv.name for lv in self._levels]

    def report(self) -> list[tuple[str, dict]]:
        """``(name, stats)`` per level, top to bottom."""
        return [(lv.name, dict(lv.stats_fn())) for lv in self._levels]

    def invalidate_path(self, path: str) -> dict[str, int]:
        """Cascade a path invalidation through every level, top-down.

        Returns dropped-entry counts per level (levels without an
        invalidation hook are skipped).
        """
        out: dict[str, int] = {}
        for lv in self._levels:
            if lv.invalidate_fn is not None:
                out[lv.name] = int(lv.invalidate_fn(path))
        return out


def standard_hierarchy(
    result_cache=None,
    tiers: _t.Mapping[str, object] | None = None,
    include_chunk_handles: bool = True,
) -> CacheHierarchy:
    """The canonical read-path hierarchy, top-down.

    ``result cache → chunk-handle (block) cache → burst tier(s)`` — the
    disk itself has no cache state, so it is not a level.  ``tiers`` maps
    level names to :class:`~repro.tier.burst.BurstBuffer` or
    :class:`~repro.tier.store.TieredStore` instances; their
    ``invalidate_path``/``invalidate_prefix`` becomes the cascade hook.
    """
    h = CacheHierarchy()
    if result_cache is not None:
        h.register("result-cache", result_cache.stats, result_cache.invalidate_path)
    if include_chunk_handles:
        from repro.exec.chunks import drop_cached_handle, handle_cache_stats

        h.register("chunk-handles", handle_cache_stats, drop_cached_handle)
    for name, tier in (tiers or {}).items():
        invalidate = getattr(tier, "invalidate_path", None)
        if invalidate is None:
            invalidate = getattr(tier, "invalidate_prefix", None)
        h.register(name, tier.stats, invalidate)
    return h
