"""The simulated burst buffer: a block cache between a LocalFS and its disk.

A :class:`BurstBuffer` sits in front of one :class:`~repro.hardware.disk.DiskModel`
and turns file reads into sub-tier transfers.  It tracks file content at
``TierSpec.block_bytes`` granularity in two LRU levels:

* **mem** — small, fast (latency + bandwidth from the spec), the admission
  level for fills, prefetch and buffered writes;
* **ssd** — larger, slower, fed by demotion when mem overflows.

Reads split into mem-hit / ssd-hit / miss portions: hits pay the sub-tier
transfer, misses pay the disk and are admitted into mem.  Writes (when the
spec enables write-back) pay only the mem transfer up front; a background
process drains the dirty blocks to the disk.  The VFS remains the source
of truth for *bytes* — the tier only decides *where the time goes* — so a
lying or dying tier can cost extra disk reads but can never corrupt data.
Fault sites: ``tier.read`` (degrade a hit to a disk re-read),
``tier.writeback`` (drop/delay the background drain; bounded retries, then
synchronous write-through) and ``tier.evict`` (a stuck eviction leaves the
SSD level temporarily over capacity).

Invalidation: the buffer registers on the owning VFS's event stream, so
any modify/delete — including ones that never went through the tier —
drops the path's blocks before they can serve stale timing.
"""

from __future__ import annotations

import collections
import typing as _t

from repro.config import TierSpec
from repro.fs.vfs import EV_DELETE, EV_MODIFY, Inode, VFS
from repro.hardware.disk import DiskModel
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource

__all__ = ["BurstBuffer"]

_LEVEL_MEM = "mem"
_LEVEL_SSD = "ssd"

#: how often an idle-waiting prefetch re-checks the disk queue (seconds)
_PREFETCH_POLL = 0.002
#: contiguous blocks coalesced into one prefetch disk request — large
#: enough to amortize the seek, small enough that a demand read arriving
#: mid-fill waits at most one chunk
_PREFETCH_RUN_BLOCKS = 4


class _Block:
    """One cached block of one file."""

    __slots__ = ("key", "level", "nbytes", "dirty", "prefetched")

    def __init__(self, key: tuple[str, int], level: str, nbytes: int):
        self.key = key
        self.level = level
        self.nbytes = nbytes
        self.dirty = False
        self.prefetched = False


class BurstBuffer:
    """A two-level (memory + SSD) block cache fronting one disk."""

    def __init__(
        self,
        sim: Simulator,
        disk: DiskModel,
        spec: TierSpec | None = None,
        name: str = "tier",
    ):
        self.sim = sim
        self.disk = disk
        self.spec = spec or TierSpec()
        self.name = name
        #: LRU order per level: oldest first (demotion/eviction victims)
        self._mem: collections.OrderedDict[tuple[str, int], _Block] = collections.OrderedDict()
        self._ssd: collections.OrderedDict[tuple[str, int], _Block] = collections.OrderedDict()
        self._by_path: dict[str, set[tuple[str, int]]] = {}
        self._mem_used = 0
        self._ssd_used = 0
        #: one queued server per sub-tier so concurrent accesses contend
        self._mem_chan = Resource(sim, capacity=1, name=f"{name}.mem")
        self._ssd_chan = Resource(sim, capacity=1, name=f"{name}.ssd")
        #: in-flight background work (write-backs + prefetch fills)
        self._pending: list[Event] = []
        self._counters: collections.Counter[str] = collections.Counter()

    # -- wiring -----------------------------------------------------------

    def watch(self, vfs: VFS) -> None:
        """Invalidate blocks off the VFS event stream (modify/delete).

        The admit path re-populates blocks *after* the VFS mutation has
        emitted its event, so a tier-routed write first invalidates the
        stale blocks here and then admits the fresh ones.
        """
        vfs.on_event(self._on_vfs_event)

    def _on_vfs_event(self, event: str, path: str, inode: Inode) -> None:
        if event in (EV_MODIFY, EV_DELETE):
            self.invalidate_path(path)

    # -- counters ---------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self._counters[name] += amount
        obs = self.sim.obs
        if obs is not None:
            obs.count(name, amount)

    def stats(self) -> dict:
        """Counter snapshot plus current occupancy."""
        out: dict[str, _t.Any] = dict(self._counters)
        out["mem_used"] = self._mem_used
        out["ssd_used"] = self._ssd_used
        out["mem_blocks"] = len(self._mem)
        out["ssd_blocks"] = len(self._ssd)
        return out

    # -- block geometry ----------------------------------------------------

    def _block_range(self, offset: int, nbytes: int) -> range:
        bb = self.spec.block_bytes
        offset = max(0, int(offset))
        nbytes = max(0, int(nbytes))
        if nbytes == 0:
            return range(0, 0)
        return range(offset // bb, (offset + nbytes + bb - 1) // bb)

    def _block_len(self, index: int, file_end: int) -> int:
        bb = self.spec.block_bytes
        return max(1, min(bb, file_end - index * bb))

    def _overlap(self, index: int, offset: int, nbytes: int) -> int:
        bb = self.spec.block_bytes
        lo = max(offset, index * bb)
        hi = min(offset + nbytes, (index + 1) * bb)
        return max(0, hi - lo)

    # -- lookup / LRU maintenance ----------------------------------------------

    def _find(self, key: tuple[str, int]) -> _Block | None:
        blk = self._mem.get(key)
        if blk is not None:
            self._mem.move_to_end(key)
            return blk
        blk = self._ssd.get(key)
        if blk is not None:
            self._ssd.move_to_end(key)
            return blk
        return None

    def _drop(self, blk: _Block, cause: str) -> None:
        table = self._mem if blk.level == _LEVEL_MEM else self._ssd
        if blk.key not in table:
            return
        del table[blk.key]
        if blk.level == _LEVEL_MEM:
            self._mem_used -= blk.nbytes
        else:
            self._ssd_used -= blk.nbytes
        keys = self._by_path.get(blk.key[0])
        if keys is not None:
            keys.discard(blk.key)
            if not keys:
                del self._by_path[blk.key[0]]
        self._count(f"tier.evict.{cause}")

    def invalidate_path(self, path: str) -> int:
        """Drop every cached block of ``path``; returns blocks dropped."""
        keys = self._by_path.get(path)
        if not keys:
            return 0
        dropped = 0
        for key in list(keys):
            blk = self._mem.get(key) or self._ssd.get(key)
            if blk is not None:
                self._drop(blk, "invalidation")
                dropped += 1
        return dropped

    def _admit(self, path: str, index: int, file_end: int, dirty: bool = False,
               prefetched: bool = False) -> _Block | None:
        """Place a block in mem, demoting/evicting as needed."""
        key = (path, index)
        existing = self._find(key)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            existing.prefetched = existing.prefetched or prefetched
            if existing.level == _LEVEL_SSD:
                self._promote(existing)
            return existing
        nbytes = self._block_len(index, file_end)
        if nbytes > self.spec.mem_bytes:
            return None  # a block the mem level cannot hold is not cached
        blk = _Block(key, _LEVEL_MEM, nbytes)
        blk.dirty = dirty
        blk.prefetched = prefetched
        self._mem[key] = blk
        self._mem_used += nbytes
        self._by_path.setdefault(path, set()).add(key)
        self._make_room_mem()
        return blk

    def _promote(self, blk: _Block) -> None:
        """Move an SSD block up to mem (touch-promotes on hit)."""
        del self._ssd[blk.key]
        self._ssd_used -= blk.nbytes
        blk.level = _LEVEL_MEM
        self._mem[blk.key] = blk
        self._mem_used += blk.nbytes
        self._count("tier.promote")
        self._make_room_mem()

    def _make_room_mem(self) -> None:
        while self._mem_used > self.spec.mem_bytes and len(self._mem) > 1:
            victim_key = next(iter(self._mem))
            victim = self._mem[victim_key]
            del self._mem[victim_key]
            self._mem_used -= victim.nbytes
            if victim.nbytes <= self.spec.ssd_bytes:
                victim.level = _LEVEL_SSD
                self._ssd[victim_key] = victim
                self._ssd_used += victim.nbytes
                self._count("tier.demote")
                self._make_room_ssd()
            else:
                self._forget(victim)
                self._count("tier.evict.capacity")

    def _make_room_ssd(self) -> None:
        inj = self.sim.faults
        while self._ssd_used > self.spec.ssd_bytes:
            victim = None
            for blk in self._ssd.values():
                if not blk.dirty:
                    victim = blk
                    break
            if victim is None:
                break  # only dirty blocks left: stay over capacity until drained
            if inj is not None:
                decision = inj.check(
                    "tier.evict", tier=self.name, path=victim.key[0], bytes=victim.nbytes
                )
                if decision is not None and decision.action in ("fail", "drop"):
                    # the eviction itself is stuck: leave the level over
                    # capacity this round rather than looping forever
                    self._count("tier.evict.stuck")
                    break
            del self._ssd[victim.key]
            self._ssd_used -= victim.nbytes
            self._forget(victim)
            self._count("tier.evict.capacity")

    def _forget(self, blk: _Block) -> None:
        keys = self._by_path.get(blk.key[0])
        if keys is not None:
            keys.discard(blk.key)
            if not keys:
                del self._by_path[blk.key[0]]

    # -- sub-tier transfer timing -------------------------------------------

    def _xfer(self, chan: Resource, latency: float, bandwidth: float,
              nbytes: int, label: str) -> Event:
        def _proc() -> _t.Generator:
            with chan.request() as req:
                yield req
                yield self.sim.timeout(latency + nbytes / bandwidth)
            return nbytes

        return self.sim.spawn(_proc(), name=f"{self.name}.{label}")

    def _mem_xfer(self, nbytes: int, label: str = "mem") -> Event:
        return self._xfer(
            self._mem_chan, self.spec.mem_latency, self.spec.mem_bandwidth, nbytes, label
        )

    def _ssd_xfer(self, nbytes: int, label: str = "ssd") -> Event:
        return self._xfer(
            self._ssd_chan, self.spec.ssd_latency, self.spec.ssd_bandwidth, nbytes, label
        )

    # -- the read path ----------------------------------------------------------

    def read_through(self, path: str, offset: int, nbytes: int,
                     size: int) -> _t.Generator:
        """Timed read of ``[offset, offset+nbytes)`` through the tier.

        A generator meant to be ``yield from``-ed inside the owning
        LocalFS process.  Classifies the overlapped blocks into mem hits,
        SSD hits and misses, charges each portion to its level, fills the
        misses from the disk and admits them.
        """
        file_end = max(int(size), int(offset) + int(nbytes))
        blocks = self._block_range(offset, nbytes)
        mem_hit = ssd_hit = miss = 0
        hit_keys: list[tuple[str, int]] = []
        miss_idx: list[int] = []
        for i in blocks:
            blk = self._find((path, i))
            part = self._overlap(i, offset, nbytes)
            if blk is None:
                miss += part
                miss_idx.append(i)
            elif blk.level == _LEVEL_MEM:
                mem_hit += part
                hit_keys.append(blk.key)
            else:
                ssd_hit += part
                hit_keys.append(blk.key)

        inj = self.sim.faults
        if inj is not None and (mem_hit or ssd_hit):
            decision = inj.check("tier.read", tier=self.name, path=path, bytes=nbytes)
            if decision is not None:
                if decision.action == "delay":
                    yield self.sim.timeout(decision.delay)
                else:
                    # fail/drop: the tier lost the data; corrupt: the block
                    # checksum failed on the way out.  Either way the tier
                    # degrades to a full disk re-read — bytes stay correct
                    # because the VFS is the source of truth.
                    for key in hit_keys:
                        blk = self._mem.get(key) or self._ssd.get(key)
                        if blk is not None:
                            self._drop(blk, "invalidation")
                    miss += mem_hit + ssd_hit
                    miss_idx = list(blocks)
                    mem_hit = ssd_hit = 0
                    self._count("tier.read.degraded")

        for key in hit_keys:
            blk = self._mem.get(key) or self._ssd.get(key)
            if blk is not None and blk.prefetched:
                blk.prefetched = False
                self._count("tier.prefetch.hit")
                self._count("tier.prefetch.hit.bytes", blk.nbytes)

        if mem_hit:
            self._count("tier.hit.mem")
            self._count("tier.bytes.hit", mem_hit)
            yield self._mem_xfer(mem_hit, label="read.mem")
        if ssd_hit:
            self._count("tier.hit.ssd")
            self._count("tier.bytes.hit", ssd_hit)
            yield self._ssd_xfer(ssd_hit, label="read.ssd")
            # touch-promote the SSD hits into mem
            for key in hit_keys:
                blk = self._ssd.get(key)
                if blk is not None:
                    self._promote(blk)
        if miss or not (mem_hit or ssd_hit):
            self._count("tier.miss")
            self._count("tier.bytes.miss", miss)
            yield self.disk.read(miss, label="tier.fill")
            for i in miss_idx:
                self._admit(path, i, file_end)
        return nbytes

    # -- the write path ---------------------------------------------------------

    def write_charge(self, nbytes: int) -> _t.Generator:
        """The foreground cost of a buffered write: one mem transfer."""
        yield self._mem_xfer(nbytes, label="write.mem")
        return nbytes

    def admit_write(self, path: str, size: int, nbytes: int,
                    append: bool = False) -> None:
        """Mark the written range dirty in mem and schedule the drain.

        Called *after* the VFS mutation (whose modify event invalidated
        the stale blocks), so the admitted blocks describe the new
        content.  ``size`` is the file's declared size after the write.
        """
        nbytes = int(nbytes)
        start = max(0, int(size) - nbytes) if append else 0
        span = nbytes if append else int(size)
        keys: list[tuple[str, int]] = []
        for i in self._block_range(start, max(span, 1) if size or nbytes else 0):
            blk = self._admit(path, i, int(size), dirty=True)
            if blk is not None:
                keys.append(blk.key)
        self._count("tier.write.buffered")
        self._count("tier.bytes.written", nbytes)
        if keys:
            self._spawn_writeback(path, keys, nbytes)

    def _spawn_writeback(self, path: str, keys: list[tuple[str, int]],
                         nbytes: int, attempt: int = 0) -> None:
        def _proc() -> _t.Generator:
            inj = self.sim.faults
            decision = None
            if inj is not None:
                decision = inj.check(
                    "tier.writeback", tier=self.name, path=path, bytes=nbytes
                )
            if decision is not None:
                if decision.action == "delay":
                    yield self.sim.timeout(decision.delay)
                else:
                    # the drain was dropped; data is still safe in the VFS
                    # (and dirty in mem), so retry, then fall back to a
                    # synchronous write-through
                    if attempt < self.spec.writeback_retries:
                        self._count("tier.writeback.retry")
                        self._spawn_writeback(path, keys, nbytes, attempt + 1)
                        return
                    self._count("tier.writeback.lost")
            try:
                yield self.disk.write(nbytes, label="tier.writeback")
            except Exception:
                # an injected disk fault under the drain: same retry ladder
                if attempt < self.spec.writeback_retries:
                    self._count("tier.writeback.retry")
                    self._spawn_writeback(path, keys, nbytes, attempt + 1)
                    return
                self._count("tier.writeback.lost")
                return
            self._count("tier.writeback.bytes", nbytes)
            for key in keys:
                blk = self._mem.get(key) or self._ssd.get(key)
                if blk is not None:
                    blk.dirty = False

        ev = self.sim.spawn(_proc(), name=f"{self.name}.writeback")
        self._pending.append(ev)

    # -- prefetch ------------------------------------------------------------

    def prefetch(self, path: str, offset: int, nbytes: int, size: int) -> Event | None:
        """Fire-and-forget fill of ``[offset, offset+nbytes)`` into the tier.

        Readahead *yields to demand traffic*: the fill is issued in
        bounded chunks (:data:`_PREFETCH_RUN_BLOCKS` contiguous blocks per
        disk request) and only while the disk queue is empty, so a demand
        read arriving mid-prefetch waits at most one chunk instead of the
        whole fragment.  Issuing the fill as one coalesced request would
        put the *next* fragment's bytes ahead of the *current* fragment's
        demand read in the disk FIFO — readahead that slows the reader
        down.

        Returns the background Process (or None when everything is already
        cached) so callers that want the overlap barrier can wait on it.
        """
        file_end = max(int(size), int(offset) + int(nbytes))
        missing = [
            i for i in self._block_range(offset, nbytes)
            if self._find((path, i)) is None
        ]
        if not missing:
            return None

        def _proc() -> _t.Generator:
            filled = 0
            pending = list(missing)
            while pending:
                while self.disk.queue_len > 0:
                    yield self.sim.timeout(_PREFETCH_POLL)
                run = [pending.pop(0)]
                while (
                    pending
                    and len(run) < _PREFETCH_RUN_BLOCKS
                    and pending[0] == run[-1] + 1
                ):
                    run.append(pending.pop(0))
                # a demand miss may have admitted some blocks meanwhile
                chunk = [i for i in run if self._find((path, i)) is None]
                if not chunk:
                    continue
                n = sum(self._block_len(i, file_end) for i in chunk)
                try:
                    yield self.disk.read(n, label="tier.prefetch")
                except Exception:
                    self._count("tier.prefetch.failed")
                    return
                for i in chunk:
                    self._admit(path, i, file_end, prefetched=True)
                filled += n
            if filled:
                self._count("tier.prefetch.bytes", filled)

        self._count("tier.prefetch.issued")
        ev = self.sim.spawn(_proc(), name=f"{self.name}.prefetch")
        self._pending.append(ev)
        return ev

    # -- maintenance -----------------------------------------------------------

    def flush(self) -> _t.Generator:
        """Wait for every scheduled write-back and prefetch to finish."""
        while self._pending:
            ev = self._pending.pop()
            if not ev.processed:
                yield ev
        return None

    @property
    def dirty_bytes(self) -> int:
        """Bytes currently buffered but not yet drained to the disk."""
        total = 0
        for table in (self._mem, self._ssd):
            for blk in table.values():
                if blk.dirty:
                    total += blk.nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BurstBuffer {self.name} mem={self._mem_used}/{self.spec.mem_bytes}"
            f" ssd={self._ssd_used}/{self.spec.ssd_bytes}>"
        )
