"""The real-engine tier: a byte-budgeted memory+SSD store for spill blocks.

Where the simulated :class:`~repro.tier.burst.BurstBuffer` models *time*,
:class:`TieredStore` moves real bytes for the out-of-core engine
(:mod:`repro.exec.outofcore`): spill runs are ``put()`` into the memory
level, a background write-back thread persists them to files under an
SSD directory, and LRU eviction keeps both levels inside their budgets.

The contract that makes the tier safe to lie about durability:

* ``get()`` may return **None** (the entry was lost — write-back dropped
  by the ``tier.writeback`` fault site, or evicted after a lost
  write-back).  The engine must treat that as "recompute the fragment".
* ``get()`` may return **corrupted bytes** (``tier.read`` corrupt): the
  spill framing's crc32 catches it, the engine invalidates the entry and
  recomputes.  The tier never silently converts a loss into wrong data.

Every store registers its SSD directory in a module-level registry with
an ``atexit`` sweep (mirroring the spill-dir leak guard in
:mod:`repro.exec.outofcore`), so a crashed run cannot leak tier files —
and chaos soak asserts ``live_tier_dirs()`` drains to empty.
"""

from __future__ import annotations

import atexit
import os
import queue
import shutil
import tempfile
import threading
import typing as _t

from collections import OrderedDict

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.obs import Observability

__all__ = ["TieredStore", "live_tier_dirs"]

#: every TieredStore's SSD directory, removed on close (leak guard)
_TIER_DIRS: set[str] = set()
_TIER_DIRS_LOCK = threading.Lock()


def live_tier_dirs() -> list[str]:
    """Tier directories created but not yet cleaned up (leak check)."""
    with _TIER_DIRS_LOCK:
        return sorted(d for d in _TIER_DIRS if os.path.isdir(d))


def _cleanup_tier_dirs() -> None:  # pragma: no cover - exercised via subprocess
    with _TIER_DIRS_LOCK:
        dirs = list(_TIER_DIRS)
        _TIER_DIRS.clear()
    for d in dirs:
        shutil.rmtree(d, ignore_errors=True)


atexit.register(_cleanup_tier_dirs)


class _Entry:
    __slots__ = ("key", "nbytes", "data", "path", "dirty", "lost")

    def __init__(self, key: str, nbytes: int):
        self.key = key
        self.nbytes = nbytes
        #: resident payload (None once demoted out of the mem level)
        self.data: bytes | None = None
        #: SSD file path once persisted (None while mem-only)
        self.path: str | None = None
        #: write-back still outstanding
        self.dirty = False
        #: the write-back was dropped and retries ran out
        self.lost = False


class TieredStore:
    """LRU memory+SSD store with background write-back.

    Thread model: ``put``/``get``/``invalidate`` may be called from the
    engine thread; one daemon writer thread drains the write-back queue.
    All shared state is guarded by one lock; file I/O happens outside it.
    """

    def __init__(
        self,
        mem_bytes: int,
        ssd_bytes: int,
        ssd_dir: str | None = None,
        obs: "Observability | None" = None,
        faults: "FaultInjector | None" = None,
        writeback: bool = True,
        writeback_retries: int = 2,
        name: str = "tier",
    ):
        if mem_bytes < 1 or ssd_bytes < 0:
            raise ValueError("tier budgets must be positive")
        self.mem_bytes = int(mem_bytes)
        self.ssd_bytes = int(ssd_bytes)
        self.obs = obs
        self.faults = faults
        self.writeback = writeback
        self.writeback_retries = int(writeback_retries)
        self.name = name
        self._owns_dir = ssd_dir is None
        self.ssd_dir = ssd_dir or tempfile.mkdtemp(prefix="repro-tier-")
        os.makedirs(self.ssd_dir, exist_ok=True)
        with _TIER_DIRS_LOCK:
            _TIER_DIRS.add(self.ssd_dir)
        self._lock = threading.Lock()
        #: LRU order, oldest first; an entry may be mem-resident (data),
        #: ssd-resident (path), or both (persisted but still cached)
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._mem_used = 0
        self._ssd_used = 0
        self._seq = 0
        self._counters: dict[str, int] = {}
        self._wb_queue: "queue.Queue[object]" = queue.Queue()
        self._wb_idle = threading.Event()
        self._wb_idle.set()
        self._closed = False
        self._writer: threading.Thread | None = None
        if self.writeback:
            self._writer = threading.Thread(
                target=self._writer_loop, name=f"{name}-writeback", daemon=True
            )
            self._writer.start()

    # -- counters ----------------------------------------------------------

    def _count(self, cname: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[cname] = self._counters.get(cname, 0) + amount
        if self.obs is not None:
            self.obs.count(cname, amount)

    def stats(self) -> dict:
        """Counter snapshot plus current occupancy."""
        with self._lock:
            out: dict[str, _t.Any] = dict(self._counters)
            out["mem_used"] = self._mem_used
            out["ssd_used"] = self._ssd_used
            out["entries"] = len(self._entries)
        return out

    # -- write path ---------------------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        """Admit ``data`` under ``key`` (mem level, write-back scheduled).

        An oversized payload (> mem budget) skips the mem level and is
        persisted synchronously — the tier never refuses a spill.
        """
        if self._closed:
            raise RuntimeError(f"{self.name}: store is closed")
        nbytes = len(data)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._forget_locked(old)
            entry = _Entry(key, nbytes)
            entry.data = data
            entry.dirty = self.writeback
            self._entries[key] = entry
            self._mem_used += nbytes
            self._seq += 1
            victims = self._make_room_locked()
        self._count("tier.put")
        self._count("tier.bytes.written", nbytes)
        if self.writeback:
            self._wb_idle.clear()
            self._wb_queue.put((key, 0))
        else:
            self._persist(key)
        for vkey in victims:
            self._demote(vkey)

    # -- read path ----------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        """The payload for ``key``, or None if the tier lost it.

        One ``tier.read`` fault decision guards every hit: fail/drop makes
        the tier *lose* the entry (returns None — the engine recomputes);
        corrupt flips a byte in the returned payload, which the spill
        framing's crc32 catches upstream (call :meth:`invalidate` then).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.lost or (entry.data is None and entry.path is None):
                entry = None
            else:
                self._entries.move_to_end(key)
                level = "mem" if entry.data is not None else "ssd"
                data = entry.data
                path = entry.path
        if entry is None:
            self._count("tier.miss")
            return None
        inj = self.faults
        decision = None
        if inj is not None:
            decision = inj.check("tier.read", tier=self.name, key=key, level=level)
            if decision is not None and decision.action in ("fail", "drop"):
                self._count("tier.read.degraded")
                self.invalidate(key)
                return None
        if data is None:
            try:
                with open(_t.cast(str, path), "rb") as fh:
                    data = fh.read()
            except OSError:
                self._count("tier.read.degraded")
                self.invalidate(key)
                return None
            self._count("tier.hit.ssd")
            promoted = False
            with self._lock:
                e2 = self._entries.get(key)
                # promote back into mem if it fits without evicting peers
                if (
                    e2 is not None
                    and e2.data is None
                    and self._mem_used + e2.nbytes <= self.mem_bytes
                ):
                    e2.data = data
                    self._mem_used += e2.nbytes
                    promoted = True
            if promoted:
                self._count("tier.promote")
        else:
            self._count("tier.hit.mem")
        if decision is not None and decision.action == "corrupt":
            self._count("tier.read.corrupted")
            return inj.corrupt_bytes(data, decision)
        return data

    def contains(self, key: str) -> bool:
        """True if ``key`` is currently recoverable.

        A pure presence probe: no fault decision, no LRU touch, no byte
        movement — the engine uses it to decide between reusing a warm
        run and recomputing a lost one before paying for a ``get``.
        """
        with self._lock:
            entry = self._entries.get(key)
            return (
                entry is not None
                and not entry.lost
                and (entry.data is not None or entry.path is not None)
            )

    # -- invalidation ---------------------------------------------------------

    def invalidate(self, key: str) -> bool:
        """Drop ``key`` everywhere (e.g. after a crc mismatch upstream)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            path = self._forget_locked(entry)
        if path is not None:
            _unlink_quiet(path)
        self._count("tier.evict.invalidation")
        return True

    def invalidate_prefix(self, prefix: str) -> int:
        """Drop every key starting with ``prefix``; returns entries dropped."""
        with self._lock:
            keys = [k for k in self._entries if k.startswith(prefix)]
        dropped = 0
        for k in keys:
            if self.invalidate(k):
                dropped += 1
        return dropped

    # -- eviction / demotion (internal) ------------------------------------------

    def _forget_locked(self, entry: _Entry) -> str | None:
        """Drop an entry's accounting; returns its file path to unlink."""
        if entry.data is not None:
            self._mem_used -= entry.nbytes
            entry.data = None
        path = None
        if entry.path is not None:
            self._ssd_used -= entry.nbytes
            path = entry.path
            entry.path = None
        entry.lost = True
        return path

    def _make_room_locked(self) -> list[str]:
        """Pick mem-eviction victims; caller demotes them outside the lock."""
        victims: list[str] = []
        if self._mem_used <= self.mem_bytes:
            return victims
        for key, entry in self._entries.items():
            if self._mem_used - sum(
                self._entries[v].nbytes for v in victims
            ) <= self.mem_bytes:
                break
            if entry.data is None:
                continue
            if victims and key == next(reversed(self._entries)):
                break  # never demote the entry just admitted
            victims.append(key)
        return victims

    def _demote(self, key: str) -> None:
        """Persist a mem victim to the SSD level and drop its mem copy."""
        self._persist(key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.data is None:
                return
            if entry.path is None and not entry.lost:
                # persistence failed (write-back still pending/dropped);
                # keep it resident rather than losing the only copy
                return
            entry.data = None
            self._mem_used -= entry.nbytes
        self._count("tier.demote")
        self._evict_ssd()

    def _evict_ssd(self) -> None:
        while True:
            with self._lock:
                if self._ssd_used <= self.ssd_bytes:
                    return
                victim = None
                for key, entry in self._entries.items():
                    if entry.path is not None and entry.data is None and not entry.dirty:
                        victim = key
                        break
                if victim is None:
                    return
            inj = self.faults
            if inj is not None:
                decision = inj.check("tier.evict", tier=self.name, key=victim)
                if decision is not None and decision.action in ("fail", "drop"):
                    self._count("tier.evict.stuck")
                    return
            with self._lock:
                entry = self._entries.pop(victim, None)
                path = self._forget_locked(entry) if entry is not None else None
            if path is not None:
                _unlink_quiet(path)
            self._count("tier.evict.capacity")

    # -- persistence -----------------------------------------------------------

    def _entry_path(self, key: str) -> str:
        safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in key)
        return os.path.join(self.ssd_dir, f"{safe}.{abs(hash(key)) & 0xFFFFFFFF:08x}.blk")

    def _persist(self, key: str, attempt: int = 0) -> bool:
        """Write an entry's payload to its SSD file (write-back body)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.data is None:
                return False
            if entry.path is not None and not entry.dirty:
                return True
            data = entry.data
            nbytes = entry.nbytes
        inj = self.faults
        if inj is not None:
            decision = inj.check(
                "tier.writeback", tier=self.name, key=key, bytes=nbytes
            )
            if decision is not None and decision.action in ("fail", "drop", "corrupt"):
                if attempt < self.writeback_retries:
                    self._count("tier.writeback.retry")
                    return self._persist(key, attempt + 1)
                # retries exhausted: the mem copy survives until evicted,
                # but once it is, the entry is gone (get() -> None)
                with self._lock:
                    e2 = self._entries.get(key)
                    if e2 is not None:
                        e2.dirty = False
                        e2.lost = True
                self._count("tier.writeback.lost")
                return False
        path = self._entry_path(key)
        # unique tmp per thread: the writer thread and a synchronous demote
        # may race on the same key, and both must stay atomic
        tmp = f"{path}.tmp{threading.get_ident()}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except OSError:
            _unlink_quiet(tmp)
            if attempt < self.writeback_retries:
                self._count("tier.writeback.retry")
                return self._persist(key, attempt + 1)
            self._count("tier.writeback.lost")
            return False
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                _unlink_quiet(path)
                return False
            if entry.path is None:
                entry.path = path
                self._ssd_used += entry.nbytes
            entry.dirty = False
            entry.lost = False
        self._count("tier.writeback.bytes", nbytes)
        return True

    # -- the writer thread --------------------------------------------------------

    def _writer_loop(self) -> None:
        while True:
            item = self._wb_queue.get()
            if item is None:
                self._wb_queue.task_done()
                return
            key, _attempt = _t.cast(tuple, item)
            try:
                self._persist(key)
            except Exception:  # pragma: no cover - the drain must never die
                self._count("tier.writeback.lost")
            finally:
                self._wb_queue.task_done()
                if self._wb_queue.unfinished_tasks == 0:
                    self._wb_idle.set()
            self._evict_ssd()

    def flush(self, timeout: float | None = 10.0) -> bool:
        """Block until the write-back queue has drained."""
        if self._writer is None:
            return True
        return self._wb_idle.wait(timeout)

    @property
    def dirty_entries(self) -> int:
        """Entries whose write-back has not completed."""
        with self._lock:
            return sum(1 for e in self._entries.values() if e.dirty)

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Stop the writer, drop all entries and remove the SSD directory."""
        if self._closed:
            return
        self._closed = True
        if self._writer is not None:
            self._wb_queue.put(None)
            self._writer.join(timeout=10.0)
            self._writer = None
        with self._lock:
            self._entries.clear()
            self._mem_used = self._ssd_used = 0
        shutil.rmtree(self.ssd_dir, ignore_errors=True)
        with _TIER_DIRS_LOCK:
            _TIER_DIRS.discard(self.ssd_dir)

    def __enter__(self) -> "TieredStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"<TieredStore {self.name} mem={self._mem_used}/{self.mem_bytes}"
                f" ssd={self._ssd_used}/{self.ssd_bytes} entries={len(self._entries)}>"
            )


def _unlink_quiet(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass
