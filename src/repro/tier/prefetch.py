"""Background readahead for the real out-of-core engine.

While fragment N is being mapped, a :class:`ReadaheadPrefetcher` thread
pre-reads the chunks of fragment N+1 (and deeper, per ``depth``) with
``os.pread`` so their pages are warm in the OS page cache — and in the
process's own cached mmap, via :func:`repro.exec.chunks.read_chunk_cached`'s
handle cache — by the time the engine asks for them.  The thread reads
into a small scratch buffer and discards it: the point is the page-cache
side effect, not the bytes, so the prefetcher adds no RSS beyond one
window buffer.

``advise(i)`` is the engine's only integration point: call it when
fragment ``i`` *starts*; the prefetcher schedules the fragments after it
and skips anything already issued.  The thread is a daemon and never
raises into the engine — a prefetch that fails (file shrank, descriptor
died) is counted and dropped.
"""

from __future__ import annotations

import os
import queue
import threading
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.chunks import FileChunk
    from repro.obs import Observability

__all__ = ["ReadaheadPrefetcher"]

#: bytes per pread window (big enough to amortize, small enough for RSS)
_WINDOW = 1 << 20


class ReadaheadPrefetcher:
    """Prefetches fragment N+1's chunks while fragment N runs."""

    def __init__(
        self,
        fragments: _t.Sequence[_t.Sequence["FileChunk"]],
        depth: int = 1,
        obs: "Observability | None" = None,
    ):
        if depth < 0:
            raise ValueError("prefetch depth must be >= 0")
        self.fragments = fragments
        self.depth = depth
        self.obs = obs
        self.issued = 0
        self.bytes_prefetched = 0
        self._scheduled: set[int] = set()
        self._queue: "queue.Queue[int | None]" = queue.Queue()
        self._idle = threading.Event()
        self._idle.set()
        self._closed = False
        self._fds: dict[str, int] = {}
        self._thread = threading.Thread(
            target=self._loop, name="tier-readahead", daemon=True
        )
        self._thread.start()

    # -- engine-facing ------------------------------------------------------

    def advise(self, index: int) -> None:
        """Fragment ``index`` is starting: schedule the ones after it."""
        if self._closed or self.depth == 0:
            return
        for nxt in range(index + 1, min(index + 1 + self.depth, len(self.fragments))):
            if nxt in self._scheduled:
                continue
            self._scheduled.add(nxt)
            self._idle.clear()
            self._queue.put(nxt)

    def wait_idle(self, timeout: float | None = 10.0) -> bool:
        """Block until every scheduled prefetch has been attempted."""
        return self._idle.wait(timeout)

    def close(self) -> None:
        """Stop the thread and close the prefetch descriptors."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._thread.join(timeout=10.0)
        for fd in self._fds.values():
            try:
                os.close(fd)
            except OSError:
                pass
        self._fds.clear()

    def __enter__(self) -> "ReadaheadPrefetcher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- the thread ---------------------------------------------------------

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            try:
                self._prefetch_fragment(item)
            except Exception:
                if self.obs is not None:
                    self.obs.count("tier.prefetch.failed")
            finally:
                self._queue.task_done()
                if self._queue.unfinished_tasks == 0:
                    self._idle.set()

    def _prefetch_fragment(self, index: int) -> None:
        total = 0
        for chunk in self.fragments[index]:
            if self._closed:
                return
            fd = self._fds.get(chunk.path)
            if fd is None:
                fd = os.open(chunk.path, os.O_RDONLY)
                self._fds[chunk.path] = fd
            pos = chunk.offset
            end = chunk.offset + chunk.length
            while pos < end and not self._closed:
                window = os.pread(fd, min(_WINDOW, end - pos), pos)
                if not window:
                    break
                pos += len(window)
                total += len(window)
        self.issued += 1
        self.bytes_prefetched += total
        if self.obs is not None:
            self.obs.count("tier.prefetch.issued")
            self.obs.count("tier.prefetch.bytes", total)
