"""Real-file chunking with the Fig 7 integrity check.

Chunk boundaries are planned from the file size, then each draft boundary
is integrity-checked by probing a window around it — the same algorithm
as :mod:`repro.partition.integrity`, applied to an on-disk file instead
of an in-memory payload, so huge files never need to be resident.

Reads go through a small per-process cache of ``mmap``-backed file
handles: one ``open``+``mmap`` per file per process lifetime instead of
an open/seek/read syscall triple per chunk.  The cache is LRU (hits move
the entry to MRU position) and revalidated against a live ``stat`` on
every lookup, so a file replaced or rewritten between jobs is remapped
rather than served stale.  :func:`read_chunk_cached` slices chunk bytes
off the cached mapping, and :func:`read_chunk_view` exposes chunk
payloads as zero-copy ``memoryview`` slices over it for consumers that
can scan a buffer without materializing ``bytes``.

:func:`chunk_file` — the *parent's* path — deliberately probes
boundaries with ``os.pread`` windows on the cached descriptor rather
than through the mapping: faulting an mmap page charges the process's
RSS and triggers kernel readahead/fault-around that drags neighboring
pages in with it, so probing every draft boundary through the mapping
makes roughly the whole file resident in the planner.  ``pread`` serves
the same bytes from the page cache without growing the parent at all,
which keeps the engine's bounded-parent-memory claim honest (the mmap
cost lands only in workers, whose job is to scan the chunk anyway).

Shrink safety: an mmap slice past the mapped size silently clamps, so a
chunk planned against a larger incarnation of the file would quietly
return short data.  Both read paths check ``chunk.end`` against the
*live* mapped size and raise :class:`~repro.errors.IntegrityError`
instead of truncating.
"""

from __future__ import annotations

import collections
import dataclasses
import mmap
import os
import re
import typing as _t

from repro.errors import IntegrityError
from repro.partition.integrity import DEFAULT_DELIMITERS

__all__ = [
    "FileChunk",
    "chunk_file",
    "read_chunk",
    "read_chunk_cached",
    "read_chunk_view",
    "handle_cache_stats",
    "drop_cached_handle",
]

#: per-process cap on cached (file, mmap) pairs
_MAX_CACHED_FILES = 8

#: how many bytes each boundary probe reads looking for a delimiter
_WINDOW = 64 * 1024

#: per-process mmap cache: path -> (ino, size, mtime_ns, ctime_ns, file, mmap)
_HANDLES: "collections.OrderedDict[str, tuple[int, int, int, int, _t.BinaryIO, mmap.mmap | None]]" = (
    collections.OrderedDict()
)


@dataclasses.dataclass(frozen=True)
class FileChunk:
    """A byte range of a file, ending on a record boundary."""

    path: str
    offset: int
    length: int

    @property
    def end(self) -> int:
        """Exclusive end offset."""
        return self.offset + self.length


def _drop_handle(path: str) -> None:
    ino, size, mtime, ctime, f, mm = _HANDLES.pop(path)
    if mm is not None:
        try:
            mm.close()
        except BufferError:
            # a live memoryview from read_chunk_view still pins the
            # mapping; dropping our reference lets GC finalize it once
            # the last view dies
            pass
    f.close()


def _cached_entry(
    path: str,
) -> tuple[int, int, int, int, _t.BinaryIO, mmap.mmap | None]:
    """The validated cache entry for ``path``, opening/mapping on miss.

    One ``stat`` revalidates a hit — the file may have been replaced or
    rewritten between jobs; hits move to MRU position so eviction is true
    LRU.  The check covers inode *and* change-time: a rename-over that
    recycles the old inode number with the source's preserved mtime and
    an equal size would slip past an (ino, size, mtime) triple, but the
    rename updates ``st_ctime_ns`` on the new inode, so the generation
    change is still caught.  On miss the entry records the ``fstat`` of
    the descriptor actually opened, not the path's earlier stat, closing
    the stat→open replacement race.
    """
    st = os.stat(path)
    entry = _HANDLES.get(path)
    if entry is not None and (
        st.st_ino, st.st_size, st.st_mtime_ns, st.st_ctime_ns
    ) != entry[:4]:
        _drop_handle(path)
        entry = None
    if entry is None:
        f = open(path, "rb")
        fst = os.fstat(f.fileno())
        mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ) if fst.st_size else None
        entry = (fst.st_ino, fst.st_size, fst.st_mtime_ns, fst.st_ctime_ns, f, mm)
        _HANDLES[path] = entry
        while len(_HANDLES) > _MAX_CACHED_FILES:
            _drop_handle(next(iter(_HANDLES)))
    else:
        _HANDLES.move_to_end(path)
    return entry


def handle_cache_stats() -> dict:
    """Occupancy of the per-process mmap handle cache (hierarchy hook)."""
    return {
        "entries": len(_HANDLES),
        "capacity": _MAX_CACHED_FILES,
        "mapped_bytes": sum(entry[1] for entry in _HANDLES.values()),
    }


def drop_cached_handle(path: str) -> int:
    """Close and forget the cached handle for ``path`` (hierarchy hook).

    Returns 1 if an entry was dropped, 0 otherwise.  Revalidation would
    catch a replaced file on the next use anyway; this exists so cascade
    invalidation can release the descriptor and mapping *now*.
    """
    if path in _HANDLES:
        _drop_handle(path)
        return 1
    return 0


def chunk_file(
    path: str,
    chunk_bytes: int,
    delimiters: bytes = DEFAULT_DELIMITERS,
) -> list[FileChunk]:
    """Split a real file into integrity-checked chunks.

    Boundaries advance to the next delimiter at or after each draft
    point (the delimiter stays with the left chunk); a tail with no
    delimiter extends the last chunk to end-of-file.  Probing uses
    ``pread`` windows on the cached descriptor, *not* the mapping — see
    the module docstring for why planning must stay off the mmap.
    """
    if chunk_bytes < 1:
        raise IntegrityError(f"chunk size must be >= 1, got {chunk_bytes}")
    entry = _cached_entry(path)
    size, fd = entry[1], entry[4].fileno()
    # one compiled character class: a single C-speed window search finds
    # the first delimiter at or after (draft - 1); a match *at* draft - 1
    # means the draft already sits right after a delimiter
    pattern = re.compile(b"[" + re.escape(delimiters) + b"]")
    chunks: list[FileChunk] = []
    start = 0
    while start < size:
        draft = start + chunk_bytes
        if draft >= size:
            chunks.append(FileChunk(path, start, size - start))
            break
        boundary = size
        pos = draft - 1
        while pos < size:
            window = os.pread(fd, _WINDOW, pos)
            if not window:  # pragma: no cover - file shrank mid-plan
                break
            m = pattern.search(window)
            if m is not None:
                boundary = pos + m.start() + 1
                break
            pos += len(window)
        if boundary <= start:  # pragma: no cover - defensive
            raise IntegrityError("chunking failed to advance")
        chunks.append(FileChunk(path, start, boundary - start))
        start = boundary
    if not chunks:
        chunks.append(FileChunk(path, 0, 0))
    return chunks


def _check_in_bounds(chunk: FileChunk, mapped_size: int) -> None:
    if chunk.end > mapped_size:
        raise IntegrityError(
            f"chunk [{chunk.offset}, {chunk.end}) of {chunk.path!r} exceeds "
            f"the file's current size {mapped_size} — the file shrank since "
            "the chunk plan was made"
        )


def read_chunk_cached(chunk: FileChunk) -> bytes:
    """The chunk's bytes via this process's cached ``mmap`` of the file.

    A hit costs one ``stat`` plus a single slice off the mapping — no
    open/seek/read.  Falls back to an empty result for zero-length
    chunks/files (which cannot be mmapped); raises
    :class:`~repro.errors.IntegrityError` for a chunk that extends past
    the file's current size rather than serving silently-short data.
    """
    if chunk.length == 0:
        return b""
    entry = _cached_entry(chunk.path)
    _check_in_bounds(chunk, entry[1])
    mm = entry[5]
    assert mm is not None  # size > 0 given the bounds check passed
    return mm[chunk.offset : chunk.end]


def read_chunk_view(chunk: FileChunk) -> memoryview:
    """The chunk's bytes as a zero-copy ``memoryview`` over the mmap.

    Nothing is materialized: scanning the view touches the page cache
    directly.  The view pins the underlying mapping — cache eviction of
    a pinned mapping defers its teardown to GC (see ``_drop_handle``),
    so holding views indefinitely holds their files' mappings too.
    """
    if chunk.length == 0:
        return memoryview(b"")
    entry = _cached_entry(chunk.path)
    _check_in_bounds(chunk, entry[1])
    mm = entry[5]
    assert mm is not None
    return memoryview(mm)[chunk.offset : chunk.end]


def read_chunk(chunk: FileChunk) -> bytes:
    """The chunk's bytes (uncached open/seek/read — the seed path)."""
    with open(chunk.path, "rb") as f:
        f.seek(chunk.offset)
        return f.read(chunk.length)
