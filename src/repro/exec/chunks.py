"""Real-file chunking with the Fig 7 integrity check.

Chunk boundaries are planned from the file size, then each draft boundary
is integrity-checked by reading a small window around it — the same
algorithm as :mod:`repro.partition.integrity`, applied to an on-disk file
instead of an in-memory payload, so huge files never need to be resident.
"""

from __future__ import annotations

import dataclasses
import os
import re
import typing as _t

from repro.errors import IntegrityError
from repro.partition.integrity import DEFAULT_DELIMITERS

__all__ = ["FileChunk", "chunk_file", "read_chunk"]

#: how many bytes to read around a draft boundary looking for a delimiter
_WINDOW = 64 * 1024


@dataclasses.dataclass(frozen=True)
class FileChunk:
    """A byte range of a file, ending on a record boundary."""

    path: str
    offset: int
    length: int

    @property
    def end(self) -> int:
        """Exclusive end offset."""
        return self.offset + self.length


def chunk_file(
    path: str,
    chunk_bytes: int,
    delimiters: bytes = DEFAULT_DELIMITERS,
) -> list[FileChunk]:
    """Split a real file into integrity-checked chunks.

    Boundaries advance to the next delimiter found within a 64 KiB window
    of each draft point; a window with no delimiter extends the chunk by
    whole windows until one appears (or the file ends).
    """
    if chunk_bytes < 1:
        raise IntegrityError(f"chunk size must be >= 1, got {chunk_bytes}")
    size = os.path.getsize(path)
    # hoisted out of the per-boundary scan: one compiled character class
    # (a single C-speed pass per window) and one membership set for the
    # byte-before-draft probe
    pattern = re.compile(b"[" + re.escape(delimiters) + b"]")
    delim_bytes = frozenset(delimiters)
    chunks: list[FileChunk] = []
    with open(path, "rb") as f:
        start = 0
        while start < size:
            draft = start + chunk_bytes
            if draft >= size:
                chunks.append(FileChunk(path, start, size - start))
                break
            boundary = _safe_boundary(f, draft, size, pattern, delim_bytes)
            if boundary <= start:  # pragma: no cover - defensive
                raise IntegrityError("chunking failed to advance")
            chunks.append(FileChunk(path, start, boundary - start))
            start = boundary
    if not chunks:
        chunks.append(FileChunk(path, 0, 0))
    return chunks


def _safe_boundary(
    f: _t.BinaryIO,
    draft: int,
    size: int,
    pattern: "re.Pattern[bytes]",
    delim_bytes: frozenset[int],
) -> int:
    """First safe boundary at or after ``draft``, reading small windows.

    Mirrors :func:`~repro.partition.integrity.integrity_check` semantics:
    a boundary is safe when the byte before it is a delimiter (the
    delimiter stays with the left chunk) or it is end-of-file.  The
    delimiter set arrives precompiled from :func:`chunk_file` so each
    64 KiB window is scanned exactly once.
    """
    if draft > 0:
        f.seek(draft - 1)
        probe = f.read(1)
        if probe and probe[0] in delim_bytes:
            return draft  # already sits right after a delimiter
    pos = draft
    while pos < size:
        f.seek(pos)
        window = f.read(_WINDOW)
        if not window:
            return size
        m = pattern.search(window)
        if m is not None:
            return pos + m.start() + 1
        pos += len(window)
    return size


def read_chunk(chunk: FileChunk) -> bytes:
    """The chunk's bytes."""
    with open(chunk.path, "rb") as f:
        f.seek(chunk.offset)
        return f.read(chunk.length)
