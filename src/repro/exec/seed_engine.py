"""Frozen pre-streaming LocalMapReduce hot path (perf-gate reference).

This is the real-machine engine exactly as it stood before the streaming
rewrite: a fresh ``multiprocessing`` pool is forked per job, every task
re-opens the input file and ``seek``/``read``s its chunk, all per-chunk
combiner maps are materialized in the parent behind a ``pool.map``
barrier, and only then does the parent merge them.  Peak parent memory is
O(all chunk maps); merge CPU is serialized after the last map finishes.

Do not "fix" or speed this up: like :mod:`repro.phoenix.seed_shuffle` it
exists so ``tools/perf_gate.py --real`` can keep measuring the streaming
engine against the dataflow it replaced and asserting byte-identical
output.  The live engine is :class:`repro.exec.localmr.LocalMapReduce`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import typing as _t

from repro.errors import WorkloadError
from repro.exec.chunks import chunk_file, read_chunk
from repro.phoenix.sort import local_merge_maps

__all__ = ["SeedJobResult", "SeedLocalMapReduce"]


class SeedJobResult(_t.NamedTuple):
    """Outcome of a frozen-path run."""

    output: list
    elapsed: float
    n_chunks: int
    n_workers: int


def _seed_apply_chunk(args: tuple) -> dict:
    """Worker body: open/seek/read one chunk, map it, pre-combine."""
    chunk, map_fn, combine_fn, params = args
    data = read_chunk(chunk)
    acc: dict[object, object] = {}
    if combine_fn is None:
        def emit(key: object, value: object) -> None:
            acc.setdefault(key, []).append(value)  # type: ignore[union-attr]
    else:
        def emit(key: object, value: object) -> None:
            acc[key] = combine_fn(acc[key], value) if key in acc else value
    if data:
        map_fn(data, emit, params)
    return acc


class SeedLocalMapReduce:
    """The pre-PR barrier engine: fresh pool per job, merge after barrier."""

    def __init__(
        self,
        map_fn: _t.Callable,
        reduce_fn: _t.Callable | None = None,
        combine_fn: _t.Callable | None = None,
        sort_output: bool = False,
        delimiters: bytes = b" \t\n\r",
        n_workers: int | None = None,
    ):
        self.map_fn = map_fn
        self.reduce_fn = reduce_fn
        self.combine_fn = combine_fn
        self.sort_output = sort_output
        self.delimiters = delimiters
        self.n_workers = n_workers or max(1, os.cpu_count() or 1)

    def run(
        self,
        path: str,
        chunk_bytes: int | None = None,
        params: dict | None = None,
        parallel: bool = True,
    ) -> SeedJobResult:
        """Execute over ``path`` with the frozen barrier dataflow."""
        params = params or {}
        size = os.path.getsize(path)
        if chunk_bytes is None:
            chunk_bytes = max(1, size // (4 * self.n_workers) or 1)
        if chunk_bytes < 1:
            raise WorkloadError("chunk_bytes must be >= 1")
        t0 = time.perf_counter()
        chunks = chunk_file(path, chunk_bytes, self.delimiters)
        tasks = [(c, self.map_fn, self.combine_fn, params) for c in chunks]
        if parallel and self.n_workers > 1 and len(chunks) > 1:
            ctx = mp.get_context("spawn" if os.name == "nt" else "fork")
            with ctx.Pool(processes=min(self.n_workers, len(chunks))) as pool:
                parts = pool.map(_seed_apply_chunk, tasks)
        else:
            parts = [_seed_apply_chunk(t) for t in tasks]
        out = local_merge_maps(
            parts, self.combine_fn, self.reduce_fn, self.sort_output, params
        )
        return SeedJobResult(
            output=out,
            elapsed=time.perf_counter() - t0,
            n_chunks=len(chunks),
            n_workers=self.n_workers if parallel else 1,
        )
