"""Out-of-core fragment mode: the Fig 6 loop on the real machine.

When a job's input exceeds the engine's memory budget, the streaming
engine runs the paper's partitioning extension for real: the chunk plan is
grouped into consecutive *fragments* no larger than the budget, each
fragment is mapped/combined/decorate-sorted on its own, and the fragment's
sorted run is spilled to disk as pickled blocks.  At any instant the
parent holds one fragment's accumulator — not the whole input's — which is
what bounds peak RSS.  After the last fragment, the spilled runs are
merged *lazily* (``heapq.merge`` via
:func:`repro.phoenix.sort.merge_decorated_runs`), equal keys are folded
across runs, and reduction happens per key as the stream drains, so the
merge phase holds O(runs) read-ahead blocks plus the final output.

Spill format: each run file is a sequence of *independent* pickled
blocks (lists of decorated ``(sort_key, key, values)`` entries, bounded
by :data:`SPILL_BLOCK_ENTRIES` and :data:`SPILL_BLOCK_VALUES`).
Independence matters: a pickler/unpickler pair shared across blocks
memoizes every object it has ever seen, so a shared reader would keep the
*entire* run resident while the merge drains it — silently un-bounding
the memory the spill exists to bound.  With per-block pickles the reader
holds one block's objects per run at a time.

Integrity: every block is framed ``<length:u32><crc32:u32><payload>``
(little-endian) and verified on read.  A crc mismatch is first answered
by re-reading the block once — transient in-memory or transport
corruption disappears on the second read — and only then escalated as
:class:`~repro.errors.SpillCorruptionError`, at which point
:func:`run_out_of_core` *recomputes the damaged fragment* from its
source chunks and re-spills it before restarting the merge: the input
file is the durable copy, so spill corruption costs time, never answers.

Leak safety: run files live in a fresh temporary directory removed on
success *and* on failure (``finally``), and every live spill directory
is additionally registered with an ``atexit`` finalizer so an exception
path that never reaches the ``finally`` (interpreter teardown,
``KeyboardInterrupt`` in a signal-unsafe spot) still cleans up.  Callers
that expect ``SIGTERM`` (the chaos harness, batch schedulers) can opt in
to :func:`install_signal_cleanup`, which chains spill cleanup in front
of the existing handler — ``atexit`` alone does not run on a fatal
signal.

Fault sites: ``spill.write`` (actions *corrupt* — flip one payload byte
after the crc is computed, i.e. durable on-disk corruption — and *fail*)
and ``spill.read`` (actions *fail* and *corrupt* — in-memory flip before
the crc check, caught by the single re-read).  Context key ``run`` is
the fragment/run index, so plans can target a specific run
deterministically.

Observability: each fragment gets a ``localmr.fragment`` span with a
nested ``localmr.spill``; spilled volume feeds the always-on
``localmr.spill_bytes`` / ``localmr.spill_runs`` counters; the final lazy
merge runs under ``localmr.merge``; recovery feeds ``retry.count`` and
``localmr.recompute``.
"""

from __future__ import annotations

import atexit
import functools
import itertools
import operator
import os
import pickle
import shutil
import signal
import struct
import tempfile
import typing as _t
import zlib

from repro.errors import (
    FaultInjectedError,
    SpillCorruptionError,
    WorkloadError,
    is_retryable,
)
from repro.exec.chunks import FileChunk
from repro.obs import Observability
from repro.phoenix.sort import (
    decorate_sorted,
    merge_decorated_runs,
    sort_decorated_by_value_desc,
    undecorate,
)

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

__all__ = [
    "plan_fragments",
    "run_out_of_core",
    "write_run",
    "iter_run",
    "install_signal_cleanup",
    "live_spill_dirs",
]

#: max decorated entries per pickled spill block
SPILL_BLOCK_ENTRIES = 2048

#: default max values per pickled spill block — value-list entries (no
#: combiner) can each carry many values, so blocks must be value-weighted
#: for any memory bound to hold on list-heavy workloads
SPILL_BLOCK_VALUES = 8192

#: total merge read-ahead budget, in values, across ALL runs.  The merge
#: holds one block per run; with a fixed per-block cap that read-ahead is
#: ``n_runs x cap`` — and ``n_runs`` grows linearly with input size
#: (input/budget), which would silently make merge memory O(input).  The
#: run count is known before anything spills, so the per-block cap is
#: derived as ``MERGE_READAHEAD_VALUES / n_runs``: total read-ahead stays
#: constant however large the input gets.
MERGE_READAHEAD_VALUES = 8_192

#: floor on the derived per-block value cap (keeps pickle-call overhead
#: sane for jobs with hundreds of runs)
MIN_BLOCK_VALUES = 128

#: ``<length:u32><crc32:u32>`` frame in front of every spill block
_BLOCK_HEADER = struct.Struct("<II")

_SORT_KEY = operator.itemgetter(0)


# --------------------------------------------------------------------------
# Spill-directory leak guard
# --------------------------------------------------------------------------

#: spill directories currently on disk (insertion-ordered for determinism)
_SPILL_DIRS: dict[str, None] = {}
_CLEANUP_REGISTERED = False


def _cleanup_spill_dirs() -> None:
    """Remove every still-live spill directory (atexit / signal path)."""
    while _SPILL_DIRS:
        path, _ = _SPILL_DIRS.popitem()
        shutil.rmtree(path, ignore_errors=True)


def _track_spill_dir(path: str) -> None:
    global _CLEANUP_REGISTERED
    if not _CLEANUP_REGISTERED:
        atexit.register(_cleanup_spill_dirs)
        _CLEANUP_REGISTERED = True
    _SPILL_DIRS[path] = None


def _untrack_spill_dir(path: str) -> None:
    _SPILL_DIRS.pop(path, None)
    shutil.rmtree(path, ignore_errors=True)


def live_spill_dirs() -> list[str]:
    """Spill directories currently registered (empty when nothing leaks)."""
    return list(_SPILL_DIRS)


def install_signal_cleanup(
    signums: _t.Sequence[int] = (signal.SIGTERM,),
) -> list[int]:
    """Chain spill-dir cleanup in front of the current signal handlers.

    ``atexit`` never runs on a fatal signal, so long-running hosts that
    expect ``SIGTERM`` (batch schedulers, the chaos harness) opt in here.
    The previous handler is preserved: a callable handler is invoked
    after cleanup; the default disposition is re-delivered so the process
    still dies with the right signal status.  Returns the signals
    actually hooked (main-thread only — installing from elsewhere is a
    no-op).
    """
    installed: list[int] = []
    for signum in signums:
        try:
            previous = signal.getsignal(signum)

            def _handler(sig: int, frame: object, _prev: object = previous) -> None:
                _cleanup_spill_dirs()
                if callable(_prev) and _prev not in (signal.SIG_IGN, signal.SIG_DFL):
                    _prev(sig, frame)
                else:
                    signal.signal(sig, signal.SIG_DFL)
                    os.kill(os.getpid(), sig)

            signal.signal(signum, _handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            continue
        installed.append(signum)
    return installed


# --------------------------------------------------------------------------
# Fragment planning
# --------------------------------------------------------------------------


def plan_fragments(
    chunks: _t.Sequence[FileChunk], budget: int
) -> list[list[FileChunk]]:
    """Group consecutive chunks into fragments of at most ``budget`` bytes.

    Fragment order preserves chunk order (the merge relies on it for
    stable value-list ordering).  A single chunk larger than the budget
    becomes its own fragment — chunk granularity is the floor below which
    the input cannot be split without breaking records.
    """
    if budget < 1:
        raise WorkloadError(f"memory budget must be >= 1, got {budget}")
    fragments: list[list[FileChunk]] = []
    current: list[FileChunk] = []
    current_bytes = 0
    for chunk in chunks:
        if current and current_bytes + chunk.length > budget:
            fragments.append(current)
            current, current_bytes = [], 0
        current.append(chunk)
        current_bytes += chunk.length
    if current:
        fragments.append(current)
    return fragments


# --------------------------------------------------------------------------
# Run files
# --------------------------------------------------------------------------


def write_run(
    path: str,
    entries: _t.Iterable,
    block_values: int = SPILL_BLOCK_VALUES,
    faults: "FaultInjector | None" = None,
    run_index: int | None = None,
) -> int:
    """Spill one sorted decorated run as crc-framed pickled blocks.

    Returns bytes written.  Blocks are bounded both by entry count and by
    total carried values (``block_values``), so a reader never holds more
    than ~one block's worth of data per run regardless of how lopsided
    the value lists are.  Each block is an independent pickle (fresh
    memo) behind a ``<length, crc32>`` header, so readers can free a
    block's objects as soon as the merge moves past them and verify each
    block independently.

    Injected faults at ``spill.write``: *fail* raises before anything is
    written (retryable — the caller re-spills), *corrupt* flips one byte
    of the first block's payload after its crc is computed, i.e. durable
    on-disk corruption the reader's re-read cannot mask.
    """
    decision = None
    if faults is not None:
        decision = faults.check("spill.write", run=run_index)
        if decision is not None and decision.action in ("fail", "drop", "kill"):
            raise FaultInjectedError(
                "spill.write", f"injected spill-write failure (run {run_index})"
            )

    def frames() -> _t.Iterator[bytes]:
        nonlocal decision
        block: list = []
        weight = 0

        def frame() -> bytes:
            nonlocal decision
            payload = pickle.dumps(block, protocol=pickle.HIGHEST_PROTOCOL)
            header = _BLOCK_HEADER.pack(len(payload), zlib.crc32(payload))
            if decision is not None and decision.action == "corrupt":
                payload = faults.corrupt_bytes(payload, decision)
                decision = None
            return header + payload

        for entry in entries:
            block.append(entry)
            values = entry[2]
            weight += len(values) if isinstance(values, list) else 1
            if len(block) >= SPILL_BLOCK_ENTRIES or weight >= block_values:
                yield frame()
                block, weight = [], 0
        if block:
            yield frame()

    with open(path, "wb") as f:
        for data in frames():
            f.write(data)
        return f.tell()


def _read_block(f: _t.BinaryIO, path: str, block_index: int, run_index: int | None):
    """One framed block off ``f``; ``None`` at clean EOF.

    Returns ``(payload, crc, offset)`` — verification is the caller's so
    injected in-memory corruption can land between read and check.
    """
    offset = f.tell()
    header = f.read(_BLOCK_HEADER.size)
    if not header:
        return None
    if len(header) < _BLOCK_HEADER.size:
        raise SpillCorruptionError(path, block_index, run_index)
    length, crc = _BLOCK_HEADER.unpack(header)
    payload = f.read(length)
    if len(payload) < length:
        raise SpillCorruptionError(path, block_index, run_index)
    return payload, crc, offset


def iter_run(
    path: str,
    faults: "FaultInjector | None" = None,
    run_index: int | None = None,
) -> _t.Iterator:
    """Stream a spilled run back, one verified block resident at a time.

    Every block's crc32 is checked.  A mismatch gets exactly one re-read
    from disk (transient corruption between the page cache and this
    process vanishes on the second read); a block that fails twice is
    durably corrupt and raises :class:`~repro.errors.SpillCorruptionError`
    carrying the run index, which the engine answers by recomputing the
    fragment.

    Injected faults at ``spill.read``: *fail* raises at open (retryable —
    the merge restarts and the next attempt reads normally), *corrupt*
    flips a byte of the first block's payload in memory before the crc
    check — exercising the re-read path without touching the file.
    """
    corrupt = None
    if faults is not None:
        decision = faults.check("spill.read", run=run_index)
        if decision is not None:
            if decision.action == "corrupt":
                corrupt = decision
            else:
                raise FaultInjectedError(
                    "spill.read", f"injected spill-read failure (run {run_index})"
                )
    with open(path, "rb") as f:
        block_index = 0
        while True:
            got = _read_block(f, path, block_index, run_index)
            if got is None:
                return
            payload, crc, offset = got
            if corrupt is not None:
                # in-memory flip: the on-disk copy is fine, so the
                # re-read below recovers it
                payload = faults.corrupt_bytes(payload, corrupt)
                corrupt = None
            if zlib.crc32(payload) != crc:
                f.seek(offset)
                got = _read_block(f, path, block_index, run_index)
                if got is None:
                    raise SpillCorruptionError(path, block_index, run_index)
                payload, crc, _ = got
                if zlib.crc32(payload) != crc:
                    raise SpillCorruptionError(path, block_index, run_index)
            yield from pickle.loads(payload)
            block_index += 1


# --------------------------------------------------------------------------
# Merge-side folding / finalization
# --------------------------------------------------------------------------


def _fold_equal_keys(stream: _t.Iterator) -> _t.Iterator:
    """Fold adjacent equal-key entries of a sort-key-ordered stream.

    Value lists from later runs extend earlier ones, so each key's values
    keep global chunk order.  Distinct keys that share a ``repr`` (hence a
    sort key) stay distinct: within one sort-key group, grouping is by
    actual key equality, emitted in first-seen order — the same order the
    in-memory path's stable sort over dict-insertion order produces.
    """
    for sort_key, group in itertools.groupby(stream, key=_SORT_KEY):
        acc: dict[object, list] = {}
        for _skey, key, values in group:
            bucket = acc.get(key)
            if bucket is None:
                # entries come fresh off the unpickler; owning is safe
                acc[key] = values
            else:
                bucket.extend(values)
        for key, values in acc.items():
            yield sort_key, key, values


def _finalize_stream(
    stream: _t.Iterator,
    combine_fn: _t.Callable | None,
    reduce_fn: _t.Callable | None,
    sort_output: bool,
    params: dict,
) -> list[tuple[object, object]]:
    """Reduce/fold the merged stream per key; mirror of
    :func:`repro.phoenix.sort.finalize_merged_map` over a lazy stream.

    Value lists exist one key at a time; only the final (key, value)
    output is materialized.
    """
    folded = _fold_equal_keys(stream)
    if reduce_fn is not None:
        entries = [
            (skey, key, reduce_fn(key, values, params))
            for skey, key, values in folded
        ]
    elif combine_fn is not None:
        entries = [
            (skey, key, functools.reduce(combine_fn, values))
            for skey, key, values in folded
        ]
    else:
        entries = list(folded)
    if sort_output:
        entries = sort_decorated_by_value_desc(entries)
    return undecorate(entries)


# --------------------------------------------------------------------------
# The out-of-core driver
# --------------------------------------------------------------------------


def run_out_of_core(
    chunks: _t.Sequence[FileChunk],
    map_fragment: _t.Callable[[_t.Sequence[FileChunk]], dict],
    combine_fn: _t.Callable | None,
    reduce_fn: _t.Callable | None,
    sort_output: bool,
    params: dict,
    budget: int,
    obs: Observability,
    spill_dir: str | None = None,
    faults: "FaultInjector | None" = None,
    max_retries: int = 2,
    prefolded: bool = False,
) -> tuple[list[tuple[object, object]], int, int]:
    """Fragment-at-a-time map/combine/sort/spill, then lazy merge-reduce.

    ``map_fragment`` is the engine's chunk-mapping closure (pool or
    in-process) returning one merged ``key -> values`` map per fragment —
    or, with ``prefolded=True`` (requires ``combine_fn``), a
    *scalar-folded* ``key -> value`` map whose per-key combine is already
    complete (the streaming engine's :func:`~repro.phoenix.sort.fold_map_into`
    accumulator), which spills without the per-key reduce pass.
    Returns ``(output, n_fragments, spilled_bytes)``.  Spill files live
    under a fresh directory inside ``spill_dir`` (default: the system
    temp dir) and are removed whether the run succeeds or raises — with
    an ``atexit`` finalizer backstopping interpreter teardown.

    Recovery: a transient spill-write failure re-spills the fragment; a
    durably corrupt block found during the merge recomputes *that*
    fragment from its source chunks and restarts the merge; a transient
    merge-side failure just restarts the merge.  All three are bounded by
    ``max_retries`` per stage and classified via
    :func:`repro.errors.is_retryable` — permanent errors propagate at
    once.
    """
    fragments = plan_fragments(chunks, budget)
    # per-block value cap derived from the run count so the merge's total
    # read-ahead (one block per run) stays ~MERGE_READAHEAD_VALUES however
    # many runs the input needs
    block_values = max(
        MIN_BLOCK_VALUES,
        min(SPILL_BLOCK_VALUES, MERGE_READAHEAD_VALUES // len(fragments)),
    )
    tmpdir = tempfile.mkdtemp(prefix="localmr-spill-", dir=spill_dir)
    _track_spill_dir(tmpdir)
    spilled = 0

    def spill_fragment(i: int) -> str:
        """Map/combine/sort fragment ``i`` and spill its run (with bounded
        retry on transient write faults)."""
        nonlocal spilled
        fragment = fragments[i]
        with obs.span(
            "localmr.fragment", cat="localmr", track="localmr",
            index=i, chunks=len(fragment),
            bytes=sum(c.length for c in fragment),
        ):
            merged = map_fragment(fragment)
            if combine_fn is not None:
                # fragment-side combine: one folded partial per key
                # before spilling (licensed by the combiner contract;
                # halves spill volume).  The cross-run fold then hands
                # reduce per-fragment partial lists.  A prefolded
                # accumulator already holds the scalar; a value-list
                # accumulator folds here.
                if prefolded:
                    entries = decorate_sorted(
                        (k, [v]) for k, v in merged.items()
                    )
                else:
                    entries = decorate_sorted(
                        (k, [functools.reduce(combine_fn, vs)])
                        for k, vs in merged.items()
                    )
            else:
                entries = decorate_sorted(merged)
            del merged
            path = os.path.join(tmpdir, f"run-{i:05d}.spill")
            with obs.span(
                "localmr.spill", cat="localmr", track="localmr", index=i,
            ) as spill_sp:
                for attempt in range(max_retries + 1):
                    try:
                        nbytes = write_run(
                            path, entries, block_values,
                            faults=faults, run_index=i,
                        )
                        break
                    except Exception as exc:
                        if not is_retryable(exc) or attempt == max_retries:
                            raise
                        obs.count("retry.count")
                        obs.count("retry.spill_write")
                spill_sp.set(bytes=nbytes, entries=len(entries))
            del entries
            obs.count("localmr.spill_bytes", nbytes)
            obs.count("localmr.spill_runs")
            spilled += nbytes
        return path

    try:
        run_paths = [spill_fragment(i) for i in range(len(fragments))]
        for attempt in range(max_retries + 1):
            try:
                with obs.span(
                    "localmr.merge", cat="localmr", track="localmr",
                    runs=len(run_paths),
                ):
                    stream = merge_decorated_runs(
                        [
                            iter_run(p, faults=faults, run_index=j)
                            for j, p in enumerate(run_paths)
                        ]
                    )
                    output = _finalize_stream(
                        stream, combine_fn, reduce_fn, sort_output, params
                    )
                break
            except SpillCorruptionError as exc:
                if attempt == max_retries:
                    raise
                obs.count("retry.count")
                obs.count("retry.spill_merge")
                if exc.run_index is not None:
                    # the input file is the durable copy: rebuild the
                    # damaged run from its source chunks, then re-merge
                    obs.count("localmr.recompute")
                    run_paths[exc.run_index] = spill_fragment(exc.run_index)
            except Exception as exc:
                if not is_retryable(exc) or attempt == max_retries:
                    raise
                obs.count("retry.count")
                obs.count("retry.spill_merge")
        return output, len(fragments), spilled
    finally:
        _untrack_spill_dir(tmpdir)
