"""Out-of-core fragment mode: the Fig 6 loop on the real machine.

When a job's input exceeds the engine's memory budget, the streaming
engine runs the paper's partitioning extension for real: the chunk plan is
grouped into consecutive *fragments* no larger than the budget, each
fragment is mapped/combined/decorate-sorted on its own, and the fragment's
sorted run is spilled to disk as pickled blocks.  At any instant the
parent holds one fragment's accumulator — not the whole input's — which is
what bounds peak RSS.  After the last fragment, the spilled runs are
merged *lazily* (``heapq.merge`` via
:func:`repro.phoenix.sort.merge_decorated_runs`), equal keys are folded
across runs, and reduction happens per key as the stream drains, so the
merge phase holds O(runs) read-ahead blocks plus the final output.

Spill format: each run file is a sequence of *independent* pickled
blocks (lists of decorated ``(sort_key, key, values)`` entries, bounded
by :data:`SPILL_BLOCK_ENTRIES` and :data:`SPILL_BLOCK_VALUES`), one
``pickle.dump`` per block.  Independence matters: a pickler/unpickler
pair shared across blocks memoizes every object it has ever seen, so a
shared reader would keep the *entire* run resident while the merge
drains it — silently un-bounding the memory the spill exists to bound.
With per-block pickles the reader holds one block's objects per run at a
time.  Run files live in a fresh temporary directory that is removed on
success *and* on failure.

Observability: each fragment gets a ``localmr.fragment`` span with a
nested ``localmr.spill``; spilled volume feeds the always-on
``localmr.spill_bytes`` / ``localmr.spill_runs`` counters; the final lazy
merge runs under ``localmr.merge``.
"""

from __future__ import annotations

import functools
import itertools
import operator
import os
import pickle
import shutil
import tempfile
import typing as _t

from repro.errors import WorkloadError
from repro.exec.chunks import FileChunk
from repro.obs import Observability
from repro.phoenix.sort import (
    decorate_sorted,
    merge_decorated_runs,
    sort_decorated_by_value_desc,
    undecorate,
)

__all__ = ["plan_fragments", "run_out_of_core", "write_run", "iter_run"]

#: max decorated entries per pickled spill block
SPILL_BLOCK_ENTRIES = 2048

#: default max values per pickled spill block — value-list entries (no
#: combiner) can each carry many values, so blocks must be value-weighted
#: for any memory bound to hold on list-heavy workloads
SPILL_BLOCK_VALUES = 8192

#: total merge read-ahead budget, in values, across ALL runs.  The merge
#: holds one block per run; with a fixed per-block cap that read-ahead is
#: ``n_runs x cap`` — and ``n_runs`` grows linearly with input size
#: (input/budget), which would silently make merge memory O(input).  The
#: run count is known before anything spills, so the per-block cap is
#: derived as ``MERGE_READAHEAD_VALUES / n_runs``: total read-ahead stays
#: constant however large the input gets.
MERGE_READAHEAD_VALUES = 8_192

#: floor on the derived per-block value cap (keeps pickle-call overhead
#: sane for jobs with hundreds of runs)
MIN_BLOCK_VALUES = 128

_SORT_KEY = operator.itemgetter(0)


def plan_fragments(
    chunks: _t.Sequence[FileChunk], budget: int
) -> list[list[FileChunk]]:
    """Group consecutive chunks into fragments of at most ``budget`` bytes.

    Fragment order preserves chunk order (the merge relies on it for
    stable value-list ordering).  A single chunk larger than the budget
    becomes its own fragment — chunk granularity is the floor below which
    the input cannot be split without breaking records.
    """
    if budget < 1:
        raise WorkloadError(f"memory budget must be >= 1, got {budget}")
    fragments: list[list[FileChunk]] = []
    current: list[FileChunk] = []
    current_bytes = 0
    for chunk in chunks:
        if current and current_bytes + chunk.length > budget:
            fragments.append(current)
            current, current_bytes = [], 0
        current.append(chunk)
        current_bytes += chunk.length
    if current:
        fragments.append(current)
    return fragments


def write_run(
    path: str, entries: _t.Iterable, block_values: int = SPILL_BLOCK_VALUES
) -> int:
    """Spill one sorted decorated run as pickled blocks; returns bytes written.

    Blocks are bounded both by entry count and by total carried values
    (``block_values``), so a reader never holds more than ~one block's
    worth of data per run regardless of how lopsided the value lists
    are.  Each block is an independent pickle (fresh memo), so readers
    can free a block's objects as soon as the merge moves past them.
    """
    with open(path, "wb") as f:
        block: list = []
        weight = 0
        for entry in entries:
            block.append(entry)
            values = entry[2]
            weight += len(values) if isinstance(values, list) else 1
            if len(block) >= SPILL_BLOCK_ENTRIES or weight >= block_values:
                pickle.dump(block, f, protocol=pickle.HIGHEST_PROTOCOL)
                block, weight = [], 0
        if block:
            pickle.dump(block, f, protocol=pickle.HIGHEST_PROTOCOL)
        return f.tell()


def iter_run(path: str) -> _t.Iterator:
    """Stream a spilled run back, one block resident at a time."""
    with open(path, "rb") as f:
        while True:
            try:
                block = pickle.load(f)
            except EOFError:
                return
            yield from block


def _fold_equal_keys(stream: _t.Iterator) -> _t.Iterator:
    """Fold adjacent equal-key entries of a sort-key-ordered stream.

    Value lists from later runs extend earlier ones, so each key's values
    keep global chunk order.  Distinct keys that share a ``repr`` (hence a
    sort key) stay distinct: within one sort-key group, grouping is by
    actual key equality, emitted in first-seen order — the same order the
    in-memory path's stable sort over dict-insertion order produces.
    """
    for sort_key, group in itertools.groupby(stream, key=_SORT_KEY):
        acc: dict[object, list] = {}
        for _skey, key, values in group:
            bucket = acc.get(key)
            if bucket is None:
                # entries come fresh off the unpickler; owning is safe
                acc[key] = values
            else:
                bucket.extend(values)
        for key, values in acc.items():
            yield sort_key, key, values


def _finalize_stream(
    stream: _t.Iterator,
    combine_fn: _t.Callable | None,
    reduce_fn: _t.Callable | None,
    sort_output: bool,
    params: dict,
) -> list[tuple[object, object]]:
    """Reduce/fold the merged stream per key; mirror of
    :func:`repro.phoenix.sort.finalize_merged_map` over a lazy stream.

    Value lists exist one key at a time; only the final (key, value)
    output is materialized.
    """
    folded = _fold_equal_keys(stream)
    if reduce_fn is not None:
        entries = [
            (skey, key, reduce_fn(key, values, params))
            for skey, key, values in folded
        ]
    elif combine_fn is not None:
        entries = [
            (skey, key, functools.reduce(combine_fn, values))
            for skey, key, values in folded
        ]
    else:
        entries = list(folded)
    if sort_output:
        entries = sort_decorated_by_value_desc(entries)
    return undecorate(entries)


def run_out_of_core(
    chunks: _t.Sequence[FileChunk],
    map_fragment: _t.Callable[[_t.Sequence[FileChunk]], dict],
    combine_fn: _t.Callable | None,
    reduce_fn: _t.Callable | None,
    sort_output: bool,
    params: dict,
    budget: int,
    obs: Observability,
    spill_dir: str | None = None,
) -> tuple[list[tuple[object, object]], int, int]:
    """Fragment-at-a-time map/combine/sort/spill, then lazy merge-reduce.

    ``map_fragment`` is the engine's chunk-mapping closure (pool or
    in-process) returning one merged ``key -> values`` map per fragment.
    Returns ``(output, n_fragments, spilled_bytes)``.  Spill files live
    under a fresh directory inside ``spill_dir`` (default: the system
    temp dir) and are removed whether the run succeeds or raises.
    """
    fragments = plan_fragments(chunks, budget)
    # per-block value cap derived from the run count so the merge's total
    # read-ahead (one block per run) stays ~MERGE_READAHEAD_VALUES however
    # many runs the input needs
    block_values = max(
        MIN_BLOCK_VALUES,
        min(SPILL_BLOCK_VALUES, MERGE_READAHEAD_VALUES // len(fragments)),
    )
    tmpdir = tempfile.mkdtemp(prefix="localmr-spill-", dir=spill_dir)
    spilled = 0
    try:
        run_paths: list[str] = []
        for i, fragment in enumerate(fragments):
            with obs.span(
                "localmr.fragment", cat="localmr", track="localmr",
                index=i, chunks=len(fragment),
                bytes=sum(c.length for c in fragment),
            ):
                merged = map_fragment(fragment)
                if combine_fn is not None:
                    # fragment-side combine: fold each key's per-batch
                    # partials to one partial before spilling (licensed by
                    # the combiner contract; halves spill volume).  The
                    # cross-run fold then hands reduce per-fragment
                    # partial lists.
                    entries = decorate_sorted(
                        (k, [functools.reduce(combine_fn, vs)])
                        for k, vs in merged.items()
                    )
                else:
                    entries = decorate_sorted(merged)
                del merged
                path = os.path.join(tmpdir, f"run-{i:05d}.spill")
                with obs.span(
                    "localmr.spill", cat="localmr", track="localmr", index=i,
                ) as spill_sp:
                    nbytes = write_run(path, entries, block_values)
                    spill_sp.set(bytes=nbytes, entries=len(entries))
                del entries
                obs.count("localmr.spill_bytes", nbytes)
                obs.count("localmr.spill_runs")
                spilled += nbytes
                run_paths.append(path)
        with obs.span(
            "localmr.merge", cat="localmr", track="localmr", runs=len(run_paths),
        ):
            stream = merge_decorated_runs([iter_run(p) for p in run_paths])
            output = _finalize_stream(
                stream, combine_fn, reduce_fn, sort_output, params
            )
        return output, len(fragments), spilled
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
