"""Out-of-core fragment mode: the Fig 6 loop on the real machine.

When a job's input exceeds the engine's memory budget, the streaming
engine runs the paper's partitioning extension for real: the chunk plan is
grouped into consecutive *fragments* no larger than the budget, each
fragment is mapped/combined/decorate-sorted on its own, and the fragment's
sorted run is spilled to disk as pickled blocks.  At any instant the
parent holds one fragment's accumulator — not the whole input's — which is
what bounds peak RSS.  After the last fragment, the spilled runs are
merged *lazily* (``heapq.merge`` via
:func:`repro.phoenix.sort.merge_decorated_runs`), equal keys are folded
across runs, and reduction happens per key as the stream drains, so the
merge phase holds O(runs) read-ahead blocks plus the final output.

Spill format: each run file is a sequence of *independent* pickled
blocks (lists of decorated ``(sort_key, key, values)`` entries, bounded
by :data:`SPILL_BLOCK_ENTRIES` and :data:`SPILL_BLOCK_VALUES`).
Independence matters: a pickler/unpickler pair shared across blocks
memoizes every object it has ever seen, so a shared reader would keep the
*entire* run resident while the merge drains it — silently un-bounding
the memory the spill exists to bound.  With per-block pickles the reader
holds one block's objects per run at a time.

Integrity: every block is framed ``<length:u32><crc32:u32><payload>``
(little-endian) and verified on read.  A crc mismatch is first answered
by re-reading the block once — transient in-memory or transport
corruption disappears on the second read — and only then escalated as
:class:`~repro.errors.SpillCorruptionError`, at which point
:func:`run_out_of_core` *recomputes the damaged fragment* from its
source chunks and re-spills it before restarting the merge: the input
file is the durable copy, so spill corruption costs time, never answers.

Burst-buffer spill: with a :class:`~repro.tier.store.TieredStore` the
runs live in the tier (memory level first, background write-back to the
tier's SSD directory) instead of plain files — same crc framing, built
by :func:`dump_run` and drained by :func:`iter_run_bytes`.  Runs are
keyed by job content identity, so a repeat job over an unchanged input
reuses every still-resident run and skips its map/combine/sort/spill
entirely — the warm-tier speedup the burst buffer exists for.  The tier
may *lose* entries (dropped write-back, eviction, fault injection);
every loss is detected (presence sweep before each merge attempt, crc on
read) and answered by recomputing the fragment from the input file.

Leak safety: run files live in a fresh temporary directory removed on
success *and* on failure (``finally``), and every live spill directory
is additionally registered with an ``atexit`` finalizer so an exception
path that never reaches the ``finally`` (interpreter teardown,
``KeyboardInterrupt`` in a signal-unsafe spot) still cleans up.  Callers
that expect ``SIGTERM`` (the chaos harness, batch schedulers) can opt in
to :func:`install_signal_cleanup`, which chains spill cleanup in front
of the existing handler — ``atexit`` alone does not run on a fatal
signal.

Fault sites: ``spill.write`` (actions *corrupt* — flip one payload byte
after the crc is computed, i.e. durable on-disk corruption — and *fail*)
and ``spill.read`` (actions *fail* and *corrupt* — in-memory flip before
the crc check, caught by the single re-read).  Context key ``run`` is
the fragment/run index, so plans can target a specific run
deterministically.

Observability: each fragment gets a ``localmr.fragment`` span with a
nested ``localmr.spill``; spilled volume feeds the always-on
``localmr.spill_bytes`` / ``localmr.spill_runs`` counters; the final lazy
merge runs under ``localmr.merge``; recovery feeds ``retry.count`` and
``localmr.recompute``.
"""

from __future__ import annotations

import atexit
import functools
import io
import itertools
import operator
import os
import pickle
import shutil
import signal
import struct
import tempfile
import typing as _t
import zlib

from repro.errors import (
    FaultInjectedError,
    SpillCorruptionError,
    WorkloadError,
    is_retryable,
)
from repro.exec.chunks import FileChunk
from repro.obs import Observability
from repro.phoenix.sort import (
    decorate_sorted,
    merge_decorated_runs,
    sort_decorated_by_value_desc,
    undecorate,
)

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.tier.prefetch import ReadaheadPrefetcher
    from repro.tier.store import TieredStore

__all__ = [
    "plan_fragments",
    "run_out_of_core",
    "write_run",
    "dump_run",
    "iter_run",
    "iter_run_bytes",
    "install_signal_cleanup",
    "live_spill_dirs",
]

#: max decorated entries per pickled spill block
SPILL_BLOCK_ENTRIES = 2048

#: default max values per pickled spill block — value-list entries (no
#: combiner) can each carry many values, so blocks must be value-weighted
#: for any memory bound to hold on list-heavy workloads
SPILL_BLOCK_VALUES = 8192

#: total merge read-ahead budget, in values, across ALL runs.  The merge
#: holds one block per run; with a fixed per-block cap that read-ahead is
#: ``n_runs x cap`` — and ``n_runs`` grows linearly with input size
#: (input/budget), which would silently make merge memory O(input).  The
#: run count is known before anything spills, so the per-block cap is
#: derived as ``MERGE_READAHEAD_VALUES / n_runs``: total read-ahead stays
#: constant however large the input gets.
MERGE_READAHEAD_VALUES = 8_192

#: floor on the derived per-block value cap (keeps pickle-call overhead
#: sane for jobs with hundreds of runs)
MIN_BLOCK_VALUES = 128

#: ``<length:u32><crc32:u32>`` frame in front of every spill block
_BLOCK_HEADER = struct.Struct("<II")

_SORT_KEY = operator.itemgetter(0)


# --------------------------------------------------------------------------
# Spill-directory leak guard
# --------------------------------------------------------------------------

#: spill directories currently on disk (insertion-ordered for determinism)
_SPILL_DIRS: dict[str, None] = {}
_CLEANUP_REGISTERED = False


def _cleanup_spill_dirs() -> None:
    """Remove every still-live spill directory (atexit / signal path)."""
    while _SPILL_DIRS:
        path, _ = _SPILL_DIRS.popitem()
        shutil.rmtree(path, ignore_errors=True)


def _track_spill_dir(path: str) -> None:
    global _CLEANUP_REGISTERED
    if not _CLEANUP_REGISTERED:
        atexit.register(_cleanup_spill_dirs)
        _CLEANUP_REGISTERED = True
    _SPILL_DIRS[path] = None


def _untrack_spill_dir(path: str) -> None:
    _SPILL_DIRS.pop(path, None)
    shutil.rmtree(path, ignore_errors=True)


def live_spill_dirs() -> list[str]:
    """Spill directories currently registered (empty when nothing leaks)."""
    return list(_SPILL_DIRS)


def install_signal_cleanup(
    signums: _t.Sequence[int] = (signal.SIGTERM,),
) -> list[int]:
    """Chain spill-dir cleanup in front of the current signal handlers.

    ``atexit`` never runs on a fatal signal, so long-running hosts that
    expect ``SIGTERM`` (batch schedulers, the chaos harness) opt in here.
    The previous handler is preserved: a callable handler is invoked
    after cleanup; the default disposition is re-delivered so the process
    still dies with the right signal status.  Returns the signals
    actually hooked (main-thread only — installing from elsewhere is a
    no-op).
    """
    installed: list[int] = []
    for signum in signums:
        try:
            previous = signal.getsignal(signum)

            def _handler(sig: int, frame: object, _prev: object = previous) -> None:
                _cleanup_spill_dirs()
                if callable(_prev) and _prev not in (signal.SIG_IGN, signal.SIG_DFL):
                    _prev(sig, frame)
                else:
                    signal.signal(sig, signal.SIG_DFL)
                    os.kill(os.getpid(), sig)

            signal.signal(signum, _handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            continue
        installed.append(signum)
    return installed


# --------------------------------------------------------------------------
# Fragment planning
# --------------------------------------------------------------------------


def plan_fragments(
    chunks: _t.Sequence[FileChunk], budget: int
) -> list[list[FileChunk]]:
    """Group consecutive chunks into fragments of at most ``budget`` bytes.

    Fragment order preserves chunk order (the merge relies on it for
    stable value-list ordering).  A single chunk larger than the budget
    becomes its own fragment — chunk granularity is the floor below which
    the input cannot be split without breaking records.
    """
    if budget < 1:
        raise WorkloadError(f"memory budget must be >= 1, got {budget}")
    fragments: list[list[FileChunk]] = []
    current: list[FileChunk] = []
    current_bytes = 0
    for chunk in chunks:
        if current and current_bytes + chunk.length > budget:
            fragments.append(current)
            current, current_bytes = [], 0
        current.append(chunk)
        current_bytes += chunk.length
    if current:
        fragments.append(current)
    return fragments


# --------------------------------------------------------------------------
# Run files
# --------------------------------------------------------------------------


def _framed_blocks(
    entries: _t.Iterable,
    block_values: int,
    faults: "FaultInjector | None",
    run_index: int | None,
) -> _t.Iterator[bytes]:
    """Frame ``entries`` into crc-headed pickled blocks.

    The ``spill.write`` fault decision is made *eagerly* (a fail raises
    before the caller has written anything); a corrupt decision flips one
    byte of the first block's payload after its crc is computed.  Shared
    by :func:`write_run` (file spill) and :func:`dump_run` (tier spill).
    """
    decision = None
    if faults is not None:
        decision = faults.check("spill.write", run=run_index)
        if decision is not None and decision.action in ("fail", "drop", "kill"):
            raise FaultInjectedError(
                "spill.write", f"injected spill-write failure (run {run_index})"
            )

    def frames() -> _t.Iterator[bytes]:
        nonlocal decision
        block: list = []
        weight = 0

        def frame() -> bytes:
            nonlocal decision
            payload = pickle.dumps(block, protocol=pickle.HIGHEST_PROTOCOL)
            header = _BLOCK_HEADER.pack(len(payload), zlib.crc32(payload))
            if decision is not None and decision.action == "corrupt":
                payload = faults.corrupt_bytes(payload, decision)
                decision = None
            return header + payload

        for entry in entries:
            block.append(entry)
            values = entry[2]
            weight += len(values) if isinstance(values, list) else 1
            if len(block) >= SPILL_BLOCK_ENTRIES or weight >= block_values:
                yield frame()
                block, weight = [], 0
        if block:
            yield frame()

    return frames()


def write_run(
    path: str,
    entries: _t.Iterable,
    block_values: int = SPILL_BLOCK_VALUES,
    faults: "FaultInjector | None" = None,
    run_index: int | None = None,
) -> int:
    """Spill one sorted decorated run as crc-framed pickled blocks.

    Returns bytes written.  Blocks are bounded both by entry count and by
    total carried values (``block_values``), so a reader never holds more
    than ~one block's worth of data per run regardless of how lopsided
    the value lists are.  Each block is an independent pickle (fresh
    memo) behind a ``<length, crc32>`` header, so readers can free a
    block's objects as soon as the merge moves past them and verify each
    block independently.

    Injected faults at ``spill.write``: *fail* raises before anything is
    written (retryable — the caller re-spills), *corrupt* flips one byte
    of the first block's payload after its crc is computed, i.e. durable
    on-disk corruption the reader's re-read cannot mask.
    """
    frames = _framed_blocks(entries, block_values, faults, run_index)
    with open(path, "wb") as f:
        for data in frames:
            f.write(data)
        return f.tell()


def dump_run(
    entries: _t.Iterable,
    block_values: int = SPILL_BLOCK_VALUES,
    faults: "FaultInjector | None" = None,
    run_index: int | None = None,
) -> bytes:
    """The run's spill bytes in memory — same framing as :func:`write_run`.

    Used by the tier path: the framed run goes into a
    :class:`~repro.tier.store.TieredStore` instead of a file, keeping the
    crc framing (and its corruption detection) identical in both homes.
    """
    return b"".join(_framed_blocks(entries, block_values, faults, run_index))


def _read_block(f: _t.BinaryIO, path: str, block_index: int, run_index: int | None):
    """One framed block off ``f``; ``None`` at clean EOF.

    Returns ``(payload, crc, offset)`` — verification is the caller's so
    injected in-memory corruption can land between read and check.
    """
    offset = f.tell()
    header = f.read(_BLOCK_HEADER.size)
    if not header:
        return None
    if len(header) < _BLOCK_HEADER.size:
        raise SpillCorruptionError(path, block_index, run_index)
    length, crc = _BLOCK_HEADER.unpack(header)
    payload = f.read(length)
    if len(payload) < length:
        raise SpillCorruptionError(path, block_index, run_index)
    return payload, crc, offset


def iter_run(
    path: str,
    faults: "FaultInjector | None" = None,
    run_index: int | None = None,
) -> _t.Iterator:
    """Stream a spilled run back, one verified block resident at a time.

    Every block's crc32 is checked.  A mismatch gets exactly one re-read
    from disk (transient corruption between the page cache and this
    process vanishes on the second read); a block that fails twice is
    durably corrupt and raises :class:`~repro.errors.SpillCorruptionError`
    carrying the run index, which the engine answers by recomputing the
    fragment.

    Injected faults at ``spill.read``: *fail* raises at open (retryable —
    the merge restarts and the next attempt reads normally), *corrupt*
    flips a byte of the first block's payload in memory before the crc
    check — exercising the re-read path without touching the file.
    """
    with open(path, "rb") as f:
        yield from _iter_blocks(f, path, faults, run_index)


def iter_run_bytes(
    data: bytes,
    faults: "FaultInjector | None" = None,
    run_index: int | None = None,
    name: str = "<tier-run>",
) -> _t.Iterator:
    """Stream a run held in memory (a tier ``get()`` payload).

    The verification pipeline is identical to :func:`iter_run` — crc per
    block, one re-read (which for an in-memory buffer re-reads the same
    bytes, so *durable* corruption such as a tier-corrupted payload fails
    twice and raises), then :class:`~repro.errors.SpillCorruptionError`
    carrying the run index for the engine's recompute path.
    """
    yield from _iter_blocks(io.BytesIO(data), name, faults, run_index)


def _iter_blocks(
    f: _t.BinaryIO,
    path: str,
    faults: "FaultInjector | None",
    run_index: int | None,
) -> _t.Iterator:
    corrupt = None
    if faults is not None:
        decision = faults.check("spill.read", run=run_index)
        if decision is not None:
            if decision.action == "corrupt":
                corrupt = decision
            else:
                raise FaultInjectedError(
                    "spill.read", f"injected spill-read failure (run {run_index})"
                )
    block_index = 0
    while True:
        got = _read_block(f, path, block_index, run_index)
        if got is None:
            return
        payload, crc, offset = got
        if corrupt is not None:
            # in-memory flip: the on-disk copy is fine, so the
            # re-read below recovers it
            payload = faults.corrupt_bytes(payload, corrupt)
            corrupt = None
        if zlib.crc32(payload) != crc:
            f.seek(offset)
            got = _read_block(f, path, block_index, run_index)
            if got is None:
                raise SpillCorruptionError(path, block_index, run_index)
            payload, crc, _ = got
            if zlib.crc32(payload) != crc:
                raise SpillCorruptionError(path, block_index, run_index)
        yield from pickle.loads(payload)
        block_index += 1


# --------------------------------------------------------------------------
# Merge-side folding / finalization
# --------------------------------------------------------------------------


def _fold_equal_keys(stream: _t.Iterator) -> _t.Iterator:
    """Fold adjacent equal-key entries of a sort-key-ordered stream.

    Value lists from later runs extend earlier ones, so each key's values
    keep global chunk order.  Distinct keys that share a ``repr`` (hence a
    sort key) stay distinct: within one sort-key group, grouping is by
    actual key equality, emitted in first-seen order — the same order the
    in-memory path's stable sort over dict-insertion order produces.
    """
    for sort_key, group in itertools.groupby(stream, key=_SORT_KEY):
        acc: dict[object, list] = {}
        for _skey, key, values in group:
            bucket = acc.get(key)
            if bucket is None:
                # entries come fresh off the unpickler; owning is safe
                acc[key] = values
            else:
                bucket.extend(values)
        for key, values in acc.items():
            yield sort_key, key, values


def _finalize_stream(
    stream: _t.Iterator,
    combine_fn: _t.Callable | None,
    reduce_fn: _t.Callable | None,
    sort_output: bool,
    params: dict,
) -> list[tuple[object, object]]:
    """Reduce/fold the merged stream per key; mirror of
    :func:`repro.phoenix.sort.finalize_merged_map` over a lazy stream.

    Value lists exist one key at a time; only the final (key, value)
    output is materialized.
    """
    folded = _fold_equal_keys(stream)
    if reduce_fn is not None:
        entries = [
            (skey, key, reduce_fn(key, values, params))
            for skey, key, values in folded
        ]
    elif combine_fn is not None:
        entries = [
            (skey, key, functools.reduce(combine_fn, values))
            for skey, key, values in folded
        ]
    else:
        entries = list(folded)
    if sort_output:
        entries = sort_decorated_by_value_desc(entries)
    return undecorate(entries)


# --------------------------------------------------------------------------
# The out-of-core driver
# --------------------------------------------------------------------------


def run_out_of_core(
    chunks: _t.Sequence[FileChunk],
    map_fragment: _t.Callable[[_t.Sequence[FileChunk]], dict],
    combine_fn: _t.Callable | None,
    reduce_fn: _t.Callable | None,
    sort_output: bool,
    params: dict,
    budget: int,
    obs: Observability,
    spill_dir: str | None = None,
    faults: "FaultInjector | None" = None,
    max_retries: int = 2,
    prefolded: bool = False,
    tier: "TieredStore | None" = None,
    tier_key: str | None = None,
    prefetcher: "ReadaheadPrefetcher | None" = None,
) -> tuple[list[tuple[object, object]], int, int]:
    """Fragment-at-a-time map/combine/sort/spill, then lazy merge-reduce.

    ``map_fragment`` is the engine's chunk-mapping closure (pool or
    in-process) returning one merged ``key -> values`` map per fragment —
    or, with ``prefolded=True`` (requires ``combine_fn``), a
    *scalar-folded* ``key -> value`` map whose per-key combine is already
    complete (the streaming engine's :func:`~repro.phoenix.sort.fold_map_into`
    accumulator), which spills without the per-key reduce pass.
    Returns ``(output, n_fragments, spilled_bytes)``.  Spill files live
    under a fresh directory inside ``spill_dir`` (default: the system
    temp dir) and are removed whether the run succeeds or raises — with
    an ``atexit`` finalizer backstopping interpreter teardown.

    With a ``tier`` (:class:`~repro.tier.store.TieredStore`), runs go
    into the burst buffer instead of plain spill files: each fragment's
    framed run is ``put()`` under ``{tier_key}/bv{block_values}/run-i``
    and the merge streams it back with :func:`iter_run_bytes`.  Because
    ``tier_key`` encodes the *content identity* of the job (file stat,
    chunk plan, callables, params — the caller's responsibility), a warm
    tier lets a repeat job skip map+combine+sort+spill for every run it
    still holds (``tier.spill.reuse``).  The tier is allowed to lie about
    durability: an entry lost to a dropped write-back is detected before
    each merge attempt (``contains``) and recomputed from the input file;
    a corrupted payload fails the crc check, is invalidated and
    recomputed.  Loss costs time, never answers.  ``prefetcher`` is
    advised as each fragment starts so the next fragment's chunks warm
    the page cache while this one maps.

    Recovery: a transient spill-write failure re-spills the fragment; a
    durably corrupt block found during the merge recomputes *that*
    fragment from its source chunks and restarts the merge; a transient
    merge-side failure just restarts the merge.  All three are bounded by
    ``max_retries`` per stage and classified via
    :func:`repro.errors.is_retryable` — permanent errors propagate at
    once.
    """
    fragments = plan_fragments(chunks, budget)
    # per-block value cap derived from the run count so the merge's total
    # read-ahead (one block per run) stays ~MERGE_READAHEAD_VALUES however
    # many runs the input needs
    block_values = max(
        MIN_BLOCK_VALUES,
        min(SPILL_BLOCK_VALUES, MERGE_READAHEAD_VALUES // len(fragments)),
    )
    tmpdir = None
    if tier is None:
        tmpdir = tempfile.mkdtemp(prefix="localmr-spill-", dir=spill_dir)
        _track_spill_dir(tmpdir)
    spilled = 0
    #: fragment indices whose current run lives in a plain spill file
    #: rather than the tier (the durable fallback for merge recovery)
    on_disk: set[int] = set()

    def ensure_tmpdir() -> str:
        nonlocal tmpdir
        if tmpdir is None:
            tmpdir = tempfile.mkdtemp(prefix="localmr-spill-", dir=spill_dir)
            _track_spill_dir(tmpdir)
        return tmpdir

    def run_source(i: int) -> str:
        if tier is not None and i not in on_disk:
            # block_values is part of the identity: a different merge
            # read-ahead derivation produces differently-framed runs
            return f"{tier_key or 'localmr'}/bv{block_values}/run-{i:05d}"
        return os.path.join(ensure_tmpdir(), f"run-{i:05d}.spill")

    def spill_fragment(i: int, to_disk: bool = False) -> str:
        """Map/combine/sort fragment ``i`` and spill its run (with bounded
        retry on transient write faults).  With a warm tier the whole
        pipeline is skipped when the run is already resident.

        ``to_disk`` forces the run into a plain spill file even when a
        tier is attached: the durable fallback for merge recovery, so a
        tier too small to hold the whole run set (each recompute's
        ``put`` can evict another run it is merging with) converges
        instead of burning every retry on capacity churn.
        """
        nonlocal spilled
        if prefetcher is not None:
            prefetcher.advise(i)
        if to_disk:
            on_disk.add(i)
        source = run_source(i)
        use_tier = tier is not None and i not in on_disk
        if use_tier and tier.contains(source):
            # warm run: the tier still holds this fragment's spill from a
            # previous identical job — nothing to map, nothing to write
            obs.count("tier.spill.reuse")
            return source
        fragment = fragments[i]
        with obs.span(
            "localmr.fragment", cat="localmr", track="localmr",
            index=i, chunks=len(fragment),
            bytes=sum(c.length for c in fragment),
        ):
            merged = map_fragment(fragment)
            if combine_fn is not None:
                # fragment-side combine: one folded partial per key
                # before spilling (licensed by the combiner contract;
                # halves spill volume).  The cross-run fold then hands
                # reduce per-fragment partial lists.  A prefolded
                # accumulator already holds the scalar; a value-list
                # accumulator folds here.
                if prefolded:
                    entries = decorate_sorted(
                        (k, [v]) for k, v in merged.items()
                    )
                else:
                    entries = decorate_sorted(
                        (k, [functools.reduce(combine_fn, vs)])
                        for k, vs in merged.items()
                    )
            else:
                entries = decorate_sorted(merged)
            del merged
            with obs.span(
                "localmr.spill", cat="localmr", track="localmr", index=i,
            ) as spill_sp:
                for attempt in range(max_retries + 1):
                    try:
                        if use_tier:
                            data = dump_run(
                                entries, block_values,
                                faults=faults, run_index=i,
                            )
                            tier.put(source, data)
                            nbytes = len(data)
                        else:
                            nbytes = write_run(
                                source, entries, block_values,
                                faults=faults, run_index=i,
                            )
                        break
                    except Exception as exc:
                        if not is_retryable(exc) or attempt == max_retries:
                            raise
                        obs.count("retry.count")
                        obs.count("retry.spill_write")
                spill_sp.set(bytes=nbytes, entries=len(entries))
            del entries
            obs.count("localmr.spill_bytes", nbytes)
            obs.count("localmr.spill_runs")
            spilled += nbytes
        return source

    def open_run(source: str, j: int) -> _t.Iterator:
        if tier is None or j in on_disk:
            return iter_run(source, faults=faults, run_index=j)

        def from_tier() -> _t.Iterator:
            data = _t.cast("TieredStore", tier).get(source)
            if data is None:
                # the tier lost the run between the pre-merge sweep and
                # this pull (fault-degraded read); recompute it
                raise SpillCorruptionError(source, 0, j)
            yield from iter_run_bytes(data, faults=faults, run_index=j, name=source)

        return from_tier()

    try:
        run_sources = [spill_fragment(i) for i in range(len(fragments))]
        for attempt in range(max_retries + 1):
            try:
                if tier is not None:
                    # sweep for write-back losses before paying for the
                    # merge: every lost run recomputes here, so a burst of
                    # losses costs one merge attempt, not one retry each
                    for j, src in enumerate(run_sources):
                        if j not in on_disk and not tier.contains(src):
                            obs.count("localmr.recompute")
                            obs.count("tier.spill.lost")
                            # retry attempts recompute onto durable disk:
                            # re-putting into a thrashing tier could evict
                            # a sibling run and spin the merge forever
                            run_sources[j] = spill_fragment(
                                j, to_disk=attempt > 0
                            )
                with obs.span(
                    "localmr.merge", cat="localmr", track="localmr",
                    runs=len(run_sources),
                ):
                    stream = merge_decorated_runs(
                        [
                            open_run(src, j)
                            for j, src in enumerate(run_sources)
                        ]
                    )
                    output = _finalize_stream(
                        stream, combine_fn, reduce_fn, sort_output, params
                    )
                break
            except SpillCorruptionError as exc:
                if attempt == max_retries:
                    raise
                obs.count("retry.count")
                obs.count("retry.spill_merge")
                if exc.run_index is not None:
                    # the input file is the durable copy: rebuild the
                    # damaged run from its source chunks, then re-merge
                    obs.count("localmr.recompute")
                    if tier is not None and exc.run_index not in on_disk:
                        tier.invalidate(run_sources[exc.run_index])
                    run_sources[exc.run_index] = spill_fragment(
                        exc.run_index, to_disk=attempt > 0
                    )
            except Exception as exc:
                if not is_retryable(exc) or attempt == max_retries:
                    raise
                obs.count("retry.count")
                obs.count("retry.spill_merge")
        return output, len(fragments), spilled
    finally:
        if tmpdir is not None:
            _untrack_spill_dir(tmpdir)
