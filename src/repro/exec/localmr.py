"""LocalMapReduce: the McSD programming model on the real machine.

Workers are ``multiprocessing`` processes pulling integrity-checked file
chunks; per-chunk map outputs are combined in the worker (keeping IPC
small), reduced and merged in the parent.  The API mirrors
:class:`~repro.phoenix.api.MapReduceSpec` so the same ``map``/``reduce``/
``merge`` callbacks drive both the simulator and real files — they must be
module-level picklable functions (a multiprocessing constraint).

Tracing: pass an enabled :class:`~repro.obs.registry.Observability` as
``obs`` and the engine records a ``localmr.job`` span with chunk/merge
phases, and each worker ships wall-clock span segments back in its result
pickle (timestamps from ``time.time``, which is machine-wide, so parent
and worker segments share one timeline); the parent stitches them into
the trace on per-worker tracks.  With tracing off (the default) workers
ship nothing extra and span sites cost one guarded call each.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import time
import typing as _t

from repro.errors import WorkloadError
from repro.exec.chunks import FileChunk, chunk_file, read_chunk
from repro.obs import Observability
from repro.phoenix.sort import local_merge_maps

__all__ = ["LocalJobResult", "LocalMapReduce"]

#: shared no-op registry for untraced runs (span sites stay guarded)
_DISABLED_OBS = Observability(enabled=False)


@dataclasses.dataclass
class LocalJobResult:
    """Outcome of a real-machine run."""

    output: list
    elapsed: float
    n_chunks: int
    n_workers: int
    #: the root localmr.job span when tracing was enabled, else None
    span: object | None = dataclasses.field(default=None, repr=False, compare=False)


def _apply_chunk(args: tuple) -> tuple[dict, list | None]:
    """Worker body: map one chunk and pre-combine its emissions.

    Returns ``(combiner_map, segments)`` — the raw combiner map (no
    per-chunk sort, no per-chunk ``repr``: the parent dict-merges the maps
    and pays one ``repr`` per distinct key for the whole job, see
    :func:`repro.phoenix.sort.local_merge_maps`) plus, when tracing is on,
    wall-clock span segments ``(name, t0, t1, wall_dur, attrs)`` for the
    parent to stitch into its trace.
    """
    chunk, map_fn, combine_fn, params, index, want_spans = args
    segments: list | None = [] if want_spans else None

    t0 = time.time() if want_spans else 0.0
    w0 = time.perf_counter() if want_spans else 0.0
    data = read_chunk(chunk)
    if want_spans:
        t1 = time.time()
        segments.append(
            (
                "localmr.read_chunk",
                t0,
                t1,
                time.perf_counter() - w0,
                {"index": index, "bytes": len(data), "pid": os.getpid()},
            )
        )

    acc: dict[object, object] = {}
    if combine_fn is None:
        def emit(key: object, value: object) -> None:
            acc.setdefault(key, []).append(value)  # type: ignore[union-attr]
    else:
        def emit(key: object, value: object) -> None:
            acc[key] = combine_fn(acc[key], value) if key in acc else value

    t0 = time.time() if want_spans else 0.0
    w0 = time.perf_counter() if want_spans else 0.0
    if data:
        map_fn(data, emit, params)
    if want_spans:
        segments.append(
            (
                "localmr.map_chunk",
                t0,
                time.time(),
                time.perf_counter() - w0,
                {"index": index, "keys": len(acc), "pid": os.getpid()},
            )
        )
    return acc, segments


class LocalMapReduce:
    """Run the programming model over a real file with real processes."""

    def __init__(
        self,
        map_fn: _t.Callable,
        reduce_fn: _t.Callable | None = None,
        combine_fn: _t.Callable | None = None,
        sort_output: bool = False,
        delimiters: bytes = b" \t\n\r",
        n_workers: int | None = None,
        obs: Observability | None = None,
    ):
        self.map_fn = map_fn
        self.reduce_fn = reduce_fn
        self.combine_fn = combine_fn
        self.sort_output = sort_output
        self.delimiters = delimiters
        self.n_workers = n_workers or max(1, os.cpu_count() or 1)
        self.obs = obs or _DISABLED_OBS

    def run(
        self,
        path: str,
        chunk_bytes: int | None = None,
        params: dict | None = None,
        parallel: bool = True,
    ) -> LocalJobResult:
        """Execute over ``path``; ``parallel=False`` runs in-process.

        ``chunk_bytes=None`` picks ~4 chunks per worker (dynamic-balancing
        granularity, like Phoenix's task pool).
        """
        params = params or {}
        obs = self.obs
        size = os.path.getsize(path)
        if chunk_bytes is None:
            chunk_bytes = max(1, size // (4 * self.n_workers) or 1)
        if chunk_bytes < 1:
            raise WorkloadError("chunk_bytes must be >= 1")
        t0 = time.perf_counter()
        with obs.span(
            "localmr.job", cat="localmr", track="localmr",
            path=path, bytes=size,
        ) as job_sp:
            with obs.span("localmr.chunk_plan", cat="localmr", track="localmr"):
                chunks = chunk_file(path, chunk_bytes, self.delimiters)
            want_spans = obs.enabled
            tasks = [
                (c, self.map_fn, self.combine_fn, params, i, want_spans)
                for i, c in enumerate(chunks)
            ]

            with obs.span(
                "localmr.map_pool", cat="localmr", track="localmr",
                chunks=len(chunks),
            ):
                if parallel and self.n_workers > 1 and len(chunks) > 1:
                    ctx = mp.get_context("spawn" if os.name == "nt" else "fork")
                    with ctx.Pool(processes=min(self.n_workers, len(chunks))) as pool:
                        results = pool.map(_apply_chunk, tasks)
                else:
                    results = [_apply_chunk(t) for t in tasks]
            parts = [acc for acc, _segs in results]

            # Stitch worker-recorded wall-clock segments into this trace,
            # one track per worker process.
            if want_spans:
                for acc, segs in results:
                    for name, seg_t0, seg_t1, wall_dur, attrs in segs or ():
                        obs.add_span(
                            name,
                            seg_t0,
                            seg_t1,
                            cat="localmr",
                            track=f"worker-{attrs.get('pid', '?')}",
                            parent=job_sp,
                            wall_dur=wall_dur,
                            attrs=attrs,
                        )

            # parts are raw combiner maps: dict-merge + one decorate-sort
            # (one repr per distinct key) instead of flatten + global re-sort
            with obs.span("localmr.merge", cat="localmr", track="localmr"):
                out = local_merge_maps(
                    parts, self.combine_fn, self.reduce_fn, self.sort_output, params
                )
        return LocalJobResult(
            output=out,
            elapsed=time.perf_counter() - t0,
            n_chunks=len(chunks),
            n_workers=self.n_workers if parallel else 1,
            span=job_sp if obs.enabled else None,
        )
