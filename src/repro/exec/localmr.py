"""LocalMapReduce: the McSD programming model on the real machine.

Workers are ``multiprocessing`` processes pulling integrity-checked file
chunks; per-chunk map outputs are combined in the worker (keeping IPC
small), reduced and merged in the parent.  The API mirrors
:class:`~repro.phoenix.api.MapReduceSpec` so the same ``map``/``reduce``/
``merge`` callbacks drive both the simulator and real files — they must be
module-level picklable functions (a multiprocessing constraint).
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import time
import typing as _t

from repro.errors import WorkloadError
from repro.exec.chunks import FileChunk, chunk_file, read_chunk
from repro.phoenix.sort import local_merge_maps

__all__ = ["LocalJobResult", "LocalMapReduce"]


@dataclasses.dataclass
class LocalJobResult:
    """Outcome of a real-machine run."""

    output: list
    elapsed: float
    n_chunks: int
    n_workers: int


def _apply_chunk(args: tuple) -> dict:
    """Worker body: map one chunk and pre-combine its emissions.

    Returns the raw combiner map — no per-chunk sort, no per-chunk
    ``repr``: the parent dict-merges the maps and pays one ``repr`` per
    distinct key for the whole job (see
    :func:`repro.phoenix.sort.local_merge_maps`).
    """
    chunk, map_fn, combine_fn, params = args
    data = read_chunk(chunk)
    acc: dict[object, object] = {}

    if combine_fn is None:
        def emit(key: object, value: object) -> None:
            acc.setdefault(key, []).append(value)  # type: ignore[union-attr]
    else:
        def emit(key: object, value: object) -> None:
            acc[key] = combine_fn(acc[key], value) if key in acc else value

    if data:
        map_fn(data, emit, params)
    return acc


class LocalMapReduce:
    """Run the programming model over a real file with real processes."""

    def __init__(
        self,
        map_fn: _t.Callable,
        reduce_fn: _t.Callable | None = None,
        combine_fn: _t.Callable | None = None,
        sort_output: bool = False,
        delimiters: bytes = b" \t\n\r",
        n_workers: int | None = None,
    ):
        self.map_fn = map_fn
        self.reduce_fn = reduce_fn
        self.combine_fn = combine_fn
        self.sort_output = sort_output
        self.delimiters = delimiters
        self.n_workers = n_workers or max(1, os.cpu_count() or 1)

    def run(
        self,
        path: str,
        chunk_bytes: int | None = None,
        params: dict | None = None,
        parallel: bool = True,
    ) -> LocalJobResult:
        """Execute over ``path``; ``parallel=False`` runs in-process.

        ``chunk_bytes=None`` picks ~4 chunks per worker (dynamic-balancing
        granularity, like Phoenix's task pool).
        """
        params = params or {}
        size = os.path.getsize(path)
        if chunk_bytes is None:
            chunk_bytes = max(1, size // (4 * self.n_workers) or 1)
        if chunk_bytes < 1:
            raise WorkloadError("chunk_bytes must be >= 1")
        t0 = time.perf_counter()
        chunks = chunk_file(path, chunk_bytes, self.delimiters)
        tasks = [(c, self.map_fn, self.combine_fn, params) for c in chunks]

        if parallel and self.n_workers > 1 and len(chunks) > 1:
            ctx = mp.get_context("spawn" if os.name == "nt" else "fork")
            with ctx.Pool(processes=min(self.n_workers, len(chunks))) as pool:
                parts = pool.map(_apply_chunk, tasks)
        else:
            parts = [_apply_chunk(t) for t in tasks]

        # parts are raw combiner maps: dict-merge + one decorate-sort
        # (one repr per distinct key) instead of flatten + global re-sort
        out = local_merge_maps(
            parts, self.combine_fn, self.reduce_fn, self.sort_output, params
        )
        return LocalJobResult(
            output=out,
            elapsed=time.perf_counter() - t0,
            n_chunks=len(chunks),
            n_workers=self.n_workers if parallel else 1,
        )
