"""LocalMapReduce: the McSD programming model on the real machine.

The hot path is a **streaming, bounded-memory pipeline**:

* Workers come from a persistent :class:`~repro.exec.pool.WorkerPool`
  (lazily created, reused across fragments and jobs, closable via
  ``close()``/context manager) and read chunks through per-worker cached
  ``mmap`` handles — no fresh pool fork per job, no open/seek/read per
  chunk.
* Map tasks are batches of consecutive chunks; each worker folds its
  batch into one combiner map, so IPC carries one map per batch instead
  of one per chunk.
* There is no ``pool.map`` barrier: results stream back via
  ``imap_unordered`` and are dict-merged into a single accumulator *as
  they arrive* (a reorder buffer keeps the merge in batch order, so
  results stay deterministic).  Merge CPU overlaps worker map time and
  peak parent memory is O(accumulator + in-flight results), not
  O(all chunks).
* With a ``memory_budget`` set and an input larger than it, the job runs
  **out of core** (:mod:`repro.exec.outofcore`): fragment-at-a-time
  map/combine/sort, spill each fragment's sorted run to disk, lazily
  ``heapq.merge`` the runs before reduce/merge.  Output is identical to
  the in-memory mode; only peak memory changes.

API notes: ``map``/``reduce``/``merge`` callbacks mirror
:class:`~repro.phoenix.api.MapReduceSpec` and must be module-level
picklable functions (a multiprocessing constraint).  With a
``combine_fn`` the engine may pre-combine across any grouping of chunks
(per batch, per fragment), so the combiner must be an
associative/commutative fold — the standard combiner contract.

Tracing: pass an enabled :class:`~repro.obs.registry.Observability` as
``obs`` and the engine records a ``localmr.job`` span with
chunk-plan/map/fragment/spill/merge phases; workers ship wall-clock span
segments back in their result pickles (``time.time`` timestamps, which
are machine-wide, so parent and worker segments share one timeline) and
the parent stitches them onto per-worker tracks.  With tracing off (the
default) workers ship ``segments=None`` and span sites cost one guarded
call each.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import os
import time
import typing as _t

from repro.errors import WorkloadError
from repro.exec.chunks import FileChunk, chunk_file
from repro.exec.outofcore import plan_fragments, run_out_of_core
from repro.exec.pool import WorkerPool, run_batch
from repro.faults import FaultInjector, FaultPlan
from repro.obs import Observability
from repro.phoenix.sort import (
    finalize_folded_map,
    finalize_merged_map,
    fold_map_into,
    merge_map_into,
)

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tier.store import TieredStore

__all__ = ["LocalJobResult", "LocalMapReduce"]


def _fn_identity(fn: _t.Callable | None) -> str:
    """A stable name for a callable, for content-keyed tier identities."""
    if fn is None:
        return "-"
    return f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"

#: shared no-op registry for untraced runs (span sites stay guarded)
_DISABLED_OBS = Observability(enabled=False)

#: sentinel: "use the engine-level memory budget"
_UNSET = object()

#: cached chunk plans per engine (repeat jobs over an unchanged file)
_MAX_CACHED_PLANS = 4


@dataclasses.dataclass
class LocalJobResult:
    """Outcome of a real-machine run."""

    output: list
    elapsed: float
    n_chunks: int
    n_workers: int
    #: the root localmr.job span when tracing was enabled, else None
    span: object | None = dataclasses.field(default=None, repr=False, compare=False)
    #: "memory" (everything resident) or "outofcore" (spilled fragments)
    mode: str = "memory"
    #: fragments processed (1 for in-memory runs)
    n_fragments: int = 1
    #: bytes spilled to disk (0 for in-memory runs)
    spilled_bytes: int = 0
    #: how worker results traveled: "shm"/"pickle", or "inline" for
    #: in-process (serial) runs that never crossed a process boundary
    transport: str = "inline"


class LocalMapReduce:
    """Run the programming model over a real file with real processes."""

    def __init__(
        self,
        map_fn: _t.Callable,
        reduce_fn: _t.Callable | None = None,
        combine_fn: _t.Callable | None = None,
        sort_output: bool = False,
        delimiters: bytes = b" \t\n\r",
        n_workers: int | None = None,
        obs: Observability | None = None,
        start_method: str | None = None,
        memory_budget: int | None = None,
        spill_dir: str | None = None,
        batches_per_worker: int = 2,
        faults: FaultPlan | FaultInjector | None = None,
        transport: str = "auto",
        blackbox_dir: str | None = None,
        tier: "TieredStore | None" = None,
        readahead: int = 0,
        spill_retries: int = 2,
    ):
        self.map_fn = map_fn
        self.reduce_fn = reduce_fn
        self.combine_fn = combine_fn
        self.sort_output = sort_output
        self.delimiters = delimiters
        self.n_workers = n_workers or max(1, os.cpu_count() or 1)
        self.obs = obs or _DISABLED_OBS
        #: input bytes above which runs go out of core (None: never)
        self.memory_budget = memory_budget
        #: where spill run directories are created (None: system temp)
        self.spill_dir = spill_dir
        if batches_per_worker < 1:
            raise WorkloadError("batches_per_worker must be >= 1")
        self.batches_per_worker = batches_per_worker
        #: burst buffer for spill runs (None: plain spill files).  Runs
        #: are keyed by job content identity, so a warm tier lets a
        #: repeat job over an unchanged input skip map+spill per run.
        self.tier = tier
        #: fragments of page-cache readahead during out-of-core runs
        #: (0: no prefetch thread)
        if readahead < 0:
            raise WorkloadError("readahead must be >= 0")
        self.readahead = readahead
        #: out-of-core spill/merge retry budget per stage.  Each distinct
        #: disruption class (lost run, degraded read, corrupt read) can
        #: cost one merge attempt, so chaos runs that stack all three
        #: need a deeper budget than the default
        if spill_retries < 0:
            raise WorkloadError("spill_retries must be >= 0")
        self.spill_retries = spill_retries
        #: fault injector for chaos runs (None: no instrumented overhead
        #: beyond one guard branch per hook); a FaultPlan is bound to a
        #: fresh injector sharing this engine's obs registry
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults, obs=self.obs)
        self.faults = faults
        #: persistent worker pool, created on first parallel run;
        #: ``transport`` selects the worker→parent result path
        #: ("auto"/"shm"/"pickle", see :mod:`repro.exec.transport`)
        self.pool = WorkerPool(
            self.n_workers, start_method, faults=self.faults, obs=self.obs,
            transport=transport, blackbox_dir=blackbox_dir,
        )
        #: chunk-plan cache: (path identity, chunk size, delimiters) ->
        #: plan.  Replanning an unchanged file costs a full boundary scan
        #: per job; the stat triple in the key invalidates on any rewrite.
        self._chunk_plans: "collections.OrderedDict[tuple, list[FileChunk]]" = (
            collections.OrderedDict()
        )

    @property
    def start_method(self) -> str:
        """The resolved multiprocessing start method."""
        return self.pool.start_method

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Tear down the persistent worker pool (idempotent; the next
        parallel run recreates it)."""
        self.pool.close()

    def __enter__(self) -> "LocalMapReduce":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- execution -------------------------------------------------------------

    def run(
        self,
        path: str,
        chunk_bytes: int | None = None,
        params: dict | None = None,
        parallel: bool = True,
        memory_budget: int | None | object = _UNSET,
    ) -> LocalJobResult:
        """Execute over ``path``; ``parallel=False`` runs in-process.

        ``chunk_bytes=None`` picks ~4 chunks per worker (dynamic-balancing
        granularity, like Phoenix's task pool).  ``memory_budget``
        overrides the engine-level budget for this run; an input larger
        than the effective budget is processed out of core.
        """
        params = params or {}
        obs = self.obs
        budget = self.memory_budget if memory_budget is _UNSET else memory_budget
        st = os.stat(path)
        size = st.st_size
        if chunk_bytes is None:
            chunk_bytes = max(1, size // (4 * self.n_workers) or 1)
        if chunk_bytes < 1:
            raise WorkloadError("chunk_bytes must be >= 1")
        out_of_core = budget is not None and size > budget
        use_pool = parallel and self.n_workers > 1
        t0 = time.perf_counter()
        with obs.span(
            "localmr.job", cat="localmr", track="localmr",
            path=path, bytes=size,
            mode="outofcore" if out_of_core else "memory",
        ) as job_sp:
            with obs.span("localmr.chunk_plan", cat="localmr", track="localmr"):
                chunks = self._plan_chunks(path, st, chunk_bytes)

            if out_of_core:
                def map_fragment(fragment: _t.Sequence[FileChunk]) -> dict:
                    return self._map_chunks(fragment, params, parallel, job_sp)

                tier_key = None
                if self.tier is not None:
                    tier_key = self._job_key(path, st, chunk_bytes, params, budget)
                prefetcher = None
                if self.readahead > 0:
                    from repro.tier.prefetch import ReadaheadPrefetcher

                    prefetcher = ReadaheadPrefetcher(
                        plan_fragments(chunks, budget),
                        depth=self.readahead, obs=obs,
                    )
                try:
                    out, n_fragments, spilled = run_out_of_core(
                        chunks, map_fragment, self.combine_fn, self.reduce_fn,
                        self.sort_output, params, budget, obs, self.spill_dir,
                        faults=self.faults,
                        max_retries=self.spill_retries,
                        prefolded=self.combine_fn is not None,
                        tier=self.tier, tier_key=tier_key,
                        prefetcher=prefetcher,
                    )
                finally:
                    if prefetcher is not None:
                        prefetcher.close()
            else:
                merged = self._map_chunks(chunks, params, parallel, job_sp)
                with obs.span("localmr.merge", cat="localmr", track="localmr"):
                    if self.combine_fn is not None:
                        # the accumulator is scalar-folded (fold_map_into)
                        out = finalize_folded_map(
                            merged, self.reduce_fn, self.sort_output, params,
                        )
                    else:
                        out = finalize_merged_map(
                            merged, self.combine_fn, self.reduce_fn,
                            self.sort_output, params,
                        )
                n_fragments, spilled = 1, 0
        return LocalJobResult(
            output=out,
            elapsed=time.perf_counter() - t0,
            n_chunks=len(chunks),
            n_workers=self.n_workers if parallel else 1,
            span=job_sp if obs.enabled else None,
            mode="outofcore" if out_of_core else "memory",
            n_fragments=n_fragments,
            spilled_bytes=spilled,
            transport=(
                self.pool.transport_name
                if use_pool and len(chunks) > 1 else "inline"
            ),
        )

    # -- internals -------------------------------------------------------------

    def _job_key(
        self,
        path: str,
        st: os.stat_result,
        chunk_bytes: int,
        params: dict,
        budget: int,
    ) -> str:
        """Content identity of an out-of-core job, for tier run keys.

        Everything that shapes a spilled run's bytes is in here: the file
        (inode/size/mtime, like the chunk-plan cache key), the chunk and
        fragment geometry, the callables and their params, and the output
        ordering.  Any change misses the tier and recomputes — the same
        invalidation discipline the chunk-plan cache uses.
        """
        ident = (
            os.path.abspath(path), st.st_ino, st.st_size, st.st_mtime_ns,
            chunk_bytes, self.delimiters, budget,
            _fn_identity(self.map_fn), _fn_identity(self.combine_fn),
            _fn_identity(self.reduce_fn), self.sort_output,
            repr(sorted(params.items(), key=repr)),
        )
        digest = hashlib.sha1(repr(ident).encode()).hexdigest()[:16]
        return f"localmr/{digest}"

    def _plan_chunks(
        self, path: str, st: os.stat_result, chunk_bytes: int
    ) -> list[FileChunk]:
        """The chunk plan, cached per (file identity, granularity).

        Repeat jobs over an unchanged file — the serving pattern the
        persistent pool exists for — skip the boundary scan entirely;
        any rewrite (inode/size/mtime change) misses the cache and
        replans.  Plans are immutable (``FileChunk`` is frozen) so
        sharing one list across jobs is safe.
        """
        key = (
            path, st.st_ino, st.st_size, st.st_mtime_ns,
            chunk_bytes, self.delimiters,
        )
        plans = self._chunk_plans
        chunks = plans.get(key)
        if chunks is None:
            chunks = chunk_file(path, chunk_bytes, self.delimiters)
            plans[key] = chunks
            while len(plans) > _MAX_CACHED_PLANS:
                plans.popitem(last=False)
        else:
            plans.move_to_end(key)
        return chunks

    def _map_chunks(
        self,
        chunks: _t.Sequence[FileChunk],
        params: dict,
        parallel: bool,
        job_sp: object,
    ) -> dict:
        """Map ``chunks`` into one merged combiner map.

        Parallel path: batches stream through the persistent pool via
        ``imap_unordered``; each arriving map is folded into the
        accumulator immediately (reorder buffer keeps batch order, so the
        result is deterministic).  Serial path: one batch per chunk,
        in-process — the seed dataflow, byte for byte.

        With a ``combine_fn`` the accumulator is *scalar-folded*
        (``key -> folded value`` via :func:`fold_map_into` — no per-key
        partial lists); without one it holds value lists in chunk order
        (:func:`merge_map_into`).  Downstream consumers pick the matching
        finalizer.
        """
        obs = self.obs
        want_spans = obs.enabled
        combine_fn = self.combine_fn
        use_pool = parallel and self.n_workers > 1 and len(chunks) > 1
        if use_pool:
            n_batches = min(
                len(chunks), self.n_workers * self.batches_per_worker
            )
            per = -(-len(chunks) // n_batches)  # ceil division
            batches = [chunks[i : i + per] for i in range(0, len(chunks), per)]
        else:
            batches = [[c] for c in chunks]
        tasks = [
            (i, batch, self.map_fn, combine_fn, params, want_spans)
            for i, batch in enumerate(batches)
        ]

        merged: dict = {}
        with obs.span(
            "localmr.map_pool", cat="localmr", track="localmr",
            chunks=len(chunks), batches=len(batches),
            transport=self.pool.transport_name if use_pool else "inline",
        ):
            if use_pool:
                results: _t.Iterable = self.pool.imap_unordered(run_batch, tasks)
            else:
                results = map(run_batch, tasks)
            pending: dict[int, dict] = {}
            next_index = 0
            for index, acc, segments in results:
                if want_spans and segments:
                    self._stitch(segments, job_sp)
                # merge in batch order as soon as the order is available:
                # merge CPU overlaps the still-running map tasks
                pending[index] = acc
                while next_index in pending:
                    arrived = pending.pop(next_index)
                    if not merged:
                        # adopt batch 0 outright: it is fresh off the
                        # transport (or run_batch's own accumulator),
                        # exclusively ours — no key-by-key fold needed
                        merged = arrived
                    elif combine_fn is not None:
                        fold_map_into(merged, arrived, combine_fn)
                    else:
                        merge_map_into(merged, arrived, combine_fn)
                    next_index += 1
        return merged

    def _stitch(self, segments: list, job_sp: object) -> None:
        """Attach worker-recorded wall-clock segments to the trace, one
        track per worker process.

        ``worker.heartbeat`` pseudo-segments are resource samples, not
        intervals: they divert into per-worker time series
        (``worker-{pid}.rss_kib`` / ``.cpu_s`` / ``.util``) instead of
        the span tree.
        """
        obs = self.obs
        for name, seg_t0, seg_t1, wall_dur, attrs in segments:
            pid = attrs.get("pid", "?")
            if name == "worker.heartbeat":
                obs.sample(f"worker-{pid}.rss_kib", seg_t0, attrs["rss_kib"])
                obs.sample(f"worker-{pid}.cpu_s", seg_t0, attrs["cpu_s"])
                obs.sample(f"worker-{pid}.util", seg_t0, attrs["util"])
                continue
            obs.add_span(
                name,
                seg_t0,
                seg_t1,
                cat="localmr",
                track=f"worker-{pid}",
                parent=job_sp,
                wall_dur=wall_dur,
                attrs=attrs,
            )
