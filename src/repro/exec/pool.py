"""Persistent worker pool with per-worker cached, mmap-backed chunk reads.

The streaming engine's process management lives here, split from the
dataflow in :mod:`repro.exec.localmr`:

* :class:`WorkerPool` keeps one ``multiprocessing`` pool alive across
  fragments *and jobs* — the seed engine forked a fresh pool per ``run()``
  and paid create/teardown plus cold worker caches every time.
* Workers read chunks through a small per-process cache of ``mmap``-backed
  file handles (:func:`read_chunk_cached`): one ``open``+``mmap`` per file
  per worker lifetime instead of the seed's open/seek/read syscall triple
  per chunk, with slices served straight from the page cache.
* Map tasks are *batches* of consecutive chunks (:func:`run_batch`).  A
  worker folds every chunk of its batch into one combiner map and ships
  that single map back, so IPC pickling scales with batches (a few per
  worker) rather than chunks.

Start methods: ``forkserver`` is the default where available — bare
``fork`` of a threaded parent is deadlock-prone (any lock held by another
thread at fork time stays locked forever in the child), and the paper's
daemon-shaped deployments are exactly the threaded-parent case.  ``fork``
remains selectable for fork-safe parents; Windows gets ``spawn``.

Fault tolerance: the pool is built on ``concurrent.futures``'s process
pool rather than ``multiprocessing.Pool`` because the former *detects*
worker death (``BrokenProcessPool``) where the latter hangs an
``imap_unordered`` forever.  :meth:`WorkerPool.imap_unordered` runs
dispatch rounds: every pending task is submitted, results stream back as
they complete, and failures are classified through
:func:`repro.errors.is_retryable` — transient ones (a dead worker, an
injected fault) are re-dispatched on the next round with a bounded
per-task retry budget, permanent ones (a bug in the map function)
surface immediately.  A broken executor is torn down and respawned
between rounds.  Injected faults at the ``pool.worker`` site are decided
parent-side at submission time (deterministic given the plan seed):
*kill* replaces the task body with an ``os._exit`` so the worker
genuinely dies mid-task, *fail* replaces it with a raise.
"""

from __future__ import annotations

import collections
import concurrent.futures as _cf
import mmap
import multiprocessing as mp
import os
import sys
import time
import typing as _t

from concurrent.futures.process import BrokenProcessPool

from repro.errors import (
    FaultInjectedError,
    WorkerCrashError,
    WorkloadError,
    is_retryable,
    mark_retryable,
)
from repro.exec.chunks import FileChunk

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.obs import Observability

__all__ = ["WorkerPool", "read_chunk_cached", "resolve_start_method", "run_batch"]

#: per-process cap on cached (file, mmap) pairs
_MAX_CACHED_FILES = 8

#: per-process mmap cache: path -> (ino, size, mtime_ns, file, mmap)
_HANDLES: "collections.OrderedDict[str, tuple[int, int, int, _t.BinaryIO, mmap.mmap | None]]" = (
    collections.OrderedDict()
)


def _drop_handle(path: str) -> None:
    ino, size, mtime, f, mm = _HANDLES.pop(path)
    if mm is not None:
        mm.close()
    f.close()


def read_chunk_cached(chunk: FileChunk) -> bytes:
    """The chunk's bytes via this process's cached ``mmap`` of the file.

    One ``stat`` revalidates the cache entry (inode/size/mtime — the file
    may have been replaced between jobs); a hit costs a single slice off
    the mapping, no open/seek/read.  Falls back to an empty mapping for
    zero-length files, which cannot be mmapped.
    """
    path = chunk.path
    st = os.stat(path)
    entry = _HANDLES.get(path)
    if entry is not None and (st.st_ino, st.st_size, st.st_mtime_ns) != entry[:3]:
        _drop_handle(path)
        entry = None
    if entry is None:
        f = open(path, "rb")
        mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ) if st.st_size else None
        entry = (st.st_ino, st.st_size, st.st_mtime_ns, f, mm)
        _HANDLES[path] = entry
        while len(_HANDLES) > _MAX_CACHED_FILES:
            _drop_handle(next(iter(_HANDLES)))
    else:
        _HANDLES.move_to_end(path)
    mm = entry[4]
    if mm is None or chunk.length == 0:
        return b""
    return mm[chunk.offset : chunk.end]


def run_batch(args: tuple) -> tuple[int, dict, list | None]:
    """Worker body: map a batch of consecutive chunks into one combiner map.

    Returns ``(batch_index, combiner_map, segments)``.  All of the batch's
    chunks fold into a single accumulator — with a ``combine_fn`` this is
    worker-side combining across chunks (licensed by the combiner contract:
    an associative/commutative fold), without one it is value-list
    extension in chunk order — so the pipe carries one map per batch.
    ``segments`` are wall-clock span tuples ``(name, t0, t1, wall_dur,
    attrs)`` per chunk when tracing is on, else ``None`` (tracing-off runs
    ship nothing extra over IPC).
    """
    index, chunks, map_fn, combine_fn, params, want_spans = args
    segments: list | None = [] if want_spans else None

    acc: dict[object, object] = {}
    if combine_fn is None:
        def emit(key: object, value: object) -> None:
            acc.setdefault(key, []).append(value)  # type: ignore[union-attr]
    else:
        def emit(key: object, value: object) -> None:
            acc[key] = combine_fn(acc[key], value) if key in acc else value

    for chunk in chunks:
        t0 = time.time() if want_spans else 0.0
        w0 = time.perf_counter() if want_spans else 0.0
        data = read_chunk_cached(chunk)
        if want_spans:
            segments.append(
                (
                    "localmr.read_chunk",
                    t0,
                    time.time(),
                    time.perf_counter() - w0,
                    {"batch": index, "bytes": len(data), "pid": os.getpid()},
                )
            )
        t0 = time.time() if want_spans else 0.0
        w0 = time.perf_counter() if want_spans else 0.0
        keys_before = len(acc)
        if data:
            map_fn(data, emit, params)
        if want_spans:
            segments.append(
                (
                    "localmr.map_chunk",
                    t0,
                    time.time(),
                    time.perf_counter() - w0,
                    {
                        "batch": index,
                        "keys": len(acc) - keys_before,
                        "pid": os.getpid(),
                    },
                )
            )
    return index, acc, segments


def resolve_start_method(preferred: str | None = None) -> str:
    """Pick the multiprocessing start method for a :class:`WorkerPool`.

    ``preferred`` wins when given (validated against this platform);
    otherwise ``forkserver`` where available, ``spawn`` on Windows,
    ``fork`` as the last resort.
    """
    available = mp.get_all_start_methods()
    if preferred is not None:
        if preferred not in available:
            raise WorkloadError(
                f"start method {preferred!r} not available here "
                f"(have: {', '.join(available)})"
            )
        return preferred
    if os.name == "nt":
        return "spawn"
    if "forkserver" in available and _main_is_reimportable():
        return "forkserver"
    return "fork"


def _main_is_reimportable() -> bool:
    """Whether forkserver/spawn workers can reconstruct ``__main__``.

    Those start methods re-import the parent's ``__main__`` in each
    worker; when the parent is interactive or fed from stdin there is no
    file to re-import and every worker dies at startup — which the pool
    answers by forking a replacement, forever.  Detect that case up front
    and fall back to ``fork``.
    """
    main = sys.modules.get("__main__")
    if main is None:  # pragma: no cover - embedded interpreters
        return False
    if getattr(getattr(main, "__spec__", None), "name", None) is not None:
        return True  # importable by module name (python -m, pytest, ...)
    main_file = getattr(main, "__file__", None)
    return main_file is not None and os.path.exists(main_file)


def _injected_kill(args: tuple) -> _t.NoReturn:
    """Fault-action body: die exactly the way a crashed worker dies.

    ``os._exit`` skips every atexit/finally in the worker, so the parent
    sees the same ``BrokenProcessPool`` a segfault or OOM-kill produces.
    """
    os._exit(3)


def _injected_failure(args: tuple) -> _t.NoReturn:
    """Fault-action body: the task raises instead of computing."""
    index = args[0] if isinstance(args, tuple) and args else None
    raise FaultInjectedError("pool.worker", f"injected task failure (task {index})")


class WorkerPool:
    """A lazily created, persistent, crash-tolerant process pool.

    The pool is built on first use and reused for every subsequent batch
    submission until :meth:`close` — across fragments of one out-of-core
    job and across jobs on the same engine — so worker processes keep
    their warm module imports and mmap handle caches.  Usable as a
    context manager; closing is idempotent and the pool resurrects on the
    next submission after a close.

    ``max_task_retries`` bounds how many times one task may be
    re-dispatched after a transient failure (a dead worker or an injected
    fault) before :class:`~repro.errors.WorkerCrashError` is raised with
    the permanent stamp.  ``faults``/``obs`` are optional: a
    :class:`~repro.faults.injector.FaultInjector` evaluated at the
    ``pool.worker`` site on every submission, and the observability
    registry that receives the ``retry.count``/``pool.respawn`` counters.
    """

    def __init__(
        self,
        n_workers: int,
        start_method: str | None = None,
        max_task_retries: int = 2,
        faults: "FaultInjector | None" = None,
        obs: "Observability | None" = None,
    ):
        if n_workers < 1:
            raise WorkloadError(f"n_workers must be >= 1, got {n_workers}")
        if max_task_retries < 0:
            raise WorkloadError("max_task_retries must be >= 0")
        self.n_workers = n_workers
        self.start_method = resolve_start_method(start_method)
        self.max_task_retries = max_task_retries
        self.faults = faults
        self.obs = obs
        #: executor recreations after a detected worker death
        self.respawns = 0
        #: task re-dispatches after transient failures
        self.redispatches = 0
        self._executor: _cf.ProcessPoolExecutor | None = None

    # -- lifecycle -------------------------------------------------------------

    def ensure(self) -> _cf.ProcessPoolExecutor:
        """The live executor, creating it on first use."""
        if self._executor is None:
            ctx = mp.get_context(self.start_method)
            if self.start_method == "forkserver":
                try:
                    # warm the server with the library so each forked
                    # worker starts with repro importable (no-op if the
                    # server is already up)
                    ctx.set_forkserver_preload(["repro"])
                except Exception:  # pragma: no cover - best-effort
                    pass
            self._executor = _cf.ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=ctx
            )
        return self._executor

    @property
    def alive(self) -> bool:
        """Whether worker processes currently exist."""
        return self._executor is not None

    def close(self) -> None:
        """Tear down the worker processes (next submission recreates them)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- submission ------------------------------------------------------------

    def imap_unordered(
        self, fn: _t.Callable, tasks: _t.Sequence
    ) -> _t.Iterator:
        """Submit ``tasks`` and yield results as they complete.

        Completion order is arbitrary; callers that need determinism
        reorder on the task index (see the engine's reorder-buffer merge).
        Tasks whose worker dies (or whose injected fault fires) are
        re-dispatched in later rounds, up to ``max_task_retries`` per
        task; a permanent (non-retryable) task exception propagates
        immediately.
        """
        return self._run_rounds(fn, list(tasks))

    def _plan_round(
        self, fn: _t.Callable, pending: _t.Iterable[int], attempts: list[int]
    ) -> dict[int, _t.Callable]:
        """Fault decisions for one dispatch round, taken before anything
        is submitted.

        Deciding up front — rather than interleaved with submission —
        keeps the injection sequence a function of (pending set, attempt
        counts) alone: a pool break detected *during* submission cannot
        shift which tasks get faulted.
        """
        calls = {i: fn for i in pending}
        inj = self.faults
        if inj is not None:
            for i in sorted(calls):
                decision = inj.check("pool.worker", index=i, attempt=attempts[i])
                if decision is None:
                    continue
                if decision.action == "kill":
                    calls[i] = _injected_kill
                else:  # fail / drop / corrupt all degrade to a raised task
                    calls[i] = _injected_failure
        return calls

    def _run_rounds(self, fn: _t.Callable, tasks: list) -> _t.Iterator:
        attempts = [0] * len(tasks)
        pending = set(range(len(tasks)))
        while pending:
            executor = self.ensure()
            calls = self._plan_round(fn, pending, attempts)
            futures: dict[_cf.Future, int] = {}
            broken = False
            try:
                for i in sorted(pending):
                    futures[executor.submit(calls[i], tasks[i])] = i
            except (BrokenProcessPool, RuntimeError):
                # the break surfaced at submit time; unsubmitted tasks
                # simply stay pending for the next round
                broken = True
            failed: list[tuple[int, BaseException]] = []
            for fut in _cf.as_completed(futures):
                # drop our reference immediately: a finished Future pins
                # its result object, and holding the whole round's futures
                # would make parent memory O(all results) — the barrier
                # the streaming merge exists to avoid (as_completed drops
                # its own references as it yields)
                i = futures.pop(fut)
                try:
                    result = fut.result()
                except (BrokenProcessPool, _cf.CancelledError) as exc:
                    broken = True
                    failed.append(
                        (i, WorkerCrashError(
                            f"worker died while running task {i}: {exc}",
                            task_index=i,
                        ))
                    )
                    continue
                except BaseException as exc:
                    if is_retryable(exc):
                        failed.append((i, exc))
                        continue
                    raise  # permanent: retrying a deterministic bug is futile
                pending.discard(i)
                yield result
            if broken:
                self.respawns += 1
                if self.obs is not None:
                    self.obs.count("pool.respawn")
                self.close()  # discard the dead executor; next round respawns
            for i, exc in failed:
                attempts[i] += 1
                if attempts[i] > self.max_task_retries:
                    raise mark_retryable(
                        WorkerCrashError(
                            f"task {i} failed after {attempts[i]} attempts "
                            f"(last: {exc})",
                            task_index=i,
                        ),
                        False,
                    ) from exc
                self.redispatches += 1
                if self.obs is not None:
                    self.obs.count("retry.count")
                    self.obs.count("retry.pool")
