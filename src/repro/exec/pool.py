"""Persistent worker pool with per-worker cached, mmap-backed chunk reads.

The streaming engine's process management lives here, split from the
dataflow in :mod:`repro.exec.localmr`:

* :class:`WorkerPool` keeps one ``multiprocessing`` pool alive across
  fragments *and jobs* — the seed engine forked a fresh pool per ``run()``
  and paid create/teardown plus cold worker caches every time.
* Workers read chunks through a small per-process cache of ``mmap``-backed
  file handles (:func:`repro.exec.chunks.read_chunk_cached`): one
  ``open``+``mmap`` per file per worker lifetime instead of the seed's
  open/seek/read syscall triple per chunk, with slices served straight
  from the page cache.
* Map tasks are *batches* of consecutive chunks (:func:`run_batch`).  A
  worker folds every chunk of its batch into one combiner map and ships
  that single map back, so result traffic scales with batches (a few per
  worker) rather than chunks.
* Results travel through a swappable :class:`~repro.exec.transport.Transport`
  (``transport="auto"|"shm"|"pickle"``): by default a shared-memory ring
  where workers pickle straight into preallocated slots and the parent
  unpickles off a ``memoryview`` — no per-batch payload on the result
  pipe.  Submission is *windowed* by free slots: tasks are submitted
  while slots are available and as completions free them, with
  ``transport.slot_wait`` counting the times the window closed.

Start methods: ``forkserver`` is the default where available — bare
``fork`` of a threaded parent is deadlock-prone (any lock held by another
thread at fork time stays locked forever in the child), and the paper's
daemon-shaped deployments are exactly the threaded-parent case.  ``fork``
remains selectable for fork-safe parents; Windows gets ``spawn``.

Fault tolerance: the pool is built on ``concurrent.futures``'s process
pool rather than ``multiprocessing.Pool`` because the former *detects*
worker death (``BrokenProcessPool``) where the latter hangs an
``imap_unordered`` forever.  :meth:`WorkerPool.imap_unordered` runs
dispatch rounds: pending tasks are submitted as the slot window allows,
results stream back as they complete, and failures are classified through
:func:`repro.errors.is_retryable` — transient ones (a dead worker, an
injected fault, a corrupt transport frame) are re-dispatched on the next
round with a bounded per-task retry budget, permanent ones (a bug in the
map function) surface immediately.  A broken executor is torn down and
respawned between rounds; its assigned transport slots are released as
each doomed future is consumed, so the ring recovers from a worker
killed mid-slot-write.  Injected faults at the ``pool.worker`` and
``transport.slot`` sites are decided parent-side at submission time
(deterministic given the plan seed): ``pool.worker``-*kill* replaces the
task body with an ``os._exit`` so the worker genuinely dies mid-task,
*fail* replaces it with a raise; ``transport.slot`` actions ride the
wrapped task into the worker's slot-write (see
:mod:`repro.exec.transport`).
"""

from __future__ import annotations

import collections
import concurrent.futures as _cf
import multiprocessing as mp
import operator
import os
import sys
import time
import typing as _t

try:
    import resource as _resource
except ImportError:  # pragma: no cover - Windows
    _resource = None  # type: ignore[assignment]

from concurrent.futures.process import BrokenProcessPool

from repro.errors import (
    FaultInjectedError,
    TransportCorruptionError,
    TransportError,
    WorkerCrashError,
    WorkloadError,
    is_retryable,
    mark_retryable,
)
from repro.exec.chunks import read_chunk_cached
from repro.exec.transport import Transport, make_transport

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.obs import Observability

__all__ = ["WorkerPool", "read_chunk_cached", "resolve_start_method", "run_batch"]

# C helper behind collections.Counter: folds an iterable of hashables into
# a dict at C speed (``d[k] = d.get(k, 0) + 1`` per element, no Python
# frame per key).  ``collections`` re-exports the C version when built.
_count_elements = collections._count_elements

# per-worker heartbeat baseline: (cpu_s, perf_counter) at the previous
# heartbeat, for utilization over the interval since then
_hb_prev: dict[str, float] = {}


def _heartbeat(index: int) -> tuple | None:
    """One per-worker resource sample as a pseudo-segment.

    Shape-compatible with the span segments ``run_batch`` ships —
    ``(name, t0, t1, wall_dur, attrs)`` with a zero-length interval — so
    it rides the existing transport payload; the parent's stitcher
    diverts it into the ``worker-{pid}`` time series instead of the span
    tree.  ``util`` is CPU seconds burned since this worker's previous
    heartbeat divided by the wall seconds between them (1.0 = a fully
    busy worker).  Returns ``None`` where ``resource`` is unavailable.
    """
    if _resource is None:  # pragma: no cover - Windows
        return None
    ru = _resource.getrusage(_resource.RUSAGE_SELF)
    cpu_s = ru.ru_utime + ru.ru_stime
    now = time.time()
    wall = time.perf_counter()
    prev_cpu = _hb_prev.get("cpu")
    prev_wall = _hb_prev.get("wall")
    if prev_cpu is None or prev_wall is None or wall <= prev_wall:
        util = 0.0
    else:
        util = min(1.0, (cpu_s - prev_cpu) / (wall - prev_wall))
    _hb_prev["cpu"] = cpu_s
    _hb_prev["wall"] = wall
    return (
        "worker.heartbeat",
        now,
        now,
        0.0,
        {
            "batch": index,
            "pid": os.getpid(),
            "rss_kib": ru.ru_maxrss,  # KiB on Linux, bytes on macOS
            "cpu_s": round(cpu_s, 6),
            "util": round(util, 4),
        },
    )


def run_batch(args: tuple) -> tuple[int, dict, list | None]:
    """Worker body: map a batch of consecutive chunks into one combiner map.

    Returns ``(batch_index, combiner_map, segments)``.  All of the batch's
    chunks fold into a single accumulator — with a ``combine_fn`` this is
    worker-side combining across chunks (licensed by the combiner contract:
    an associative/commutative fold), without one it is value-list
    extension in chunk order — so the transport carries one map per batch.
    The fold is specialized per combiner shape: the hot (existing-key)
    path is a bare ``try``/``except`` dict probe — zero-cost when the key
    is present under CPython 3.11 — and ``operator.add`` combiners fold
    with the inline ``+`` operator instead of a call per emission.

    The emit callable also carries a vectorized form, ``emit.many(keys,
    value)``, equivalent to ``for k in keys: emit(k, value)``.  Map
    functions that already hold a sequence of keys (tokenizers, parsers)
    can hand it over whole and skip one Python call per emission; for
    ``operator.add`` combiners with ``value == 1`` — the counting shape —
    the fold runs entirely in C via ``Counter``'s ``_count_elements``
    helper.  Emission order, and therefore first-seen key order in the
    accumulator, is identical on both forms.

    ``segments`` are wall-clock span tuples ``(name, t0, t1, wall_dur,
    attrs)`` per chunk when tracing is on, else ``None`` (tracing-off runs
    ship nothing extra over the transport).  The final segment of a traced
    batch is a ``worker.heartbeat`` pseudo-segment carrying the worker's
    RSS, cumulative CPU seconds, and utilization since its previous
    heartbeat — the parent stitches it into per-worker time series rather
    than the span tree.
    """
    index, chunks, map_fn, combine_fn, params, want_spans = args
    segments: list | None = [] if want_spans else None

    acc: dict[object, object] = {}
    if combine_fn is None:
        def emit(key: object, value: object) -> None:
            acc.setdefault(key, []).append(value)  # type: ignore[union-attr]

        def emit_many(keys: _t.Iterable, value: object) -> None:
            grow = acc.setdefault
            for key in keys:
                grow(key, []).append(value)  # type: ignore[union-attr]
    elif combine_fn is operator.add:
        def emit(key: object, value: object) -> None:
            try:
                old = acc[key]
            except KeyError:
                acc[key] = value
            else:
                acc[key] = old + value

        def emit_many(keys: _t.Iterable, value: object) -> None:
            if type(value) is int and value == 1:
                _count_elements(acc, keys)
            else:
                for key in keys:
                    emit(key, value)
    else:
        def emit(key: object, value: object) -> None:
            try:
                old = acc[key]
            except KeyError:
                acc[key] = value
            else:
                acc[key] = combine_fn(old, value)

        def emit_many(keys: _t.Iterable, value: object) -> None:
            for key in keys:
                emit(key, value)
    emit.many = emit_many  # type: ignore[attr-defined]

    for chunk in chunks:
        t0 = time.time() if want_spans else 0.0
        w0 = time.perf_counter() if want_spans else 0.0
        data = read_chunk_cached(chunk)
        if want_spans:
            segments.append(
                (
                    "localmr.read_chunk",
                    t0,
                    time.time(),
                    time.perf_counter() - w0,
                    {"batch": index, "bytes": len(data), "pid": os.getpid()},
                )
            )
        t0 = time.time() if want_spans else 0.0
        w0 = time.perf_counter() if want_spans else 0.0
        keys_before = len(acc)
        if data:
            map_fn(data, emit, params)
        if want_spans:
            segments.append(
                (
                    "localmr.map_chunk",
                    t0,
                    time.time(),
                    time.perf_counter() - w0,
                    {
                        "batch": index,
                        "keys": len(acc) - keys_before,
                        "pid": os.getpid(),
                    },
                )
            )
    if want_spans:
        hb = _heartbeat(index)
        if hb is not None:
            segments.append(hb)
    return index, acc, segments


def resolve_start_method(preferred: str | None = None) -> str:
    """Pick the multiprocessing start method for a :class:`WorkerPool`.

    ``preferred`` wins when given (validated against this platform);
    otherwise ``forkserver`` where available, ``spawn`` on Windows,
    ``fork`` as the last resort.
    """
    available = mp.get_all_start_methods()
    if preferred is not None:
        if preferred not in available:
            raise WorkloadError(
                f"start method {preferred!r} not available here "
                f"(have: {', '.join(available)})"
            )
        return preferred
    if os.name == "nt":
        return "spawn"
    if "forkserver" in available and _main_is_reimportable():
        return "forkserver"
    return "fork"


def _main_is_reimportable() -> bool:
    """Whether forkserver/spawn workers can reconstruct ``__main__``.

    Those start methods re-import the parent's ``__main__`` in each
    worker; when the parent is interactive or fed from stdin there is no
    file to re-import and every worker dies at startup — which the pool
    answers by forking a replacement, forever.  Detect that case up front
    and fall back to ``fork``.
    """
    main = sys.modules.get("__main__")
    if main is None:  # pragma: no cover - embedded interpreters
        return False
    if getattr(getattr(main, "__spec__", None), "name", None) is not None:
        return True  # importable by module name (python -m, pytest, ...)
    main_file = getattr(main, "__file__", None)
    return main_file is not None and os.path.exists(main_file)


def _injected_kill(args: tuple) -> _t.NoReturn:
    """Fault-action body: die exactly the way a crashed worker dies.

    ``os._exit`` skips every atexit/finally in the worker, so the parent
    sees the same ``BrokenProcessPool`` a segfault or OOM-kill produces.
    """
    os._exit(3)


def _injected_failure(args: tuple) -> _t.NoReturn:
    """Fault-action body: the task raises instead of computing."""
    index = args[0] if isinstance(args, tuple) and args else None
    raise FaultInjectedError("pool.worker", f"injected task failure (task {index})")


class WorkerPool:
    """A lazily created, persistent, crash-tolerant process pool.

    The pool is built on first use and reused for every subsequent batch
    submission until :meth:`close` — across fragments of one out-of-core
    job and across jobs on the same engine — so worker processes keep
    their warm module imports and mmap handle caches.  Usable as a
    context manager; closing is idempotent and the pool resurrects on the
    next submission after a close.

    ``transport`` selects the result path (``"auto"``: the shared-memory
    ring where it works, else pickle; see :mod:`repro.exec.transport`);
    the transport is created lazily with the executor and torn down with
    :meth:`close` (the shm segment is unlinked).

    ``max_task_retries`` bounds how many times one task may be
    re-dispatched after a transient failure (a dead worker, an injected
    fault, a corrupt transport frame) before
    :class:`~repro.errors.WorkerCrashError` is raised with the permanent
    stamp.  ``faults``/``obs`` are optional: a
    :class:`~repro.faults.injector.FaultInjector` evaluated at the
    ``pool.worker`` and ``transport.slot`` sites on every submission, and
    the observability registry that receives the ``retry.*``,
    ``pool.respawn`` and ``transport.*`` counters.

    ``blackbox_dir`` (default: the ``REPRO_BLACKBOX_DIR`` environment
    variable) names a directory for post-mortem dumps: when a task
    exhausts its retries, the registry's flight recorder — if one is
    attached — is written there as a JSONL black box and the dump path is
    included in the raised error's message.
    """

    def __init__(
        self,
        n_workers: int,
        start_method: str | None = None,
        max_task_retries: int = 2,
        faults: "FaultInjector | None" = None,
        obs: "Observability | None" = None,
        transport: str = "auto",
        blackbox_dir: str | None = None,
    ):
        if n_workers < 1:
            raise WorkloadError(f"n_workers must be >= 1, got {n_workers}")
        if max_task_retries < 0:
            raise WorkloadError("max_task_retries must be >= 0")
        self.n_workers = n_workers
        self.start_method = resolve_start_method(start_method)
        self.max_task_retries = max_task_retries
        self.faults = faults
        self.obs = obs
        self.transport_kind = transport
        self.blackbox_dir = (
            blackbox_dir
            if blackbox_dir is not None
            else os.environ.get("REPRO_BLACKBOX_DIR") or None
        )
        #: executor recreations after a detected worker death
        self.respawns = 0
        #: task re-dispatches after transient failures
        self.redispatches = 0
        self._executor: _cf.ProcessPoolExecutor | None = None
        self._transport: Transport | None = None

    # -- lifecycle -------------------------------------------------------------

    def ensure(self) -> _cf.ProcessPoolExecutor:
        """The live executor, creating it on first use."""
        if self._executor is None:
            ctx = mp.get_context(self.start_method)
            if self.start_method == "forkserver":
                try:
                    # warm the server with the library so each forked
                    # worker starts with repro importable (no-op if the
                    # server is already up)
                    ctx.set_forkserver_preload(["repro"])
                except Exception:  # pragma: no cover - best-effort
                    pass
            self._executor = _cf.ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=ctx
            )
        return self._executor

    def ensure_transport(self) -> Transport:
        """The live transport, creating it on first use (shm creation
        failing degrades to pickle inside :func:`make_transport`)."""
        if self._transport is None:
            self._transport = make_transport(
                self.transport_kind, self.n_workers, obs=self.obs
            )
        return self._transport

    @property
    def transport_name(self) -> str:
        """The resolved transport's name (``"shm"``/``"pickle"``)."""
        return self.ensure_transport().name

    @property
    def alive(self) -> bool:
        """Whether worker processes currently exist."""
        return self._executor is not None

    def _close_executor(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def close(self) -> None:
        """Tear down the workers and the transport (the shm segment is
        unlinked); the next submission recreates both."""
        self._close_executor()
        transport, self._transport = self._transport, None
        if transport is not None:
            transport.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def _dump_blackbox(self, task_index: int, exc: BaseException) -> str | None:
        """Write the flight ring on a permanent task failure; returns path.

        Needs both a dump directory and a registry with a flight recorder
        attached; silently a no-op otherwise (the crash still raises).
        """
        if self.blackbox_dir is None or self.obs is None:
            return None
        path = os.path.join(
            self.blackbox_dir,
            f"blackbox-pool-{self.obs.run_id or os.getpid()}.jsonl",
        )
        try:
            return self.obs.dump_blackbox(
                path,
                reason=f"task {task_index} exhausted retries: {exc}",
                extra={"task_index": task_index},
            )
        except OSError:  # pragma: no cover - dump dir unwritable
            return None

    # -- submission ------------------------------------------------------------

    def imap_unordered(
        self, fn: _t.Callable, tasks: _t.Sequence
    ) -> _t.Iterator:
        """Submit ``tasks`` and yield results as they complete.

        Completion order is arbitrary; callers that need determinism
        reorder on the task index (see the engine's reorder-buffer merge).
        Tasks whose worker dies (or whose injected fault fires, or whose
        transport frame arrives corrupt) are re-dispatched in later
        rounds, up to ``max_task_retries`` per task; a permanent
        (non-retryable) task exception propagates immediately.
        """
        return self._run_rounds(fn, list(tasks))

    def _plan_round(
        self, fn: _t.Callable, pending: _t.Iterable[int], attempts: list[int],
        check_slots: bool,
    ) -> tuple[dict[int, _t.Callable], dict[int, str]]:
        """Fault decisions for one dispatch round, taken before anything
        is submitted.

        Deciding up front — rather than interleaved with submission —
        keeps the injection sequence a function of (pending set, attempt
        counts) alone: a pool break detected *during* submission cannot
        shift which tasks get faulted.  ``transport.slot`` decisions are
        only drawn when the transport has slots (the site is dormant on
        the pickle path), and ride the wrapped task into the worker.
        """
        calls = {i: fn for i in pending}
        slot_faults: dict[int, str] = {}
        inj = self.faults
        if inj is not None:
            for i in sorted(calls):
                decision = inj.check("pool.worker", index=i, attempt=attempts[i])
                if decision is not None:
                    if decision.action == "kill":
                        calls[i] = _injected_kill
                    else:  # fail / drop / corrupt all degrade to a raised task
                        calls[i] = _injected_failure
                if check_slots:
                    slot_decision = inj.check(
                        "transport.slot", index=i, attempt=attempts[i]
                    )
                    if slot_decision is not None:
                        slot_faults[i] = slot_decision.action
        return calls, slot_faults

    def _run_rounds(self, fn: _t.Callable, tasks: list) -> _t.Iterator:
        attempts = [0] * len(tasks)
        pending = set(range(len(tasks)))
        while pending:
            executor = self.ensure()
            transport = self.ensure_transport()
            calls, slot_faults = self._plan_round(
                fn, pending, attempts, check_slots=transport.name == "shm"
            )
            queue = collections.deque(sorted(pending))
            futures: dict[_cf.Future, tuple[int, int]] = {}
            broken = False
            failed: list[tuple[int, BaseException]] = []

            def submit_ready() -> None:
                """Submit queued tasks while the slot window is open."""
                nonlocal broken
                while queue and not broken:
                    slot = transport.acquire()
                    if slot is None:
                        # ring full: wait for a completion to free a slot
                        if self.obs is not None:
                            self.obs.count("transport.slot_wait")
                        return
                    i = queue.popleft()
                    wfn, wargs = transport.wrap(
                        calls[i], tasks[i], slot, slot_faults.get(i)
                    )
                    try:
                        futures[executor.submit(wfn, wargs)] = (i, slot)
                    except (BrokenProcessPool, RuntimeError):
                        # the break surfaced at submit time; unsubmitted
                        # tasks simply stay pending for the next round
                        transport.release(slot)
                        broken = True

            submit_ready()
            if queue and not futures and not broken:  # pragma: no cover
                raise TransportError(
                    "no free transport slot with no task in flight "
                    "(slot accounting leak)"
                )
            while futures:
                done, _ = _cf.wait(futures, return_when=_cf.FIRST_COMPLETED)
                for fut in done:
                    # pop our reference immediately: a finished Future
                    # pins its result object, and holding the whole
                    # round's futures would make parent memory O(all
                    # results) — the barrier the streaming merge exists
                    # to avoid
                    i, slot = futures.pop(fut)
                    try:
                        raw = fut.result()
                    except (BrokenProcessPool, _cf.CancelledError) as exc:
                        # the worker died holding this slot; whatever
                        # half-frame it left there is released for reuse
                        # — the next assignment overwrites it
                        transport.release(slot)
                        broken = True
                        failed.append(
                            (i, WorkerCrashError(
                                f"worker died while running task {i}: {exc}",
                                task_index=i,
                            ))
                        )
                        continue
                    except BaseException as exc:
                        transport.release(slot)
                        if is_retryable(exc):
                            failed.append((i, exc))
                            continue
                        raise  # permanent: retrying a deterministic bug is futile
                    try:
                        result = transport.decode(raw, task_index=i)
                    except TransportCorruptionError as exc:
                        transport.release(slot)
                        if self.obs is not None:
                            self.obs.count("transport.corrupt")
                        failed.append((i, exc))
                        continue
                    transport.release(slot)
                    pending.discard(i)
                    yield result
                submit_ready()
                if queue and not futures and not broken:  # pragma: no cover
                    raise TransportError(
                        "no free transport slot with no task in flight "
                        "(slot accounting leak)"
                    )
            if broken:
                self.respawns += 1
                if self.obs is not None:
                    self.obs.count("pool.respawn")
                # discard the dead executor; next round respawns.  The
                # transport survives: every slot was released as its
                # future was consumed, so the ring is whole.
                self._close_executor()
            for i, exc in failed:
                attempts[i] += 1
                if attempts[i] > self.max_task_retries:
                    msg = (
                        f"task {i} failed after {attempts[i]} attempts "
                        f"(last: {exc})"
                    )
                    box = self._dump_blackbox(i, exc)
                    if box is not None:
                        msg += f" [black box: {box}]"
                    raise mark_retryable(
                        WorkerCrashError(msg, task_index=i),
                        False,
                    ) from exc
                self.redispatches += 1
                if self.obs is not None:
                    self.obs.count("retry.count")
                    self.obs.count("retry.pool")
