"""Persistent worker pool with per-worker cached, mmap-backed chunk reads.

The streaming engine's process management lives here, split from the
dataflow in :mod:`repro.exec.localmr`:

* :class:`WorkerPool` keeps one ``multiprocessing`` pool alive across
  fragments *and jobs* — the seed engine forked a fresh pool per ``run()``
  and paid create/teardown plus cold worker caches every time.
* Workers read chunks through a small per-process cache of ``mmap``-backed
  file handles (:func:`read_chunk_cached`): one ``open``+``mmap`` per file
  per worker lifetime instead of the seed's open/seek/read syscall triple
  per chunk, with slices served straight from the page cache.
* Map tasks are *batches* of consecutive chunks (:func:`run_batch`).  A
  worker folds every chunk of its batch into one combiner map and ships
  that single map back, so IPC pickling scales with batches (a few per
  worker) rather than chunks.

Start methods: ``forkserver`` is the default where available — bare
``fork`` of a threaded parent is deadlock-prone (any lock held by another
thread at fork time stays locked forever in the child), and the paper's
daemon-shaped deployments are exactly the threaded-parent case.  ``fork``
remains selectable for fork-safe parents; Windows gets ``spawn``.
"""

from __future__ import annotations

import collections
import mmap
import multiprocessing as mp
import os
import sys
import time
import typing as _t

from repro.errors import WorkloadError
from repro.exec.chunks import FileChunk

__all__ = ["WorkerPool", "read_chunk_cached", "resolve_start_method", "run_batch"]

#: per-process cap on cached (file, mmap) pairs
_MAX_CACHED_FILES = 8

#: per-process mmap cache: path -> (ino, size, mtime_ns, file, mmap)
_HANDLES: "collections.OrderedDict[str, tuple[int, int, int, _t.BinaryIO, mmap.mmap | None]]" = (
    collections.OrderedDict()
)


def _drop_handle(path: str) -> None:
    ino, size, mtime, f, mm = _HANDLES.pop(path)
    if mm is not None:
        mm.close()
    f.close()


def read_chunk_cached(chunk: FileChunk) -> bytes:
    """The chunk's bytes via this process's cached ``mmap`` of the file.

    One ``stat`` revalidates the cache entry (inode/size/mtime — the file
    may have been replaced between jobs); a hit costs a single slice off
    the mapping, no open/seek/read.  Falls back to an empty mapping for
    zero-length files, which cannot be mmapped.
    """
    path = chunk.path
    st = os.stat(path)
    entry = _HANDLES.get(path)
    if entry is not None and (st.st_ino, st.st_size, st.st_mtime_ns) != entry[:3]:
        _drop_handle(path)
        entry = None
    if entry is None:
        f = open(path, "rb")
        mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ) if st.st_size else None
        entry = (st.st_ino, st.st_size, st.st_mtime_ns, f, mm)
        _HANDLES[path] = entry
        while len(_HANDLES) > _MAX_CACHED_FILES:
            _drop_handle(next(iter(_HANDLES)))
    else:
        _HANDLES.move_to_end(path)
    mm = entry[4]
    if mm is None or chunk.length == 0:
        return b""
    return mm[chunk.offset : chunk.end]


def run_batch(args: tuple) -> tuple[int, dict, list | None]:
    """Worker body: map a batch of consecutive chunks into one combiner map.

    Returns ``(batch_index, combiner_map, segments)``.  All of the batch's
    chunks fold into a single accumulator — with a ``combine_fn`` this is
    worker-side combining across chunks (licensed by the combiner contract:
    an associative/commutative fold), without one it is value-list
    extension in chunk order — so the pipe carries one map per batch.
    ``segments`` are wall-clock span tuples ``(name, t0, t1, wall_dur,
    attrs)`` per chunk when tracing is on, else ``None`` (tracing-off runs
    ship nothing extra over IPC).
    """
    index, chunks, map_fn, combine_fn, params, want_spans = args
    segments: list | None = [] if want_spans else None

    acc: dict[object, object] = {}
    if combine_fn is None:
        def emit(key: object, value: object) -> None:
            acc.setdefault(key, []).append(value)  # type: ignore[union-attr]
    else:
        def emit(key: object, value: object) -> None:
            acc[key] = combine_fn(acc[key], value) if key in acc else value

    for chunk in chunks:
        t0 = time.time() if want_spans else 0.0
        w0 = time.perf_counter() if want_spans else 0.0
        data = read_chunk_cached(chunk)
        if want_spans:
            segments.append(
                (
                    "localmr.read_chunk",
                    t0,
                    time.time(),
                    time.perf_counter() - w0,
                    {"batch": index, "bytes": len(data), "pid": os.getpid()},
                )
            )
        t0 = time.time() if want_spans else 0.0
        w0 = time.perf_counter() if want_spans else 0.0
        keys_before = len(acc)
        if data:
            map_fn(data, emit, params)
        if want_spans:
            segments.append(
                (
                    "localmr.map_chunk",
                    t0,
                    time.time(),
                    time.perf_counter() - w0,
                    {
                        "batch": index,
                        "keys": len(acc) - keys_before,
                        "pid": os.getpid(),
                    },
                )
            )
    return index, acc, segments


def resolve_start_method(preferred: str | None = None) -> str:
    """Pick the multiprocessing start method for a :class:`WorkerPool`.

    ``preferred`` wins when given (validated against this platform);
    otherwise ``forkserver`` where available, ``spawn`` on Windows,
    ``fork`` as the last resort.
    """
    available = mp.get_all_start_methods()
    if preferred is not None:
        if preferred not in available:
            raise WorkloadError(
                f"start method {preferred!r} not available here "
                f"(have: {', '.join(available)})"
            )
        return preferred
    if os.name == "nt":
        return "spawn"
    if "forkserver" in available and _main_is_reimportable():
        return "forkserver"
    return "fork"


def _main_is_reimportable() -> bool:
    """Whether forkserver/spawn workers can reconstruct ``__main__``.

    Those start methods re-import the parent's ``__main__`` in each
    worker; when the parent is interactive or fed from stdin there is no
    file to re-import and every worker dies at startup — which the pool
    answers by forking a replacement, forever.  Detect that case up front
    and fall back to ``fork``.
    """
    main = sys.modules.get("__main__")
    if main is None:  # pragma: no cover - embedded interpreters
        return False
    if getattr(getattr(main, "__spec__", None), "name", None) is not None:
        return True  # importable by module name (python -m, pytest, ...)
    main_file = getattr(main, "__file__", None)
    return main_file is not None and os.path.exists(main_file)


class WorkerPool:
    """A lazily created, persistent ``multiprocessing`` pool.

    The pool is built on first use and reused for every subsequent batch
    submission until :meth:`close` — across fragments of one out-of-core
    job and across jobs on the same engine — so worker processes keep
    their warm module imports and mmap handle caches.  Usable as a
    context manager; closing is idempotent and the pool resurrects on the
    next submission after a close.
    """

    def __init__(self, n_workers: int, start_method: str | None = None):
        if n_workers < 1:
            raise WorkloadError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.start_method = resolve_start_method(start_method)
        self._pool: mp.pool.Pool | None = None

    # -- lifecycle -------------------------------------------------------------

    def ensure(self) -> mp.pool.Pool:
        """The live pool, creating it on first use."""
        if self._pool is None:
            ctx = mp.get_context(self.start_method)
            if self.start_method == "forkserver":
                try:
                    # warm the server with the library so each forked
                    # worker starts with repro importable (no-op if the
                    # server is already up)
                    ctx.set_forkserver_preload(["repro"])
                except Exception:  # pragma: no cover - best-effort
                    pass
            self._pool = ctx.Pool(processes=self.n_workers)
        return self._pool

    @property
    def alive(self) -> bool:
        """Whether worker processes currently exist."""
        return self._pool is not None

    def close(self) -> None:
        """Tear down the worker processes (next submission recreates them)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- submission ------------------------------------------------------------

    def imap_unordered(
        self, fn: _t.Callable, tasks: _t.Sequence
    ) -> _t.Iterator:
        """Submit ``tasks`` and yield results as they complete.

        Completion order is arbitrary; callers that need determinism
        reorder on the task index (see the engine's reorder-buffer merge).
        """
        return self.ensure().imap_unordered(fn, tasks)
