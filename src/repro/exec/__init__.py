"""Real-machine execution engine: a streaming multiprocessing mini-Phoenix.

Everything else in this package runs inside the deterministic simulator.
This subpackage is the *real* counterpart: the same programming model
(map / reduce / partition-with-integrity-check / merge) executed with
``multiprocessing`` over actual files on the machine running the tests —
the honest demonstration that the McSD programming framework is
implementable outside the simulator.

The engine is a bounded-memory streaming pipeline: a persistent worker
pool (:mod:`repro.exec.pool`) with mmap-backed chunk reads, overlapped
map/merge via ``imap_unordered``, and an out-of-core fragment mode
(:mod:`repro.exec.outofcore`) that spills sorted runs to disk when the
input exceeds the configured memory budget — the paper's Fig 6
partitioning loop on real hardware.  The pre-streaming barrier engine is
frozen in :mod:`repro.exec.seed_engine` for the perf gate.

GIL note: workers are OS *processes* (not threads), so map tasks genuinely
run in parallel on multicore hosts; on a single-core CI box the engine
still works, it just cannot speed up — which is exactly why the paper's
performance claims are carried by the simulator (DESIGN.md §2).
"""

from repro.exec.chunks import (
    chunk_file,
    read_chunk,
    read_chunk_cached,
    read_chunk_view,
)
from repro.exec.localmr import LocalJobResult, LocalMapReduce
from repro.exec.outofcore import plan_fragments
from repro.exec.pool import WorkerPool, resolve_start_method
from repro.exec.seed_engine import SeedLocalMapReduce
from repro.exec.transport import (
    PickleTransport,
    ShmRingTransport,
    Transport,
    make_transport,
)

__all__ = [
    "chunk_file",
    "read_chunk",
    "read_chunk_cached",
    "read_chunk_view",
    "LocalMapReduce",
    "LocalJobResult",
    "WorkerPool",
    "resolve_start_method",
    "plan_fragments",
    "SeedLocalMapReduce",
    "Transport",
    "PickleTransport",
    "ShmRingTransport",
    "make_transport",
]
