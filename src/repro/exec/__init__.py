"""Real-machine execution engine: a multiprocessing mini-Phoenix.

Everything else in this package runs inside the deterministic simulator.
This subpackage is the *real* counterpart: the same programming model
(map / reduce / partition-with-integrity-check / merge) executed with
``multiprocessing`` over actual files on the machine running the tests —
the honest demonstration that the McSD programming framework is
implementable outside the simulator.

GIL note: workers are OS *processes* (not threads), so map tasks genuinely
run in parallel on multicore hosts; on a single-core CI box the engine
still works, it just cannot speed up — which is exactly why the paper's
performance claims are carried by the simulator (DESIGN.md §2).
"""

from repro.exec.chunks import chunk_file, read_chunk
from repro.exec.localmr import LocalJobResult, LocalMapReduce

__all__ = ["chunk_file", "read_chunk", "LocalMapReduce", "LocalJobResult"]
