"""Worker→parent result transport: the swappable zero-copy data plane.

Every map batch ends with the worker handing its combiner map back to
the parent.  The *transport* is the seam that decides how those bytes
travel:

* :class:`PickleTransport` — the status quo: the result rides the
  executor's result pipe as an ordinary pickle.  Two full copies (worker
  ``dumps`` → pipe → parent ``loads``) plus pipe syscalls sized by the
  payload.
* :class:`ShmRingTransport` — a ring of preallocated slots in one
  ``multiprocessing.shared_memory`` segment.  The parent assigns a free
  slot at submission; the worker pickles its result **directly into the
  slot** (a ``pickle.Pickler`` over a writer that lands bytes straight
  in shared memory) behind a ``<length:u32><crc32:u32>`` little-endian
  frame — the spill-block format of :mod:`repro.exec.outofcore` — and
  ships only a tiny ``("slot", i, nbytes)`` descriptor over the pipe.
  The parent verifies the crc and unpickles **off a ``memoryview`` of
  the slot**: no intermediate ``bytes`` materializes on either side.

Slot lifecycle is entirely parent-managed, which is what keeps the ring
recoverable under chaos: a slot is *free* → *assigned* (at submit) →
*released* (when the task's future is consumed — successfully decoded,
failed, or the worker died mid-write).  A worker killed mid-slot leaves
arbitrary garbage in the slot; the parent releases it on the
``BrokenProcessPool`` path and the next assignment simply overwrites the
frame.  A corrupt frame (crc mismatch) raises the *retryable*
:class:`~repro.errors.TransportCorruptionError`, so the pool's bounded
retry re-runs the map batch — the input chunks are the durable copy.

Degradation is always toward correctness: shm creation failing
(``/dev/shm`` missing or exhausted) falls back to the pickle transport;
a result too large for a slot, or a worker that cannot attach the
segment, returns the result inline through the pipe.  Both paths bump
the ``transport.fallback`` counter.  ``transport.bytes`` counts payload
bytes moved through slots and ``transport.slot_wait`` counts times the
parent had to wait for a free slot before submitting.

Fault site ``transport.slot`` (worker-side, decision taken parent-side
at submission for determinism): *kill* dies mid-slot-write via
``os._exit`` after half the frame is written, *corrupt* flips one
payload byte after the crc is computed, *fail* raises in place of the
slot write.
"""

from __future__ import annotations

import os
import pickle
import struct
import typing as _t
import zlib

from multiprocessing import shared_memory

from repro.errors import TransportCorruptionError, TransportError

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

__all__ = [
    "Transport",
    "PickleTransport",
    "ShmRingTransport",
    "make_transport",
    "DEFAULT_SLOT_BYTES",
    "SLOTS_PER_WORKER",
]

#: default payload capacity per ring slot (plus the 8-byte frame header)
DEFAULT_SLOT_BYTES = 1 << 20

#: ring slots allocated per pool worker — 2x the engine's default
#: batches-per-worker, so a full round of batches never waits on a slot
SLOTS_PER_WORKER = 4

#: ``<length:u32><crc32:u32>`` frame in front of every slot payload
#: (the spill-block format of :mod:`repro.exec.outofcore`)
_FRAME = struct.Struct("<II")


class Transport:
    """The seam: how worker results travel back to the parent.

    The pool drives the protocol: ``acquire`` a slot before submitting,
    ``wrap`` the task so the worker routes its result through the
    transport, ``decode`` the raw future result back into the value, and
    ``release`` the slot exactly once when the future is consumed —
    whether it decoded, raised, or died.
    """

    name = "none"

    def acquire(self) -> int | None:
        """A free slot id, or ``None`` when the ring is full."""
        raise NotImplementedError

    def release(self, slot: int) -> None:
        """Return ``slot`` to the free list (idempotence not required —
        the pool releases each assignment exactly once)."""
        raise NotImplementedError

    def wrap(
        self, fn: _t.Callable, args: object, slot: int, fault: str | None = None
    ) -> tuple[_t.Callable, object]:
        """The (picklable) task body and args that route through ``slot``."""
        raise NotImplementedError

    def decode(self, raw: object, task_index: int | None = None) -> object:
        """The task's result from the raw future value."""
        raise NotImplementedError

    def close(self) -> None:
        """Tear down transport resources (idempotent)."""


class PickleTransport(Transport):
    """Results ride the executor's result pipe as ordinary pickles.

    Slot accounting degenerates: every acquire succeeds (the pipe is the
    buffer), so the pool's windowed submission reduces to submit-all —
    exactly the pre-transport behavior.
    """

    name = "pickle"

    def acquire(self) -> int | None:
        return -1

    def release(self, slot: int) -> None:
        pass

    def wrap(
        self, fn: _t.Callable, args: object, slot: int, fault: str | None = None
    ) -> tuple[_t.Callable, object]:
        return fn, args

    def decode(self, raw: object, task_index: int | None = None) -> object:
        return raw

    def close(self) -> None:
        pass


# -- worker side of the shm ring --------------------------------------------

#: per-worker-process cache of attached segments: name -> SharedMemory
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACHED.get(name)
    if shm is None:
        shm = _ATTACHED[name] = shared_memory.SharedMemory(name=name)
    return shm


class _SlotFull(Exception):
    """Internal: the pickle outgrew the slot (worker falls back inline)."""


class _SlotWriter:
    """File-like target that lands ``Pickler`` output straight in shm."""

    __slots__ = ("buf", "pos", "end")

    def __init__(self, buf: memoryview, start: int, end: int):
        self.buf = buf
        self.pos = start
        self.end = end

    def write(self, data) -> int:
        n = len(data)
        new = self.pos + n
        if new > self.end:
            raise _SlotFull
        self.buf[self.pos : new] = data
        self.pos = new
        return n


def _shm_task(packed: tuple) -> tuple:
    """Worker body: run the inner task, frame its result into the slot.

    Returns a tiny descriptor — ``("slot", slot, nbytes)`` on success,
    ``("inline", slot, result)`` when the result outgrew the slot or the
    segment could not be attached (clean degradation to the pipe).
    Injected ``transport.slot`` faults (decided parent-side, carried in
    ``packed`` for determinism): *kill* half-writes the frame then dies,
    *corrupt* flips a payload byte after the crc, *fail* raises.
    """
    shm_name, slot, offset, capacity, fault, fn, args = packed
    result = fn(args)
    if fault == "fail":
        from repro.errors import FaultInjectedError

        raise FaultInjectedError(
            "transport.slot", f"injected slot-write failure (slot {slot})"
        )
    try:
        buf = _attach(shm_name).buf
    except OSError:
        return ("inline", slot, result)
    start = offset + _FRAME.size
    writer = _SlotWriter(buf, start, offset + capacity)
    try:
        pickle.Pickler(writer, protocol=pickle.HIGHEST_PROTOCOL).dump(result)
    except _SlotFull:
        return ("inline", slot, result)
    nbytes = writer.pos - start
    payload = buf[start : start + nbytes]
    try:
        crc = zlib.crc32(payload)
        if fault == "kill":
            # die mid-slot: half a frame, header never written — the
            # parent must see a dead worker and a recoverable ring
            _FRAME.pack_into(buf, offset, nbytes, 0)
            os._exit(3)
        if fault == "corrupt":
            payload[nbytes // 2] ^= 0xFF
    finally:
        payload.release()
    _FRAME.pack_into(buf, offset, nbytes, crc)
    return ("slot", slot, nbytes)


# -- parent side -------------------------------------------------------------


class ShmRingTransport(Transport):
    """Preallocated shared-memory ring: results land in slots, not pipes."""

    name = "shm"

    def __init__(
        self,
        n_slots: int,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        obs: "Observability | None" = None,
    ):
        if n_slots < 1:
            raise TransportError(f"n_slots must be >= 1, got {n_slots}")
        if slot_bytes <= _FRAME.size:
            raise TransportError(f"slot_bytes must exceed {_FRAME.size}")
        self.n_slots = n_slots
        self.slot_bytes = slot_bytes
        self.obs = obs
        self._shm: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            create=True, size=n_slots * slot_bytes
        )
        self._free = list(range(n_slots - 1, -1, -1))  # pop() hands out slot 0 first

    @property
    def shm_name(self) -> str:
        if self._shm is None:
            raise TransportError("transport is closed")
        return self._shm.name

    def acquire(self) -> int | None:
        return self._free.pop() if self._free else None

    def release(self, slot: int) -> None:
        self._free.append(slot)

    def wrap(
        self, fn: _t.Callable, args: object, slot: int, fault: str | None = None
    ) -> tuple[_t.Callable, object]:
        return _shm_task, (
            self.shm_name, slot, slot * self.slot_bytes, self.slot_bytes,
            fault, fn, args,
        )

    def decode(self, raw: object, task_index: int | None = None) -> object:
        kind, slot, rest = raw
        if kind == "inline":
            # the worker could not use the slot (result too large or
            # attach failed): the result came through the pipe
            if self.obs is not None:
                self.obs.count("transport.fallback")
            return rest
        offset = slot * self.slot_bytes
        buf = self._shm.buf
        length, crc = _FRAME.unpack_from(buf, offset)
        nbytes = rest
        if length != nbytes:
            raise TransportCorruptionError(
                slot, task_index,
                f"frame length {length} != descriptor {nbytes}",
            )
        start = offset + _FRAME.size
        payload = buf[start : start + nbytes]
        try:
            if zlib.crc32(payload) != crc:
                raise TransportCorruptionError(slot, task_index)
            result = pickle.loads(payload)
        finally:
            payload.release()
        if self.obs is not None:
            self.obs.count("transport.bytes", nbytes)
        return result

    def close(self) -> None:
        shm, self._shm = self._shm, None
        if shm is not None:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def make_transport(
    kind: str,
    n_workers: int,
    slot_bytes: int = DEFAULT_SLOT_BYTES,
    obs: "Observability | None" = None,
) -> Transport:
    """Build the transport for a pool of ``n_workers``.

    ``kind`` is ``"pickle"``, ``"shm"``, or ``"auto"`` (shm where it
    works).  shm creation failing — no ``/dev/shm``, exhausted tmpfs, a
    platform without POSIX shared memory — degrades to the pickle
    transport and bumps ``transport.fallback``; results are identical
    either way, only the copy count changes.
    """
    if kind == "pickle":
        return PickleTransport()
    if kind not in ("shm", "auto"):
        raise TransportError(
            f"unknown transport {kind!r} (have: pickle, shm, auto)"
        )
    try:
        return ShmRingTransport(
            n_slots=n_workers * SLOTS_PER_WORKER, slot_bytes=slot_bytes, obs=obs
        )
    except OSError:
        if obs is not None:
            obs.count("transport.fallback")
        return PickleTransport()
