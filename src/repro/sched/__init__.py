"""The cluster control plane: queueing, admission, placement, dispatch.

``repro.sched`` turns the repo's one-shot job runners into a *served*
system: an open-loop stream of :class:`~repro.core.job.DataJob`\\ s flows
through a bounded admission queue, a pluggable ordering policy (FIFO /
SJF / weighted fair share), a result cache, and out to the existing
offload machinery — with completion guaranteed for every admitted job.

See ``DESIGN.md`` §11 for the lifecycle and policy table.
"""

from repro.sched.cache import ResultCache
from repro.sched.health import (
    HeartbeatConfig,
    NodeHealthTracker,
    PhiAccrualDetector,
)
from repro.sched.policies import (
    FairShareOrdering,
    FIFOOrdering,
    OrderingPolicy,
    SJFOrdering,
    make_ordering,
)
from repro.sched.queue import JobQueue, QueuedJob
from repro.sched.scheduler import ClusterScheduler, CompletedJob

__all__ = [
    "ResultCache",
    "OrderingPolicy",
    "FIFOOrdering",
    "SJFOrdering",
    "FairShareOrdering",
    "make_ordering",
    "JobQueue",
    "QueuedJob",
    "ClusterScheduler",
    "CompletedJob",
    "HeartbeatConfig",
    "NodeHealthTracker",
    "PhiAccrualDetector",
]
