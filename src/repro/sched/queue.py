"""The bounded admission queue of the cluster control plane.

A :class:`JobQueue` holds admitted-but-undispatched jobs.  Admission is
the *only* point where the control plane may refuse work: a full queue
raises :class:`~repro.errors.AdmissionError` (explicit backpressure — the
overloaded system sheds load instead of queueing unboundedly), while
re-queues of already-admitted jobs (fault-path re-placement) always
succeed, so an admitted job can never be dropped by its own retry.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.job import DataJob
from repro.errors import AdmissionError
from repro.sched.policies import OrderingPolicy
from repro.sim.events import Event

__all__ = ["QueuedJob", "JobQueue"]


@dataclasses.dataclass
class QueuedJob:
    """One admitted job and its control-plane bookkeeping."""

    job: DataJob
    seq: int
    submitted_at: float
    #: fires with the JobResult (or fails) when the job completes
    done: Event
    #: SD nodes that may serve the job (primary first)
    candidates: tuple[str, ...] = ()
    #: dispatch attempts so far (0 while never dispatched)
    attempts: int = 0
    #: nodes that failed this job (excluded from later placements)
    excluded: set = dataclasses.field(default_factory=set)
    #: set once retries are exhausted: place on the host, which cannot
    #: silently die on us (completion guarantee for admitted jobs)
    force_host: bool = False
    dispatched_at: float | None = None
    #: the open ``sched.queue`` span (None with tracing off)
    queue_span: object = None
    #: admission-time result-cache key (None = uncacheable / cache off)
    cache_key: tuple | None = None
    #: distributed jobs only: the replica set chosen at the latest
    #: dispatch (every healthy, uncrowded candidate at that instant)
    shard_nodes: tuple[str, ...] | None = None
    #: structured per-shard failure records from the most recent failed
    #: attempt (``DistributedJobError.failures``) — what the force-host
    #: log line and trace_view surface as the "why"
    last_failures: list = dataclasses.field(default_factory=list)

    @property
    def tenant(self) -> str:
        """The submitting tenant."""
        return self.job.tenant


class JobQueue:
    """Bounded queue with a pluggable ordering policy."""

    def __init__(self, ordering: OrderingPolicy, limit: int = 64):
        if limit < 1:
            raise AdmissionError("queue", 0, limit)
        self.ordering = ordering
        self.limit = limit
        self._entries: list[QueuedJob] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> _t.Iterator[QueuedJob]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        """True when admission would be refused."""
        return len(self._entries) >= self.limit

    def admit(self, entry: QueuedJob) -> None:
        """Admit a new job; raises :class:`AdmissionError` when full."""
        if self.full:
            raise AdmissionError(entry.job.app, len(self._entries), self.limit)
        self._entries.append(entry)

    def requeue(self, entry: QueuedJob) -> None:
        """Put an already-admitted job back (fault path).

        Never refused: admission happened once; the bound exists to shed
        *new* load, not to drop work the control plane already accepted.
        """
        self._entries.append(entry)

    def ordered(self) -> list[QueuedJob]:
        """Queued entries in the policy's dispatch-preference order."""
        return self.ordering.ordered(self._entries)

    def take(self, entry: QueuedJob) -> QueuedJob:
        """Remove ``entry`` for dispatch, charging the ordering policy."""
        self._entries.remove(entry)
        self.ordering.on_dispatch(entry)
        return entry

    def depth_for(self, node: str) -> int:
        """Queued jobs whose *only* feasible target is ``node``."""
        return sum(
            1
            for e in self._entries
            if len(e.candidates) == 1 and e.candidates[0] == node
        )

    def depths(self) -> dict[str, int]:
        """Per-node pinned queue depth (the placement load signal).

        A job with one candidate is future load on that node; a job free
        to go anywhere is not attributed to any single node.
        """
        out: dict[str, int] = {}
        for e in self._entries:
            if len(e.candidates) == 1:
                name = e.candidates[0]
                out[name] = out.get(name, 0) + 1
        return out
