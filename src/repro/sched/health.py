"""Heartbeat failure detection and the node-health state machine (§15).

The scheduler's PR-8 health model was binary: an attempt timeout
quarantined a node forever.  This module replaces it with a *suspicion
score* fed by daemon heartbeats over the fabric — a simplified
phi-accrual detector (Hayashibara et al.): the longer a node stays
silent relative to its recent inter-arrival mean, the higher its phi.

States per node::

    healthy -> suspected -> quarantined -> probation -> healthy
                  \\______________________________________/

* **suspected** (``phi >= phi_suspect``): dispatch avoids the node but
  nothing is torn down — a transient stall recovers for free.
* **quarantined** (``phi >= phi_quarantine``, or a forced quarantine from
  an attempt timeout): the node leaves the eligible set.
* **probation**: a quarantined node whose beats resume is trusted with a
  limited dispatch share (one canary job at a time); its first success
  restores it to healthy, a failure re-quarantines it.

The exponential variant of phi keeps the math dependency-free:
``phi = log10(e) * elapsed / mean_interval`` — phi of 1 means the
silence is ~10x less likely than expected, 2 means ~100x, and so on.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

__all__ = [
    "HeartbeatConfig",
    "PhiAccrualDetector",
    "NodeHealthTracker",
    "HEALTHY",
    "SUSPECTED",
    "QUARANTINED",
    "PROBATION",
]

#: log10(e): converts the exponential-model exceedance to a phi scale
_LOG10_E = 0.4342944819032518

HEALTHY = "healthy"
SUSPECTED = "suspected"
QUARANTINED = "quarantined"
PROBATION = "probation"


@dataclasses.dataclass(frozen=True)
class HeartbeatConfig:
    """Tuning for the heartbeat loop and the suspicion thresholds."""

    #: daemon ping period (sim seconds); also the monitor tick
    interval: float = 0.25
    #: sliding window of inter-arrival samples per node
    window: int = 16
    #: before this many samples, the configured interval is the mean
    min_samples: int = 3
    #: phi at which dispatch starts avoiding the node (~10^-2 likelihood)
    phi_suspect: float = 2.0
    #: phi at which the node is quarantined (~10^-5 likelihood)
    phi_quarantine: float = 5.0


class PhiAccrualDetector:
    """Suspicion scores from heartbeat inter-arrival times."""

    def __init__(self, cfg: HeartbeatConfig | None = None):
        self.cfg = cfg or HeartbeatConfig()
        self._last: dict[str, float] = {}
        self._intervals: dict[str, collections.deque] = {}

    def beat(self, node: str, t: float) -> None:
        """Record a heartbeat from ``node`` at sim time ``t``."""
        last = self._last.get(node)
        if last is not None:
            window = self._intervals.get(node)
            if window is None:
                window = self._intervals[node] = collections.deque(
                    maxlen=self.cfg.window
                )
            window.append(max(1e-9, t - last))
        self._last[node] = t

    def last_beat(self, node: str) -> float | None:
        """Sim time of the node's most recent beat (None: never beat)."""
        return self._last.get(node)

    def reset(self, node: str) -> None:
        """Forget a node's beat history entirely.

        Called when a quarantined node's beats resume: both the window
        and the last-beat time must go, or the huge dead-gap interval
        would enter the (fresh) window on the very next beat, inflating
        the mean and desensitizing the detector exactly when it must
        stay sharp.  The next beat re-arms ``last_beat`` without
        recording an interval.
        """
        self._intervals.pop(node, None)
        self._last.pop(node, None)

    def phi(self, node: str, now: float) -> float:
        """Current suspicion of ``node`` (0.0 during startup grace)."""
        last = self._last.get(node)
        if last is None:
            return 0.0  # grace until the first beat arrives
        window = self._intervals.get(node)
        if window is not None and len(window) >= self.cfg.min_samples:
            mean = sum(window) / len(window)
        else:
            mean = self.cfg.interval
        return _LOG10_E * (now - last) / max(mean, 1e-9)


class NodeHealthTracker:
    """The per-node recovery state machine over a phi-accrual detector.

    ``unhealthy`` is shared with the scheduler (the same set its
    placement filters consult), so quarantine/probation transitions are
    visible to dispatch without any extra plumbing.
    """

    def __init__(
        self,
        sim,
        node_names: _t.Iterable[str],
        cfg: HeartbeatConfig | None = None,
        unhealthy: set | None = None,
    ):
        self.sim = sim
        self.cfg = cfg or HeartbeatConfig()
        self.detector = PhiAccrualDetector(self.cfg)
        self.state: dict[str, str] = {name: HEALTHY for name in node_names}
        self.unhealthy: set = unhealthy if unhealthy is not None else set()
        #: transition stats
        self.quarantines = 0
        self.rejoins = 0

    # -- views -------------------------------------------------------------

    @property
    def suspected(self) -> set:
        """Nodes dispatch should avoid but not tear down."""
        return {n for n, s in self.state.items() if s == SUSPECTED}

    @property
    def probation(self) -> set:
        """Rejoining nodes limited to a canary dispatch share."""
        return {n for n, s in self.state.items() if s == PROBATION}

    # -- inputs ------------------------------------------------------------

    def beat(self, node: str, t: float) -> None:
        """Feed one heartbeat into the detector."""
        if node not in self.state:
            self.state[node] = HEALTHY
        if self.state[node] == QUARANTINED:
            # beats resuming after a dead gap: drop the gap from the window
            self.detector.reset(node)
        self.detector.beat(node, t)

    def force_quarantine(self, node: str) -> None:
        """Quarantine on hard evidence (attempt timeout), phi regardless."""
        if self.state.get(node) != QUARANTINED:
            self._quarantine(node)

    def job_succeeded(self, node: str) -> None:
        """A probation node served its canary: restore full trust."""
        if self.state.get(node) == PROBATION:
            self.state[node] = HEALTHY
            self.rejoins += 1
            self.sim.obs.count("node.rejoined")

    def job_failed(self, node: str) -> None:
        """A probation node failed its canary: straight back to quarantine."""
        if self.state.get(node) == PROBATION:
            self._quarantine(node)

    def restore(self, node: str) -> None:
        """Operator override (``mark_healthy``): full trust immediately."""
        if node in self.state:
            self.state[node] = HEALTHY
        self.unhealthy.discard(node)

    # -- evaluation --------------------------------------------------------

    def evaluate(self, now: float) -> bool:
        """Advance every node's state; True when anything changed.

        Samples ``node.suspicion.<name>`` (gauge + time series) each call
        so trace_view can render the suspicion history.
        """
        obs = self.sim.obs
        changed = False
        for node in sorted(self.state):
            phi = self.detector.phi(node, now)
            obs.gauge(f"node.suspicion.{node}", phi)
            obs.sample(f"node.suspicion.{node}", now, phi)
            state = self.state[node]
            if state in (HEALTHY, SUSPECTED):
                if phi >= self.cfg.phi_quarantine:
                    self._quarantine(node)
                    changed = True
                elif phi >= self.cfg.phi_suspect:
                    if state != SUSPECTED:
                        self.state[node] = SUSPECTED
                        obs.count("node.suspected")
                        changed = True
                elif state == SUSPECTED:
                    self.state[node] = HEALTHY
                    changed = True
            elif state == QUARANTINED:
                if (
                    phi < self.cfg.phi_suspect
                    and self.detector.last_beat(node) is not None
                ):
                    # beats are flowing again: limited re-entry
                    self.state[node] = PROBATION
                    self.unhealthy.discard(node)
                    obs.count("node.probation")
                    changed = True
            elif state == PROBATION:
                if phi >= self.cfg.phi_quarantine:
                    self._quarantine(node)
                    changed = True
        return changed

    def _quarantine(self, node: str) -> None:
        self.state[node] = QUARANTINED
        self.unhealthy.add(node)
        self.quarantines += 1
        self.sim.obs.count("node.quarantined")
