"""Queue-ordering policies: which admitted job the scheduler dispatches next.

Orthogonal to *placement* (``repro.core.loadbalance`` decides where a job
runs); an :class:`OrderingPolicy` decides *which* queued job goes next:

* :class:`FIFOOrdering` — arrival order, the baseline.
* :class:`SJFOrdering` — shortest job first by declared ``input_size``
  (the paper's cost models are byte-proportional, so declared bytes are
  the service-time estimate).
* :class:`FairShareOrdering` — weighted fair share across tenants: each
  tenant accumulates *charged work* (declared bytes) as its jobs
  dispatch, and the next job comes from the tenant with the smallest
  weight-normalised consumption — a deficit scheduler, so a tenant with
  weight 2 dispatches twice the bytes of a tenant with weight 1 while
  both have backlog.

Every policy breaks ties on admission sequence, keeping the control plane
deterministic under the simulator's deterministic event order.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ConfigError

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.queue import QueuedJob

__all__ = [
    "OrderingPolicy",
    "FIFOOrdering",
    "SJFOrdering",
    "FairShareOrdering",
    "make_ordering",
]


class OrderingPolicy:
    """Base class: rank queued jobs for dispatch."""

    name = "base"

    def select(self, entries: _t.Sequence["QueuedJob"]) -> "QueuedJob":
        """The entry to dispatch next out of a non-empty candidate list."""
        raise NotImplementedError

    def on_dispatch(self, entry: "QueuedJob") -> None:
        """Hook: ``entry`` was just dispatched (policies keep accounts)."""

    def ordered(self, entries: _t.Sequence["QueuedJob"]) -> list["QueuedJob"]:
        """All entries in dispatch-preference order (head first).

        The dispatcher walks this to skip entries whose target nodes are
        at their concurrency limit without violating the policy's order.
        """
        remaining = list(entries)
        out: list[QueuedJob] = []
        while remaining:
            pick = self.select(remaining)
            remaining.remove(pick)
            out.append(pick)
        return out


class FIFOOrdering(OrderingPolicy):
    """Dispatch in admission order."""

    name = "fifo"

    def select(self, entries: _t.Sequence["QueuedJob"]) -> "QueuedJob":
        """Oldest admission first."""
        return min(entries, key=lambda e: e.seq)

    def ordered(self, entries: _t.Sequence["QueuedJob"]) -> list["QueuedJob"]:
        """Admission order (O(n log n), not the generic O(n^2) walk)."""
        return sorted(entries, key=lambda e: e.seq)


class SJFOrdering(OrderingPolicy):
    """Dispatch the smallest declared input first (ties: admission order)."""

    name = "sjf"

    def select(self, entries: _t.Sequence["QueuedJob"]) -> "QueuedJob":
        """Smallest ``input_size`` first."""
        return min(entries, key=lambda e: (e.job.input_size, e.seq))

    def ordered(self, entries: _t.Sequence["QueuedJob"]) -> list["QueuedJob"]:
        """Size order (ties by admission sequence)."""
        return sorted(entries, key=lambda e: (e.job.input_size, e.seq))


class FairShareOrdering(OrderingPolicy):
    """Weighted fair share across tenants (deficit on charged bytes).

    ``weights`` maps tenant name to a positive share; tenants absent from
    the map get ``default_weight``.  Charged work survives across queue
    refills, so a tenant that was idle does not starve everyone else when
    it returns (its consumption starts where it left off, as in classic
    start-time-fair queueing the simulation does not need).
    """

    name = "fair"

    def __init__(
        self, weights: _t.Mapping[str, float] | None = None,
        default_weight: float = 1.0,
    ):
        if default_weight <= 0:
            raise ConfigError("default_weight must be > 0")
        self.weights = dict(weights or {})
        for tenant, w in self.weights.items():
            if w <= 0:
                raise ConfigError(f"tenant {tenant!r} weight must be > 0")
        self.default_weight = default_weight
        #: charged bytes per tenant (dispatch-time accounting)
        self.consumed: dict[str, float] = {}

    def weight_of(self, tenant: str) -> float:
        """The tenant's configured (or default) share."""
        return self.weights.get(tenant, self.default_weight)

    def _virtual(self, tenant: str) -> float:
        return self.consumed.get(tenant, 0.0) / self.weight_of(tenant)

    def select(self, entries: _t.Sequence["QueuedJob"]) -> "QueuedJob":
        """The entry of the least weight-normalised-consumption tenant."""
        return min(entries, key=lambda e: (self._virtual(e.job.tenant), e.seq))

    def on_dispatch(self, entry: "QueuedJob") -> None:
        """Charge the dispatched job's bytes to its tenant."""
        tenant = entry.job.tenant
        # every dispatch charges at least one unit so zero-byte jobs still
        # rotate tenants instead of one tenant monopolising the queue
        self.consumed[tenant] = self.consumed.get(tenant, 0.0) + max(
            1.0, float(entry.job.input_size)
        )


def make_ordering(spec: str | OrderingPolicy | None) -> OrderingPolicy:
    """An :class:`OrderingPolicy` from a name, an instance, or ``None``.

    ``None`` and ``"fifo"`` give FIFO; ``"sjf"`` shortest-job-first;
    ``"fair"`` equal-weight fair share (pass a
    :class:`FairShareOrdering` instance for explicit weights).
    """
    if spec is None:
        return FIFOOrdering()
    if isinstance(spec, OrderingPolicy):
        return spec
    if spec == "fifo":
        return FIFOOrdering()
    if spec == "sjf":
        return SJFOrdering()
    if spec == "fair":
        return FairShareOrdering()
    raise ConfigError(f"unknown ordering policy {spec!r}")
