"""The result cache: memoize repeated jobs before they reach the queue.

A serving workload repeats itself — the same app over the same input with
the same parameters.  The cache keys on
``(app, input_path, mode, params, inode, mtime)`` so any rewrite of the
input (new mtime or new inode) makes old entries unreachable, and it
*also* subscribes to every watched VFS's mutation events to drop entries
for overwritten paths eagerly (staging writes carry mtime 0.0, so the key
alone cannot distinguish a rewrite at the same timestamp).

Hits are answered at admission — a cached job consumes no queue slot, no
placement, and no SD work; ``sched.cache.hit`` / ``sched.cache.miss``
counters make the hit rate observable.

Eviction is **LRU**: a hit refreshes the entry's recency, so the
capacity victim is the least-recently-*used* result, not merely the
oldest-stored one — under a skewed serving mix the popular results stay
resident however old they are.  Evictions are counted by cause
(``evictions_capacity`` vs ``evictions_invalidation``; mirrored to the
``sched.cache.evict.capacity`` / ``.invalidation`` counters when an
:class:`~repro.obs.registry.Observability` is bound), so a shrinking hit
rate is attributable: churn from a too-small cache looks completely
different from churn caused by input rewrites.
"""

from __future__ import annotations

import typing as _t

from collections import OrderedDict

from repro.errors import FileSystemError

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.builder import BuiltCluster
    from repro.core.job import DataJob, JobResult

__all__ = ["ResultCache"]


class ResultCache:
    """Keyed memoization of completed :class:`~repro.core.job.JobResult`s."""

    def __init__(self, capacity: int = 256, obs=None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        #: LRU order, least-recently-used first (get() refreshes)
        self._entries: "OrderedDict[tuple, JobResult]" = OrderedDict()
        #: input_path -> keys that depend on it (eager invalidation index)
        self._by_path: dict[str, set] = {}
        #: optional Observability for eviction-cause counters
        self.obs = obs
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions_capacity = 0
        self.evictions_invalidation = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- keys -------------------------------------------------------------

    @staticmethod
    def key_for(job: "DataJob", cluster: "BuiltCluster") -> tuple | None:
        """The cache key of a job, or ``None`` when it must not be cached.

        Uncacheable cases: the input file does not exist on the job's SD
        node (the run would fail anyway) or the params are unhashable.
        """
        sd = job.sd_node or cluster.sd_nodes[0].name
        try:
            node = cluster.node(sd)
            ino = node.fs.vfs.stat(job.input_path)
        except (KeyError, FileSystemError):
            return None
        try:
            params = tuple(sorted(job.params.items()))
            hash(params)
        except TypeError:
            return None
        return (
            job.app, job.input_path, job.mode, job.fragment_bytes,
            params, ino.ino, ino.mtime,
        )

    # -- lookup / store ----------------------------------------------------

    def get(self, key: tuple | None) -> "JobResult | None":
        """The cached result for ``key`` (counts the hit/miss).

        A hit moves the entry to the recent end: LRU, not FIFO — the
        capacity victim is the least-recently-used result.
        """
        if key is None:
            self.misses += 1
            return None
        result = self._entries.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
            self._entries.move_to_end(key)
        return result

    def put(self, key: tuple | None, result: "JobResult") -> None:
        """Store a completed job's result under its admission-time key."""
        if key is None:
            return
        if key not in self._entries and len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.evictions_capacity += 1
            if self.obs is not None:
                self.obs.count("sched.cache.evict.capacity")
        self._entries[key] = result
        self._entries.move_to_end(key)
        self._by_path.setdefault(key[1], set()).add(key)

    def _drop(self, key: tuple) -> None:
        self._entries.pop(key, None)
        deps = self._by_path.get(key[1])
        if deps is not None:
            deps.discard(key)
            if not deps:
                del self._by_path[key[1]]

    # -- invalidation -----------------------------------------------------

    def invalidate_path(self, path: str) -> int:
        """Drop every entry depending on ``path``; returns how many."""
        keys = self._by_path.pop(path, None)
        if not keys:
            return 0
        for key in keys:
            self._entries.pop(key, None)
        self.invalidations += len(keys)
        self.evictions_invalidation += len(keys)
        if self.obs is not None:
            self.obs.count("sched.cache.evict.invalidation", len(keys))
        return len(keys)

    def watch(self, vfs) -> None:
        """Invalidate on this VFS's modify/delete events."""

        def _on_event(event: str, path: str, _inode) -> None:
            if event in ("modify", "delete"):
                self.invalidate_path(path)

        vfs.on_event(_on_event)

    def watch_cluster(self, cluster: "BuiltCluster") -> None:
        """Subscribe to every SD node's VFS (where job inputs live)."""
        for sd in cluster.sd_nodes:
            self.watch(sd.fs.vfs)

    def stats(self) -> dict:
        """Counter snapshot (hierarchy hook)."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions_capacity": self.evictions_capacity,
            "evictions_invalidation": self.evictions_invalidation,
        }

    def clear(self) -> None:
        """Drop all entries (counters survive)."""
        self._entries.clear()
        self._by_path.clear()
