"""The cluster scheduler: an open-loop job stream served by the McSD cluster.

:class:`ClusterScheduler` is the control plane in front of the data plane
the repo already has (:class:`~repro.core.offload.OffloadEngine` running
:class:`~repro.core.job.DataJob`\\ s wherever a
:class:`~repro.core.loadbalance.PlacementPolicy` says).  The lifecycle of
one job::

    submit --> cache? --> admit --> (queued) --> place --> dispatch --> run
                 |          |                                 |
                 hit     AdmissionError                 retryable failure
                 |      (queue full: shed)                    |
              done now                                  requeue (node
                                                        excluded), after
                                                        max_retries: host

Guarantees:

* **Backpressure, not collapse** — a full queue rejects at admission with
  :class:`~repro.errors.AdmissionError`; an *admitted* job is never
  dropped.
* **Completion** — a retryable failure (daemon timeout, injected fault)
  re-queues the job with the failed node excluded; once retries are
  exhausted the job is pinned to the host, which runs in-process and
  cannot silently die.  Only a permanent error (unknown app, bad params)
  fails the submitter's ``done`` event.
* **Work conservation** — the dispatcher walks the ordering policy's
  preference order and skips entries whose feasible nodes are at their
  ``per_node_limit``, so a blocked head never idles a free node.
* **Load spreading** — jobs free to run on several SD nodes (replicated
  input, no explicit ``sd_node``) go to the least loaded via
  :func:`~repro.core.loadbalance.least_loaded`, and an
  :class:`~repro.core.loadbalance.AdaptivePolicy` sees the scheduler's
  per-node queue depths through :meth:`~...AdaptivePolicy.bind_depths`.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

from repro.core.distributed import DistributedEngine, DistributedJob
from repro.core.job import DataJob, JobResult
from repro.core.loadbalance import (
    AdaptivePolicy,
    Placement,
    PlacementPolicy,
    least_loaded,
)
from repro.core.offload import OffloadEngine
from repro.errors import (
    AdmissionError,
    DistributedJobError,
    OffloadTimeoutError,
    is_retryable,
)
from repro.obs.slo import HealthReport, SLOPolicy, SLOTracker, build_health_report
from repro.sched.cache import ResultCache
from repro.sched.health import HeartbeatConfig, NodeHealthTracker
from repro.sched.policies import OrderingPolicy, make_ordering
from repro.sched.queue import JobQueue, QueuedJob
from repro.sim.events import Event
from repro.sim.sync import Signal

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.builder import BuiltCluster

__all__ = ["CompletedJob", "ClusterScheduler"]


def _failure_summary(failures: list, limit: int = 3) -> str:
    """Compact ``phase@node:Cause`` rendering of shard-failure records."""
    if not failures:
        return ""
    parts = [
        f"{f.get('phase', '?')}@{f.get('node', '?')}:{f.get('cause', '?')}"
        for f in failures[:limit]
    ]
    extra = len(failures) - limit
    if extra > 0:
        parts.append(f"+{extra} more")
    return ", ".join(parts)


@dataclasses.dataclass
class CompletedJob:
    """One finished job's control-plane record (the benchmark's raw data)."""

    job: DataJob
    seq: int
    where: str
    offloaded: bool
    submitted_at: float
    dispatched_at: float
    finished_at: float
    attempts: int = 1
    from_cache: bool = False

    @property
    def tenant(self) -> str:
        """The submitting tenant."""
        return self.job.tenant

    @property
    def queue_wait(self) -> float:
        """Seconds spent admitted-but-undispatched."""
        return self.dispatched_at - self.submitted_at

    @property
    def service(self) -> float:
        """Seconds from dispatch to completion (all attempts)."""
        return self.finished_at - self.dispatched_at

    @property
    def total(self) -> float:
        """Submit-to-completion latency."""
        return self.finished_at - self.submitted_at


class ClusterScheduler:
    """Multi-tenant job scheduler over a built McSD cluster.

    Parameters
    ----------
    cluster:
        The :class:`~repro.cluster.builder.BuiltCluster` to serve.
    policy:
        Placement policy (default: :class:`AdaptivePolicy` with the
        scheduler's queue depths bound as its load signal).
    ordering:
        Queue ordering — ``"fifo"`` (default), ``"sjf"``, ``"fair"``, or
        an :class:`~repro.sched.policies.OrderingPolicy` instance.
    max_queue:
        Admission bound: queued-but-undispatched jobs beyond this are
        rejected with :class:`AdmissionError`.
    per_node_limit:
        Max jobs concurrently placed on any one node (SD or host).
    attempt_timeout:
        Deadline for one *offloaded* attempt; expiry marks the node
        unhealthy and re-queues the job.  ``None`` disables deadlines
        (a dead daemon then hangs its jobs — benchmarks always set one).
    max_retries:
        Dispatch attempts before the job is pinned to the host.
    cache:
        ``True`` (default) builds a :class:`ResultCache` watching every SD
        node's VFS; pass an instance to share/configure one, or
        ``None``/``False`` to disable memoization.
    slo:
        Per-tenant latency objectives — anything
        :class:`~repro.obs.slo.SLOTracker` accepts (a single
        :class:`~repro.obs.slo.SLOPolicy`, an iterable, a mapping, or a
        ready tracker).  Every completion and permanent failure feeds the
        tracker; :meth:`health_report` snapshots it.  ``None`` (default)
        still tracks latencies, just with no objective to verdict against.
    heartbeat:
        ``True`` or a :class:`~repro.sched.health.HeartbeatConfig` starts
        the failure detector: every SD daemon pings the host over the
        fabric and a :class:`~repro.sched.health.NodeHealthTracker` turns
        inter-arrival gaps into phi-accrual suspicion.  Suspected nodes
        are avoided (not torn down), quarantined nodes leave the eligible
        set, and a quarantined node whose beats resume re-enters through
        probation — one canary job at a time until a success restores it.
        ``None`` (default) keeps the PR-8 behavior: quarantine only on
        attempt timeout, rejoin only via :meth:`mark_healthy`.
    """

    def __init__(
        self,
        cluster: "BuiltCluster",
        policy: PlacementPolicy | None = None,
        ordering: str | OrderingPolicy | None = None,
        max_queue: int = 64,
        per_node_limit: int = 2,
        attempt_timeout: float | None = None,
        max_retries: int = 2,
        cache: ResultCache | bool | None = True,
        slo: SLOTracker | SLOPolicy | _t.Mapping[str, SLOPolicy]
        | _t.Iterable[SLOPolicy] | None = None,
        heartbeat: HeartbeatConfig | bool | None = None,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.engine = OffloadEngine(cluster)
        # shares the offload engine's inflight map so shard load is visible
        # to every placement decision
        self.dist_engine = DistributedEngine(cluster, inflight=self.engine.inflight)
        self.queue = JobQueue(make_ordering(ordering), limit=max_queue)
        self.policy = policy or AdaptivePolicy()
        if isinstance(self.policy, AdaptivePolicy) and self.policy.depth_source is None:
            self.policy.bind_depths(self.queue.depths)
        if cache is True:
            cache = ResultCache()
        elif cache is False:
            cache = None
        self.cache: ResultCache | None = cache
        if self.cache is not None:
            self.cache.watch_cluster(cluster)
            if self.cache.obs is None:
                self.cache.obs = self.sim.obs
        self.per_node_limit = max(1, per_node_limit)
        self.attempt_timeout = attempt_timeout
        self.max_retries = max_retries
        #: per-tenant SLO evaluation (always present; policies optional)
        self.slo: SLOTracker = (
            slo if isinstance(slo, SLOTracker) else SLOTracker(slo)
        )
        #: nodes whose daemon missed a deadline (skipped until marked healthy)
        self.unhealthy: set[str] = set()
        #: dispatched jobs whose runner process has not started yet — the
        #: engine's ``inflight`` only sees a job once the runner calls it,
        #: so capacity checks within one pump pass need this bridge count
        self._pending: dict[str, int] = {}
        #: finished jobs, completion order
        self.completed: list[CompletedJob] = []
        #: jobs refused at admission
        self.rejected = 0
        self._seq = itertools.count()
        self._wake = Signal(self.sim, name="sched.wake")
        self._dispatcher = self.sim.spawn(self._dispatch_loop(), name="sched.dispatcher")
        #: phi-accrual failure detector (None: timeout-only health model)
        self.health: NodeHealthTracker | None = None
        if heartbeat:
            cfg = (
                heartbeat if isinstance(heartbeat, HeartbeatConfig)
                else HeartbeatConfig()
            )
            self.health = NodeHealthTracker(
                self.sim,
                [n.name for n in cluster.sd_nodes],
                cfg,
                unhealthy=self.unhealthy,
            )
            endpoint = f"hb:{cluster.host.name}"
            inbox = cluster.fabric.attach(endpoint)
            for daemon in cluster.sd_daemons.values():
                daemon.start_heartbeat(cluster.fabric, endpoint, cfg.interval)
            self.sim.spawn(
                self._heartbeat_listener(inbox), name="sched.hb.listener"
            )
            self.sim.spawn(self._health_monitor(cfg), name="sched.hb.monitor")

    # -- submission --------------------------------------------------------

    def submit(self, job: DataJob) -> Event:
        """Submit one job; the returned event fires with its JobResult.

        Raises :class:`AdmissionError` when the queue is full (the job was
        *not* accepted; nothing will run).  A cache hit completes the
        returned event in the same instant without entering the queue.
        """
        obs = self.sim.obs
        done = Event(self.sim, name=f"sched.done:{job.app}")
        key = (
            self.cache.key_for(job, self.cluster)
            if self.cache is not None else None
        )
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                obs.count("sched.cache.hit")
                self._finish_cached(job, hit, done)
                return done
            obs.count("sched.cache.miss")
        seq = next(self._seq)
        entry = QueuedJob(
            job,
            seq,
            self.sim.now,
            done,
            candidates=self._candidates(job),
            cache_key=key,
        )
        try:
            self.queue.admit(entry)
        except AdmissionError:
            obs.count("sched.rejected")
            self.rejected += 1
            raise
        obs.count("sched.admitted")
        entry.queue_span = obs.span(
            "sched.queue", cat="sched", track=f"sched:j{seq}",
            app=job.app, tenant=job.tenant,
        )
        self._sample_depth()
        self._wake.fire()
        return done

    def submit_distributed(self, job: DistributedJob) -> Event:
        """Submit one distributed (sharded) job; fires with its result.

        Distributed jobs skip the result cache (their placement depends on
        the live replica set) and dispatch as ONE logical job whose shards
        fan out over every healthy candidate SD node at dispatch time.
        Individual shard-node failures are handled inside the
        :class:`~repro.core.distributed.DistributedEngine` (whole-job
        restart on the survivors); only when the entire replica set is
        burned does the failure surface here, where the normal retry path
        applies — ultimately falling back to a single-node partitioned run
        on the host, which cannot silently die.
        """
        obs = self.sim.obs
        done = Event(self.sim, name=f"sched.done:{job.app}")
        seq = next(self._seq)
        entry = QueuedJob(
            job,
            seq,
            self.sim.now,
            done,
            candidates=self._candidates(job),
            cache_key=None,
        )
        try:
            self.queue.admit(entry)
        except AdmissionError:
            obs.count("sched.rejected")
            self.rejected += 1
            raise
        obs.count("sched.admitted")
        obs.count("sched.dist.submitted")
        entry.queue_span = obs.span(
            "sched.queue", cat="sched", track=f"sched:j{seq}",
            app=job.app, tenant=job.tenant, distributed=True,
        )
        self._sample_depth()
        self._wake.fire()
        return done

    def _candidates(self, job: DataJob) -> tuple[str, ...]:
        """SD nodes that can serve the job (primary preference first).

        An explicit ``sd_node`` pins the job; otherwise every SD node
        holding the input path is a candidate (replicated staging makes
        the whole fleet eligible — that is what multi-SD scaling needs).
        """
        if job.sd_node:
            return (job.sd_node,)
        names = []
        for node in self.cluster.sd_nodes:
            try:
                node.fs.vfs.stat(job.input_path)
            except Exception:
                continue
            names.append(node.name)
        return tuple(names) or (self.cluster.sd_nodes[0].name,)

    def _finish_cached(self, job: DataJob, hit: JobResult, done: Event) -> None:
        obs = self.sim.obs
        now = self.sim.now
        result = dataclasses.replace(hit, elapsed=0.0)
        self.completed.append(
            CompletedJob(
                job=job, seq=-1, where="cache", offloaded=False,
                submitted_at=now, dispatched_at=now, finished_at=now,
                attempts=0, from_cache=True,
            )
        )
        obs.count("sched.completed")
        obs.count(f"sched.tenant.{job.tenant}.completed")
        self.slo.observe(job.tenant, now, 0.0)
        done.succeed(result)

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> _t.Generator:
        """The scheduler's pump: dispatch whatever fits, then sleep.

        The pump runs atomically (no yields), so registering the wake
        waiter right after it cannot lose a pulse — any submit/completion
        happens in another process, which only runs once we are waiting.
        """
        while True:
            self._pump()
            yield self._wake.wait()

    def _pump(self) -> None:
        obs = self.sim.obs
        for entry in self.queue.ordered():
            placed = self._placement_for(entry)
            if placed is None:
                continue  # every feasible node is at capacity; stay queued
            job, placement = placed
            self.queue.take(entry)
            entry.attempts += 1
            entry.dispatched_at = self.sim.now
            if entry.queue_span is not None:
                entry.queue_span.close()
                entry.queue_span = None
            obs.count("sched.dispatched")
            with obs.span(
                "sched.dispatch", cat="sched", track=f"sched:j{entry.seq}"
            ) as sp:
                sp.set(node=placement.node, offload=placement.offload,
                       reason=placement.reason, attempt=entry.attempts)
            self._pending[placement.node] = (
                self._pending.get(placement.node, 0) + 1
            )
            self.sim.spawn(
                self._run_entry(entry, job, placement),
                name=f"sched.run:j{entry.seq}",
            )
            self._sample_depth()

    def _placement_for(
        self, entry: QueuedJob
    ) -> tuple[DataJob, Placement] | None:
        """Where ``entry`` should run now, or ``None`` if it must wait."""
        if isinstance(entry.job, DistributedJob):
            return self._distributed_placement(entry)
        host = self.cluster.host.name
        if not entry.force_host:
            names = self._trusted(entry)
            if not names:
                # nowhere offloadable is trustworthy: fall through to host
                entry.force_host = True
        if entry.force_host:
            if self._occupancy(host) >= self.per_node_limit:
                return None
            reason = "sched: forced host"
            why = _failure_summary(entry.last_failures)
            if why:
                reason += f" after {why}"
            return entry.job, Placement(node=host, offload=False, reason=reason)
        eligible = [
            c for c in names if self._occupancy(c) < self._node_limit(c)
        ]
        if not eligible:
            return None
        depths = self.queue.depths()
        for node, n in self._pending.items():
            if n:
                depths[node] = depths.get(node, 0) + n
        best = least_loaded(self.cluster, self.engine, eligible, depths)
        job = entry.job
        if job.sd_node != best:
            job = dataclasses.replace(job, sd_node=best)
        placement = self.policy.place(job, self.cluster, self.engine)
        if not placement.offload:
            if self._occupancy(host) >= self.per_node_limit:
                return None
        return job, placement

    def _distributed_placement(
        self, entry: QueuedJob
    ) -> tuple[DistributedJob, Placement] | None:
        """Placement for a distributed entry: the whole healthy replica set.

        The lead node of the set is the Placement's nominal node (capacity
        and pending bookkeeping hang off it); the full set rides on
        ``entry.shard_nodes`` for the engine to shard over.
        """
        host = self.cluster.host.name
        names: list[str] = []
        if not entry.force_host:
            names = self._trusted(entry)
            if not names:
                entry.force_host = True
        if entry.force_host:
            if self._occupancy(host) >= self.per_node_limit:
                return None
            reason = "sched: distributed job forced host"
            why = _failure_summary(entry.last_failures)
            if why:
                reason += f" after {why}"
            return entry.job, Placement(node=host, offload=False, reason=reason)
        eligible = [
            c for c in names if self._occupancy(c) < self._node_limit(c)
        ]
        if not eligible:
            return None
        if self.health is not None:
            # a rejoining node earns trust through single canary jobs, not
            # by carrying shards of a fan-out job
            settled = [c for c in eligible if c not in self.health.probation]
            if settled:
                eligible = settled
        entry.shard_nodes = tuple(eligible)
        return entry.job, Placement(
            node=eligible[0], offload=True,
            reason=f"sched: distributed over {len(eligible)} SD node(s)",
        )

    def _occupancy(self, node: str) -> int:
        """Jobs placed on (or dispatched toward) ``node`` right now."""
        return self.engine.inflight.get(node, 0) + self._pending.get(node, 0)

    def _trusted(self, entry: QueuedJob) -> list[str]:
        """Candidates worth dispatching to, quarantine- and phi-aware.

        Quarantine (``unhealthy``) is authoritative; *suspicion* is
        advisory — a suspected node is skipped only while an unsuspected
        alternative exists, so a transient stall of the whole fleet never
        pins jobs to the host.
        """
        names = [
            c for c in entry.candidates
            if c not in entry.excluded and c not in self.unhealthy
        ]
        if names and self.health is not None:
            calm = [c for c in names if c not in self.health.suspected]
            if calm:
                names = calm
        return names

    def _node_limit(self, node: str) -> int:
        """Concurrent-placement cap for ``node`` (probation gets a canary)."""
        if self.health is not None and node in self.health.probation:
            return 1
        return self.per_node_limit

    # -- running -----------------------------------------------------------

    def _run_entry(
        self, entry: QueuedJob, job: DataJob, placement: Placement
    ) -> _t.Generator:
        obs = self.sim.obs
        span = obs.span(
            "sched.run", cat="sched", track=f"sched:j{entry.seq}",
            node=placement.node, attempt=entry.attempts,
        )
        try:
            try:
                # engine.run registers the job in ``inflight`` synchronously,
                # so the pending bridge count can drop in the same instant
                try:
                    running = self._launch(entry, job, placement)
                finally:
                    self._pending[placement.node] -= 1
                result = yield running
            finally:
                span.close()
        except Exception as exc:
            self._on_failure(entry, placement, exc)
            return
        self._on_success(entry, job, placement, result)

    def _launch(
        self, entry: QueuedJob, job: DataJob | DistributedJob,
        placement: Placement,
    ) -> Event:
        """Start the right engine for ``job``; returns the running event."""
        if isinstance(job, DistributedJob):
            if placement.offload:
                return self.dist_engine.run(
                    job, nodes=entry.shard_nodes, timeout=self.attempt_timeout
                )
            # completion guarantee: the replica fleet is burned, so run the
            # same work single-node on the host through the extended
            # (partitioned) runtime
            fallback = DataJob(
                app=job.app,
                input_path=job.input_path,
                input_size=job.input_size,
                mode="partitioned",
                fragment_bytes=job.fragment_bytes,
                params=dict(job.params),
                tenant=job.tenant,
            )
            return self.engine.run(fallback, placement, timeout=None)
        timeout = self.attempt_timeout if placement.offload else None
        return self.engine.run(job, placement, timeout=timeout)

    def _on_failure(
        self, entry: QueuedJob, placement: Placement, exc: BaseException
    ) -> None:
        obs = self.sim.obs
        obs.count("sched.attempt_failures")
        if isinstance(exc, DistributedJobError):
            # the engine burned through these replicas already; keep them
            # out of the next placement and quarantine deadline-missers
            entry.last_failures = list(exc.failures)
            entry.excluded |= exc.excluded
            for node in exc.timed_out:
                self._quarantine(node)
            if self.health is not None:
                for node in exc.excluded:
                    self.health.job_failed(node)
        if isinstance(exc, OffloadTimeoutError):
            # A deadline miss is the only liveness signal a dead daemon
            # gives: quarantine the node so the queue drains elsewhere.
            self._quarantine(placement.node)
        if is_retryable(exc) and placement.offload:
            entry.excluded.add(placement.node)
            if not isinstance(exc, DistributedJobError):
                entry.last_failures.append({
                    "node": placement.node,
                    "phase": "job",
                    "cause": type(exc).__name__,
                    "attempt": entry.attempts,
                    "at": self.sim.now,
                })
                if self.health is not None:
                    self.health.job_failed(placement.node)
            if entry.attempts > self.max_retries:
                entry.force_host = True
            obs.count("sched.requeued")
            entry.queue_span = obs.span(
                "sched.queue", cat="sched", track=f"sched:j{entry.seq}",
                requeued_after=type(exc).__name__,
            )
            self.queue.requeue(entry)
            self._sample_depth()
            self._wake.fire()
            return
        # permanent: unknown app, bad params, host-side crash — retrying
        # cannot change the outcome, so the submitter gets the exception
        obs.count("sched.failed")
        now = self.sim.now
        self.slo.observe(
            entry.job.tenant, now, now - entry.submitted_at, failed=True
        )
        entry.done.fail(exc)
        self._wake.fire()

    def _on_success(
        self,
        entry: QueuedJob,
        job: DataJob,
        placement: Placement,
        result: JobResult,
    ) -> None:
        obs = self.sim.obs
        now = self.sim.now
        record = CompletedJob(
            job=job,
            seq=entry.seq,
            where=result.where,
            offloaded=result.offloaded,
            submitted_at=entry.submitted_at,
            dispatched_at=entry.dispatched_at
            if entry.dispatched_at is not None else entry.submitted_at,
            finished_at=now,
            attempts=entry.attempts,
        )
        self.completed.append(record)
        obs.count("sched.completed")
        obs.count(f"sched.tenant.{job.tenant}.completed")
        obs.count(f"sched.tenant.{job.tenant}.work", max(1, job.input_size))
        obs.observe("sched.latency.queue", record.queue_wait)
        obs.observe("sched.latency.run", record.service)
        obs.observe("sched.latency.total", record.total)
        if isinstance(job, DistributedJob):
            obs.count("sched.dist.completed")
            obs.count("sched.dist.shards", getattr(result, "n_shards", 1))
        self.slo.observe(job.tenant, now, record.total)
        if self.health is not None and result.offloaded:
            # probation credit: the nodes that carried this job earned it
            served = {result.where}
            served.update(getattr(result, "shard_nodes", ()) or ())
            for node in served:
                self.health.job_succeeded(node)
        if self.cache is not None and entry.cache_key is not None:
            self.cache.put(entry.cache_key, result)
        entry.done.succeed(result)
        self._sample_depth()
        self._wake.fire()

    # -- health / introspection -------------------------------------------

    def mark_healthy(self, node: str) -> None:
        """Readmit a quarantined node (e.g. after its daemon revives)."""
        if self.health is not None:
            self.health.restore(node)
        else:
            self.unhealthy.discard(node)
        self._wake.fire()

    def _quarantine(self, node: str) -> None:
        """Pull ``node`` from the eligible set on hard failure evidence."""
        if node in self.unhealthy:
            return
        if self.health is not None:
            self.health.force_quarantine(node)
        else:
            self.unhealthy.add(node)
        self.sim.obs.count("sched.node_unhealthy")

    def _heartbeat_listener(self, inbox) -> _t.Generator:
        """Feed daemon heartbeats into the failure detector."""
        assert self.health is not None
        while True:
            msg = yield inbox.get()
            self.health.beat(msg.src, self.sim.now)

    def _health_monitor(self, cfg: HeartbeatConfig) -> _t.Generator:
        """Periodically re-score every node; wake dispatch on transitions."""
        assert self.health is not None
        while True:
            yield self.sim.timeout(cfg.interval)
            if self.health.evaluate(self.sim.now):
                self._wake.fire()

    def _sample_depth(self) -> None:
        self.sim.obs.sample("sched.queue_depth", self.sim.now, len(self.queue))

    def health_report(self) -> HealthReport:
        """One instant's health snapshot — the admission/autoscaling signal.

        Evaluates every tenant's SLO at the current sim time, with the
        current queue depth and quarantine list; ``sched.latency.*``
        histogram summaries ride along when tracing recorded them.
        """
        return build_health_report(
            self.slo,
            now=self.sim.now,
            queue_depth=len(self.queue),
            unhealthy_nodes=self.unhealthy,
            obs=self.sim.obs,
        )

    def stats(self) -> dict:
        """Summary counters for benchmarks and reports."""
        per_tenant_work: dict[str, int] = {}
        per_tenant_done: dict[str, int] = {}
        for rec in self.completed:
            t = rec.tenant
            per_tenant_done[t] = per_tenant_done.get(t, 0) + 1
            if not rec.from_cache:
                per_tenant_work[t] = per_tenant_work.get(t, 0) + rec.job.input_size
        out = {
            "completed": len(self.completed),
            "rejected": self.rejected,
            "queued": len(self.queue),
            "unhealthy": sorted(self.unhealthy),
            "offloaded": self.engine.offloaded,
            "host_runs": self.engine.host_runs,
            "tenant_completed": per_tenant_done,
            "tenant_work": per_tenant_work,
        }
        if self.health is not None:
            out["node_states"] = dict(sorted(self.health.state.items()))
        if self.cache is not None:
            out["cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "invalidations": self.cache.invalidations,
                "evictions_capacity": self.cache.evictions_capacity,
                "evictions_invalidation": self.cache.evictions_invalidation,
                "entries": len(self.cache),
            }
        return out
