"""An exact event-driven multicore processor-sharing CPU model.

The model is *egalitarian processor sharing* across cores: with ``n``
runnable tasks on a ``c``-core CPU, every task progresses at

    ``per_core_rate * min(1, c / n) / slowdown``

ops per second, where ``slowdown`` is a node-wide multiplier (memory
thrashing, see :class:`~repro.hardware.memory.MemoryModel`).  This is the
standard fluid model of an OS time-slicing more runnable threads than
cores, and it is what makes CPU contention between concurrent MapReduce
jobs (Fig 9/10 host-only scenario) come out right without simulating a
scheduler tick by tick.

The implementation is exact, not time-stepped: whenever the task set or the
slowdown changes, all remaining work is advanced analytically and the next
completion is (re)scheduled.
"""

from __future__ import annotations

import math
import typing as _t

from repro.config import CPUSpec
from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.kernel import Simulator

__all__ = ["CpuTask", "ProcessorSharingCPU"]

#: ops below this are treated as complete (guards float drift)
_EPS_OPS = 1e-6


class CpuTask:
    """A unit of CPU demand submitted to the PS model."""

    __slots__ = ("name", "remaining", "total", "done", "submitted_at")

    def __init__(self, name: str, ops: float, done: Event, submitted_at: float):
        self.name = name
        self.remaining = float(ops)
        self.total = float(ops)
        self.done = done
        self.submitted_at = submitted_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CpuTask {self.name} {self.remaining:.3g}/{self.total:.3g} ops>"


class ProcessorSharingCPU:
    """Multicore CPU under egalitarian processor sharing.

    Parameters
    ----------
    sim:
        The simulator.
    spec:
        CPU spec (cores, clock, ops/cycle).
    name:
        Label used in events and stats.

    Usage (inside a simulated process)::

        done = cpu.submit(ops=2.0e9, name="map-3")
        yield done      # resumes when the task has received 2e9 ops
    """

    def __init__(self, sim: Simulator, spec: CPUSpec, name: str = "cpu"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self._tasks: list[CpuTask] = []
        self._slowdown = 1.0
        self._last_update = sim.now
        self._gen = 0  # invalidates stale completion timers
        #: accumulated core-seconds of useful work delivered
        self.busy_core_seconds = 0.0
        #: completed task count
        self.completed_tasks = 0

    # -- derived state ------------------------------------------------------

    @property
    def cores(self) -> int:
        """Number of cores."""
        return self.spec.cores

    @property
    def n_active(self) -> int:
        """Number of runnable tasks right now."""
        return len(self._tasks)

    @property
    def slowdown(self) -> float:
        """Current node-wide slowdown multiplier (1.0 = full speed)."""
        return self._slowdown

    def per_task_rate(self) -> float:
        """Ops/second each active task currently receives."""
        n = len(self._tasks)
        if n == 0:
            return 0.0
        share = min(1.0, self.spec.cores / n)
        return self.spec.ops_per_sec_per_core * share / self._slowdown

    def utilization(self) -> float:
        """Fraction of total core capacity in use right now."""
        n = len(self._tasks)
        return min(1.0, n / self.spec.cores) if n else 0.0

    # -- public operations ----------------------------------------------------

    def submit(self, ops: float, name: str = "task") -> Event:
        """Add a task demanding ``ops``; returns its completion event."""
        if ops < 0 or math.isnan(ops):
            raise SimulationError(f"invalid CPU demand {ops!r}")
        done = Event(self.sim, name=f"cpu-done:{name}")
        if ops <= _EPS_OPS:
            self.completed_tasks += 1
            done.succeed(0.0)
            return done
        self._advance()
        self._tasks.append(CpuTask(name, ops, done, self.sim.now))
        self._replan()
        return done

    def run(self, ops: float, name: str = "task") -> Event:
        """Alias of :meth:`submit` (reads better at call sites)."""
        return self.submit(ops, name)

    def cancel(self, done: Event) -> bool:
        """Abort the task whose completion event is ``done``.

        Returns True if it was found and removed.  The event is failed with
        :class:`SimulationError` so waiters do not hang.
        """
        self._advance()
        for i, task in enumerate(self._tasks):
            if task.done is done:
                del self._tasks[i]
                if not done.triggered:
                    done.fail(SimulationError(f"task {task.name} cancelled"))
                self._replan()
                return True
        return False

    def set_slowdown(self, factor: float) -> None:
        """Change the node-wide slowdown (>= 1.0), e.g. on memory pressure."""
        if factor < 1.0 or math.isnan(factor):
            raise SimulationError(f"slowdown must be >= 1.0, got {factor}")
        if factor == self._slowdown:
            return
        self._advance()
        self._slowdown = factor
        self._replan()

    # -- internals ----------------------------------------------------------

    def _advance(self) -> None:
        """Apply progress accrued since the last update instant."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._tasks:
            return
        rate = self.per_task_rate()
        delivered = rate * dt
        # Book utilisation: n tasks each at `share` of a core.
        n = len(self._tasks)
        self.busy_core_seconds += min(n, self.spec.cores) / self._slowdown * dt
        finished: list[CpuTask] = []
        for task in self._tasks:
            task.remaining -= delivered
            if task.remaining <= self._completion_eps(task):
                finished.append(task)
        if finished:
            for task in finished:
                self._tasks.remove(task)
                self.completed_tasks += 1
                if not task.done.triggered:
                    task.done.succeed(now - task.submitted_at)

    @staticmethod
    def _completion_eps(task: CpuTask) -> float:
        """Remaining-ops threshold below which a task counts as done.

        Relative to the task's total demand so float cancellation on
        multi-gigaop tasks cannot strand sub-op residues."""
        return max(_EPS_OPS, 1e-9 * task.total)

    def _replan(self) -> None:
        """Schedule a wake-up at the next task completion."""
        self._gen += 1
        if not self._tasks:
            return
        gen = self._gen
        rate = self.per_task_rate()
        if rate <= 0:  # pragma: no cover - defensive (slowdown is finite)
            raise SimulationError("CPU rate fell to zero")
        shortest = min(t.remaining for t in self._tasks)
        delay = shortest / rate
        now = self.sim.now
        if now + delay == now:
            # Residual work too small for float time to advance: complete
            # the shortest task(s) at this instant instead of spinning on
            # zero-length timers.
            done = [t for t in self._tasks if t.remaining <= shortest + _EPS_OPS]
            for task in done:
                self._tasks.remove(task)
                self.completed_tasks += 1
                if not task.done.triggered:
                    task.done.succeed(now - task.submitted_at)
            self._replan()
            return
        timer = self.sim.timeout(delay)

        def _on_fire(_ev: Event) -> None:
            if gen != self._gen:
                return  # superseded by a later replan
            self._advance()
            self._replan()

        timer.add_callback(_on_fire)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PS-CPU {self.name} {self.spec.cores}c@{self.spec.clock_ghz}GHz "
            f"active={len(self._tasks)} slow={self._slowdown:.2f}>"
        )
