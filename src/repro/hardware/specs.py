"""Re-export of the Table I CPU specs (canonical home: :mod:`repro.config`).

Kept as its own module so hardware code can import specs without pulling in
the full cluster configuration machinery.
"""

from repro.config import CELERON_450, CPUSpec, DUO_E4400, QUAD_Q9400, TierSpec

__all__ = ["CPUSpec", "TierSpec", "QUAD_Q9400", "DUO_E4400", "CELERON_450"]
