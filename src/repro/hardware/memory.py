"""Node memory model: allocation tracking, pressure, thrash, OOM.

The McSD evaluation hinges on what happens when a MapReduce working set
outgrows a storage node's 2 GB of RAM (Sections IV-B, V-B, V-C):

* while the working set fits comfortably, performance is unaffected;
* past a pressure threshold the node starts paging and *every* task on the
  node slows down (the nonlinear growth of the non-partitioned curves in
  Fig 8(b) and the 6.8x-17.4x gaps in Fig 9);
* past RAM + swap the allocation simply fails
  (:class:`~repro.errors.OutOfMemoryError`).

The thrash curve is :meth:`repro.config.MemoryPolicy.thrash_factor`; this
model tracks allocations by owner and pushes the resulting factor into the
node CPU via a listener callback.
"""

from __future__ import annotations

import typing as _t

from repro.config import MemoryPolicy
from repro.errors import OutOfMemoryError, SimulationError
from repro.sim.kernel import Simulator

__all__ = ["Allocation", "MemoryModel"]


class Allocation:
    """A live memory reservation; free it exactly once."""

    __slots__ = ("owner", "nbytes", "_model", "_freed")

    def __init__(self, owner: str, nbytes: int, model: "MemoryModel"):
        self.owner = owner
        self.nbytes = nbytes
        self._model = model
        self._freed = False

    @property
    def freed(self) -> bool:
        """True once this allocation has been released."""
        return self._freed

    def free(self) -> None:
        """Release the reservation (idempotent)."""
        if not self._freed:
            self._freed = True
            self._model._release(self)

    def resize(self, nbytes: int) -> None:
        """Grow or shrink the reservation in place."""
        self._model._resize(self, nbytes)

    def __enter__(self) -> "Allocation":
        return self

    def __exit__(self, *exc: object) -> None:
        self.free()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "freed" if self._freed else "live"
        return f"<Allocation {self.owner} {self.nbytes}B {state}>"


class MemoryModel:
    """Tracks memory usage on one node and derives the thrash factor."""

    def __init__(
        self,
        sim: Simulator,
        capacity: int,
        policy: MemoryPolicy | None = None,
        name: str = "mem",
    ):
        if capacity < 1:
            raise SimulationError("memory capacity must be >= 1")
        self.sim = sim
        self.capacity = int(capacity)
        self.policy = policy or MemoryPolicy()
        self.name = name
        self.used = 0
        #: peak bytes ever used (stats)
        self.peak_used = 0
        self._allocations: list[Allocation] = []
        self._listeners: list[_t.Callable[[float], None]] = []

    # -- derived state --------------------------------------------------------

    @property
    def swap_capacity(self) -> int:
        """Bytes of swap available beyond RAM."""
        return int(self.capacity * self.policy.swap_factor)

    @property
    def limit(self) -> int:
        """Hard allocation limit (RAM + swap)."""
        return self.capacity + self.swap_capacity

    @property
    def available(self) -> int:
        """Bytes allocatable before OOM."""
        return self.limit - self.used

    @property
    def pressure(self) -> float:
        """used / RAM capacity; > 1 means actively swapping."""
        return self.used / self.capacity

    def thrash_factor(self) -> float:
        """Current CPU slowdown implied by memory pressure."""
        return self.policy.thrash_factor(self.pressure)

    # -- listeners ------------------------------------------------------------

    def on_thrash_change(self, fn: _t.Callable[[float], None]) -> None:
        """Register ``fn(thrash_factor)`` to run whenever pressure changes."""
        self._listeners.append(fn)

    def _notify(self) -> None:
        factor = self.thrash_factor()
        for fn in self._listeners:
            fn(factor)

    # -- operations -------------------------------------------------------------

    def alloc(self, nbytes: int, owner: str = "anon") -> Allocation:
        """Reserve ``nbytes``; raises :class:`OutOfMemoryError` past the limit."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise SimulationError(f"negative allocation {nbytes}")
        if self.used + nbytes > self.limit:
            raise OutOfMemoryError(nbytes, self.available, node=self.name)
        alloc = Allocation(owner, nbytes, self)
        self.used += nbytes
        self.peak_used = max(self.peak_used, self.used)
        self._allocations.append(alloc)
        self._notify()
        return alloc

    def try_alloc(self, nbytes: int, owner: str = "anon") -> Allocation | None:
        """Like :meth:`alloc` but returns None instead of raising."""
        try:
            return self.alloc(nbytes, owner)
        except OutOfMemoryError:
            return None

    def would_fit(self, nbytes: int) -> bool:
        """True if an allocation of ``nbytes`` would currently succeed."""
        return self.used + nbytes <= self.limit

    def _release(self, alloc: Allocation) -> None:
        self._allocations.remove(alloc)
        self.used -= alloc.nbytes
        if self.used < 0:  # pragma: no cover - defensive
            raise SimulationError("memory accounting went negative")
        self._notify()

    def _resize(self, alloc: Allocation, nbytes: int) -> None:
        nbytes = int(nbytes)
        if alloc._freed:
            raise SimulationError("resize of a freed allocation")
        if nbytes < 0:
            raise SimulationError(f"negative allocation {nbytes}")
        delta = nbytes - alloc.nbytes
        if delta > 0 and self.used + delta > self.limit:
            raise OutOfMemoryError(delta, self.available, node=self.name)
        self.used += delta
        alloc.nbytes = nbytes
        self.peak_used = max(self.peak_used, self.used)
        self._notify()

    def usage_by_owner(self) -> dict[str, int]:
        """Live bytes grouped by owner label."""
        out: dict[str, int] = {}
        for a in self._allocations:
            out[a.owner] = out.get(a.owner, 0) + a.nbytes
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Memory {self.name} {self.used}/{self.capacity}B "
            f"pressure={self.pressure:.2f} thrash={self.thrash_factor():.2f}>"
        )
