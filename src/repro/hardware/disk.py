"""SATA disk model: a FIFO-queued server with seek + streaming bandwidth.

A request costs ``seek_time + nbytes / bandwidth`` of device time; requests
queue FIFO behind each other.  Sequential streams should be issued as one
large request (one seek); random access as many small ones.  This is
deliberately simple — the McSD evaluation is CPU/memory-shaped, the disk
mostly sets the floor for reading inputs — but it is a real queued resource
so concurrent jobs on one node contend for it.
"""

from __future__ import annotations

import typing as _t

from repro.config import DiskSpec
from repro.errors import DiskError, mark_retryable
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource

__all__ = ["DiskModel"]


class DiskModel:
    """One disk drive attached to a node."""

    def __init__(self, sim: Simulator, spec: DiskSpec | None = None, name: str = "disk"):
        self.sim = sim
        self.spec = spec or DiskSpec()
        self.name = name
        self._server = Resource(sim, capacity=1, name=f"{name}.queue")
        #: total bytes read / written (stats)
        self.bytes_read = 0
        self.bytes_written = 0
        #: completed requests
        self.requests = 0
        #: accumulated busy time
        self.busy_time = 0.0

    # -- helpers ------------------------------------------------------------

    def service_time(self, nbytes: int) -> float:
        """Device time for one request of ``nbytes``."""
        if nbytes < 0:
            raise DiskError(f"negative request size {nbytes}")
        return self.spec.seek_time + nbytes / self.spec.bandwidth

    @property
    def queue_len(self) -> int:
        """Requests waiting behind the one in service."""
        return self._server.queue_len

    # -- operations -----------------------------------------------------------

    def read(self, nbytes: int, label: str = "read") -> Event:
        """Submit a read; the returned Process completes when data is in."""
        return self._io(nbytes, is_write=False, label=label)

    def write(self, nbytes: int, label: str = "write") -> Event:
        """Submit a write; completes when the data has been persisted."""
        return self._io(nbytes, is_write=True, label=label)

    def _io(self, nbytes: int, is_write: bool, label: str) -> Event:
        nbytes = int(nbytes)
        service = self.service_time(nbytes)
        # fault injection: decided at submission so the event order (and
        # therefore the injection sequence) stays deterministic
        inj = self.sim.faults
        decision = None
        if inj is not None:
            decision = inj.check(
                "disk.write" if is_write else "disk.read",
                disk=self.name, bytes=nbytes,
            )

        def _proc() -> _t.Generator:
            if decision is not None:
                if decision.action == "delay":
                    yield self.sim.timeout(decision.delay)
                elif decision.action in ("fail", "drop"):
                    # charge the seek (the head moved) but fail the request
                    yield self.sim.timeout(self.spec.seek_time)
                    raise mark_retryable(
                        DiskError(f"injected {label} fault on {self.name}")
                    )
            with self._server.request() as req:
                yield req
                yield self.sim.timeout(service)
                self.busy_time += service
                self.requests += 1
                if is_write:
                    self.bytes_written += nbytes
                else:
                    self.bytes_read += nbytes
            return nbytes

        return self.sim.spawn(_proc(), name=f"{self.name}.{label}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Disk {self.name} {self.spec.bandwidth / 1e6:.0f}MB/s q={self.queue_len}>"
