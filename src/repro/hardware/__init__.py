"""Hardware models: multicore CPU, memory, disk, and the Table I specs."""

from repro.hardware.cpu import CpuTask, ProcessorSharingCPU
from repro.hardware.disk import DiskModel
from repro.hardware.memory import MemoryModel
from repro.hardware.specs import CELERON_450, DUO_E4400, QUAD_Q9400

__all__ = [
    "ProcessorSharingCPU",
    "CpuTask",
    "MemoryModel",
    "DiskModel",
    "QUAD_Q9400",
    "DUO_E4400",
    "CELERON_450",
]
