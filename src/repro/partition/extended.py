"""The extended Phoenix workflow of Fig 6: Partition -> N x MapReduce -> Merge.

Fragments are processed one after another, so at any instant the node
holds only one fragment's working set — this is what lets McSD "support
huge datasets whose size may exceed the memory capacity" and is the
source of the Fig 8/9 speedups at large data sizes.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.config import PhoenixConfig
from repro.errors import PartitionError
from repro.phoenix.api import InputSpec, MapReduceSpec
from repro.phoenix.runtime import JobStats, PhoenixResult, PhoenixRuntime
from repro.partition.partitioner import FragmentPlan, plan_fragments
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node

__all__ = ["ExtendedResult", "ExtendedPhoenixRuntime"]


def _readahead_depth(fs: object) -> int:
    """Fragments of readahead the filesystem's tier asks for (0 = none).

    LocalFS exposes its attached burst buffer directly; an NFS mount
    carries the exporting node's tier spec (set by the cluster builder)
    so remote fragment reads prefetch on the server side too.
    """
    tier = getattr(fs, "tier", None)
    if tier is not None:
        return int(tier.spec.readahead_fragments)
    spec = getattr(fs, "remote_tier_spec", None)
    if spec is not None:
        return int(spec.readahead_fragments)
    return 0


@dataclasses.dataclass
class ExtendedResult:
    """Outcome of a partition-enabled run."""

    output: object
    fragment_stats: list[JobStats]
    plan: FragmentPlan
    started_at: float
    finished_at: float
    merge_time: float

    @property
    def elapsed(self) -> float:
        """Total simulated wall-clock of partition + jobs + merge."""
        return self.finished_at - self.started_at

    @property
    def n_fragments(self) -> int:
        """Number of fragments processed."""
        return len(self.fragment_stats)


class ExtendedPhoenixRuntime:
    """Partition-enabled Phoenix on one node (Fig 6)."""

    def __init__(self, node: "Node", cfg: PhoenixConfig | None = None):
        self.node = node
        self.sim = node.sim
        self.cfg = cfg or PhoenixConfig()
        self.inner = PhoenixRuntime(node, self.cfg)

    def run(
        self,
        spec: MapReduceSpec,
        input_spec: InputSpec,
        fragment_bytes: int | None = None,
        write_output: bool = True,
        output_path: str | None = None,
    ) -> Event:
        """Run with partitioning; Process value is an :class:`ExtendedResult`.

        ``fragment_bytes=None`` lets the runtime auto-size fragments
        (Section IV-C: "automatically determined by the runtime system");
        pass the paper's 600 MB for the Section V-C configuration.
        """
        gen = self._run(spec, input_spec, fragment_bytes, write_output, output_path)
        return self.sim.spawn(gen, name=f"ext-phoenix:{spec.name}@{self.node.name}")

    def _run(
        self,
        spec: MapReduceSpec,
        inp: InputSpec,
        fragment_bytes: int | None,
        write_output: bool,
        output_path: str | None,
    ) -> _t.Generator:
        node, sim = self.node, self.sim
        obs = sim.obs
        started_at = sim.now
        if spec.merge_fn is None:
            raise PartitionError(
                f"{spec.name}: partition-enabled runs need a user merge_fn "
                "(Section IV-C)"
            )
        with obs.span(
            "ext.job", cat="partition", track=node.name,
            app=spec.name, input_bytes=inp.size,
        ) as ext_sp:
            with obs.span("ext.partition", cat="partition", track=node.name) as sp:
                plan = plan_fragments(
                    inp,
                    fragment_bytes,
                    node.memory.capacity,
                    spec.profile,
                    self.cfg,
                    delimiters=spec.delimiters,
                )
                # Charge the partition scan: the integrity check reads around
                # each boundary; the dominant real cost is the boundary seeks,
                # not a full-file scan (the runtime cuts at offsets).
                fs, rel = node.resolve_fs(inp.path)
                for _ in range(max(0, plan.n_fragments - 1)):
                    yield fs.read(rel, nbytes=4096)
                sp.set(fragments=plan.n_fragments)
            ext_sp.set(fragments=plan.n_fragments)

            # Process fragments one at a time (Fig 6's iteration loop).
            # "Intermediate results obtained in each iteration can be merged
            # to produce a final result" — each iteration persists its output,
            # which the final merge reads back.
            frag_stats: list[JobStats] = []
            outputs: list[object] = []
            inter_bytes: list[int] = []
            readahead = _readahead_depth(fs)
            for i, frag in enumerate(plan.fragments):
                # Readahead: while fragment i maps, pull fragment i+1 (and
                # deeper, per the tier spec) into the burst buffer so its
                # disk read overlaps this fragment's compute.  Without a
                # tier this is a no-op — prefetching into the bare disk
                # would only add queue contention.
                for ahead in plan.fragments[i + 1 : i + 1 + readahead]:
                    fs.prefetch(rel, offset=ahead.offset, nbytes=ahead.size)
                with obs.span(
                    "ext.fragment", cat="partition", track=node.name,
                    index=i, bytes=frag.size,
                ):
                    result: PhoenixResult = yield self.inner.run(
                        spec,
                        frag,
                        mode="parallel",
                        enforce_memory_rule=True,
                        write_output=False,
                    )
                    frag_stats.append(result.stats)
                    outputs.append(result.output)
                    if plan.n_fragments > 1:
                        part_out = spec.profile.output_bytes(frag.size)
                        inter_bytes.append(part_out)
                        yield fs.write(f"{rel}.part{i}", size=part_out)

            # User-provided Merge over the intermediate outputs.
            with obs.span("ext.final_merge", cat="partition", track=node.name):
                t0 = sim.now
                merge_ops = spec.profile.merge_ops(inp.size)
                if plan.n_fragments > 1:
                    for i, nb in enumerate(inter_bytes):
                        yield fs.read(f"{rel}.part{i}", nbytes=nb)
                    if merge_ops > 0:
                        yield node.cpu.submit(
                            merge_ops, name=f"{spec.name}.final-merge"
                        )
                output = (
                    spec.merge_fn(outputs, inp.params)
                    if plan.n_fragments > 1
                    else outputs[0]
                )
                merge_time = sim.now - t0

            if write_output:
                with obs.span("ext.write", cat="partition", track=node.name):
                    opath = output_path or f"{inp.path}.out"
                    ofs, orel = node.resolve_fs(opath)
                    yield ofs.write(orel, size=spec.profile.output_bytes(inp.size))

        return ExtendedResult(
            output=output,
            fragment_stats=frag_stats,
            plan=plan,
            started_at=started_at,
            finished_at=sim.now,
            merge_time=merge_time,
        )
