"""Fragment planning: `wordcount [data-file] [partition-size]` (Section IV-C).

The fragment size is either supplied by the programmer (the paper's
``[partition-size]`` argument — 600 MB in the Section V-C experiments) or
determined automatically by the runtime so each fragment's working set
stays inside the node's comfortable memory range.

Planning operates on *declared* sizes; when a materialized payload exists,
fragment boundaries inside the payload pass the integrity check of Fig 7
(scaled to payload coordinates), so the real per-fragment computation
never sees a split record.
"""

from __future__ import annotations

import dataclasses

from repro.config import PhoenixConfig
from repro.errors import PartitionError
from repro.phoenix.api import CostProfile, InputSpec
from repro.partition.integrity import safe_boundaries

__all__ = ["FragmentPlan", "auto_fragment_bytes", "plan_fragments"]


@dataclasses.dataclass
class FragmentPlan:
    """The outcome of partition planning."""

    fragments: list[InputSpec]
    fragment_bytes: int
    auto_sized: bool

    @property
    def n_fragments(self) -> int:
        """Number of fragments."""
        return len(self.fragments)


def auto_fragment_bytes(
    mem_capacity: int, profile: CostProfile, cfg: PhoenixConfig
) -> int:
    """Runtime-chosen fragment size.

    Targets a per-fragment working set of ``auto_fragment_fraction`` of
    node memory: ``fragment = fraction * mem / footprint_factor``.  For
    Word Count (3x footprint) on a 2 GB node with fraction 0.5 this gives
    ~333 MB fragments — comfortably under the thrash threshold.
    """
    frag = int(cfg.auto_fragment_fraction * mem_capacity / profile.footprint_factor)
    return max(1, frag)


def plan_fragments(
    inp: InputSpec,
    fragment_bytes: int | None,
    mem_capacity: int,
    profile: CostProfile,
    cfg: PhoenixConfig,
    delimiters: bytes = b" \t\n\r",
) -> FragmentPlan:
    """Split one input into integrity-checked fragments.

    ``fragment_bytes=None`` selects automatic sizing.  Inputs that already
    fit in one fragment return a single-fragment plan (the paper: "if
    there is no [partition-size] parameter, the program will run in native
    way").
    """
    if inp.size < 0:
        raise PartitionError("negative input size")
    auto = fragment_bytes is None
    frag = auto_fragment_bytes(mem_capacity, profile, cfg) if auto else int(fragment_bytes)
    if frag < 1:
        raise PartitionError(f"fragment size must be >= 1, got {frag}")

    payload = inp.payload
    if payload is not None and not isinstance(payload, (bytes, bytearray)):
        raise PartitionError(
            f"input {inp.path!r} has a non-byte payload "
            f"({type(payload).__name__}); this application is not "
            "partition-able (Section V-B's assumption)"
        )

    if inp.size <= frag:
        return FragmentPlan(fragments=[inp], fragment_bytes=frag, auto_sized=auto)

    # Declared-size boundaries: nominal cuts every `frag` bytes.
    declared_cuts = list(range(0, inp.size, frag)) + [inp.size]
    if declared_cuts[-2] == inp.size:  # exact multiple: drop duplicate
        declared_cuts.pop(-2)

    # Payload boundaries: scale the declared cuts into payload coordinates
    # and integrity-check each one on the real bytes.
    fragments: list[InputSpec] = []
    if payload is not None and len(payload) > 0:
        data = bytes(payload)
        scale = len(data) / inp.size
        nominal_payload_frag = max(1, int(frag * scale))
        pbounds = safe_boundaries(data, nominal_payload_frag, delimiters)
        # If rounding produced a different fragment count, re-balance the
        # payload cuts to the declared fragment count.
        n_frags = len(declared_cuts) - 1
        if len(pbounds) - 1 != n_frags:
            pbounds = _rebalance_bounds(data, n_frags, delimiters)
        for i in range(n_frags):
            fragments.append(
                InputSpec(
                    path=inp.path,
                    size=declared_cuts[i + 1] - declared_cuts[i],
                    payload=data[pbounds[i] : pbounds[i + 1]],
                    params=inp.params,
                    offset=inp.offset + declared_cuts[i],
                )
            )
    else:
        for i in range(len(declared_cuts) - 1):
            fragments.append(
                InputSpec(
                    path=inp.path,
                    size=declared_cuts[i + 1] - declared_cuts[i],
                    payload=None,
                    params=inp.params,
                    offset=inp.offset + declared_cuts[i],
                )
            )
    return FragmentPlan(fragments=fragments, fragment_bytes=frag, auto_sized=auto)


def _rebalance_bounds(data: bytes, n_frags: int, delimiters: bytes) -> list[int]:
    """Exactly ``n_frags`` integrity-checked payload cuts."""
    from repro.partition.integrity import integrity_check

    n = len(data)
    bounds = [0]
    for i in range(1, n_frags):
        draft = min(n, int(round(i * n / n_frags)))
        draft = max(draft, bounds[-1])
        disp = integrity_check(data, draft, delimiters)
        bounds.append(min(n, draft + disp))
    bounds.append(n)
    # Monotonicity can collapse tail fragments on tiny payloads; that's
    # fine — empty payload slices still carry their declared sizes.
    for i in range(1, len(bounds)):
        bounds[i] = max(bounds[i], bounds[i - 1])
    return bounds
