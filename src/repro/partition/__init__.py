"""Partitioning and merging: the paper's core contribution (Sections IV-B/C).

The original Phoenix cannot process inputs larger than a fraction of node
memory.  McSD's answer is a two-stage model (Fig 6): the runtime-provided
**Partition** function carves the input into memory-fitting fragments —
with an **integrity check** (Fig 7) that slides every boundary forward to
the next delimiter so no record is split — the MapReduce procedure runs
per fragment, and a user-provided **Merge** combines the per-fragment
outputs.
"""

from repro.partition.extended import ExtendedPhoenixRuntime, ExtendedResult
from repro.partition.integrity import integrity_check, safe_boundaries
from repro.partition.merge import concat_merge, identity_merge, sum_merge
from repro.partition.partitioner import FragmentPlan, plan_fragments

__all__ = [
    "integrity_check",
    "safe_boundaries",
    "FragmentPlan",
    "plan_fragments",
    "ExtendedPhoenixRuntime",
    "ExtendedResult",
    "sum_merge",
    "concat_merge",
    "identity_merge",
]
