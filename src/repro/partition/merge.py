"""Merge combinators for the extended two-stage model (Fig 6).

"The Merge function needs to be programmed by the user to support
different applications" (Section IV-C).  These are the merge functions of
the paper's three benchmarks, reusable by new applications.
"""

from __future__ import annotations

import typing as _t

from repro.phoenix.sort import sort_by_value_desc

__all__ = ["sum_merge", "concat_merge", "identity_merge", "make_topk_merge"]


def sum_merge(outputs: list, params: dict) -> list[tuple[object, object]]:
    """Merge per-fragment (key, count) lists by summing counts per key.

    Word Count's merge: fragment outputs are partial counts; the final
    result is the global count, sorted by frequency (decreasing), exactly
    like the paper's WC output.
    """
    totals: dict[object, float] = {}
    for part in outputs:
        for key, value in part:
            totals[key] = totals.get(key, 0) + value
    return sort_by_value_desc(list(totals.items()))


def concat_merge(outputs: list, params: dict) -> list:
    """Concatenate per-fragment outputs (String Match: match lists)."""
    out: list = []
    for part in outputs:
        out.extend(part)
    return out


def identity_merge(outputs: list, params: dict) -> object:
    """Single-fragment passthrough (non-partitionable applications)."""
    if len(outputs) == 1:
        return outputs[0]
    return outputs


def make_topk_merge(k: int) -> _t.Callable[[list, dict], list]:
    """A sum-merge keeping only the top-``k`` keys (an extension hook)."""

    def _merge(outputs: list, params: dict) -> list:
        return sum_merge(outputs, params)[:k]

    return _merge
