"""The integrity check of Fig 7.

Given a draft fragment boundary ("new partition size"), scan forward from
the starting point until a space, return, or other programmer-defined
delimiter character is found, and return the extra displacement.  This
guarantees "the new partition is ended correctly" — the content of the
source file is never "broken in shatters (e.g. a word could be cut and
placed into two slitted files not on purpose)".
"""

from __future__ import annotations

from repro.errors import IntegrityError

__all__ = ["DEFAULT_DELIMITERS", "integrity_check", "safe_boundaries"]

#: space, tab, newline, carriage return — Fig 7's "space, return, or other
#: delimited characters"
DEFAULT_DELIMITERS = b" \t\n\r"


def integrity_check(
    data: bytes,
    draft_point: int,
    delimiters: bytes = DEFAULT_DELIMITERS,
) -> int:
    """Displacement moving ``draft_point`` forward to a safe boundary.

    Returns ``d >= 0`` such that ``draft_point + d`` either sits just
    *after* a delimiter (the delimiter stays with the left fragment) or is
    the end of ``data``.  A draft point at or past the end returns 0.
    """
    if draft_point < 0:
        raise IntegrityError(f"negative draft point {draft_point}")
    if not delimiters:
        raise IntegrityError("empty delimiter set")
    n = len(data)
    if draft_point >= n:
        return 0
    # If the byte *before* the draft point is a delimiter, the boundary is
    # already safe: the left fragment ends exactly on a record end.
    if draft_point > 0 and data[draft_point - 1 : draft_point] in _delim_set(delimiters):
        return 0
    pos = draft_point
    while pos < n and data[pos : pos + 1] not in _delim_set(delimiters):
        pos += 1
    if pos < n:
        pos += 1  # include the delimiter in the left fragment
    return pos - draft_point


def _delim_set(delimiters: bytes) -> set[bytes]:
    return {delimiters[i : i + 1] for i in range(len(delimiters))}


def safe_boundaries(
    data: bytes,
    nominal_fragment: int,
    delimiters: bytes = DEFAULT_DELIMITERS,
) -> list[int]:
    """All fragment boundaries for ``data`` at a nominal fragment size.

    Returns ``[0, b1, b2, ..., len(data)]`` where every interior boundary
    has passed the integrity check.  Guarantees progress even on
    delimiter-free data (a fragment then extends to the end).
    """
    if nominal_fragment < 1:
        raise IntegrityError(f"fragment size must be >= 1, got {nominal_fragment}")
    bounds = [0]
    n = len(data)
    while bounds[-1] < n:
        draft = bounds[-1] + nominal_fragment
        if draft >= n:
            bounds.append(n)
            break
        disp = integrity_check(data, draft, delimiters)
        boundary = min(n, draft + disp)
        if boundary <= bounds[-1]:  # pragma: no cover - defensive
            raise IntegrityError("integrity check failed to advance")
        bounds.append(boundary)
    if bounds == [0]:  # empty data
        bounds.append(0)
    return bounds
