"""SD-side modules of the distributed execution mode (``dist_*``).

Three preloaded smartFAM modules carry one distributed job end to end —
the host never sees data, only metadata (paths, declared bytes, entry
counts) through the log-file channel:

* ``dist_map`` — map + combine the shard's local fragments; persist the
  intermediate data partitioned by the crc32 shuffle hash under the
  job's shuffle directory (or, for map-only applications, persist whole
  per-fragment outputs); return per-partition metadata.
* ``dist_reduce`` — merge the sorted per-shard runs of a partition (a
  streaming heap merge, the same code path single-node spills use),
  group equal keys across shards, apply the user reduce function.
* ``dist_merge`` — read the reduced partitions (or gathered fragment
  outputs) in deterministic order and apply the user merge function;
  the returned value is the job's final output.

Cost discipline is identical to the single-node runtime: the user's real
callbacks run over the tiny materialized payload, while CPU/disk charges
come from the cost profile applied to *declared* bytes.  Combined map
output and reduced partitions are charged at *output* scale (one record
per distinct key, the same population as the final output) rather than
intermediate scale — that is what actually crosses the wire in a
combiner-equipped MapReduce, and what makes the exchange leg cheap
relative to the map leg (the paper's McSD premise, applied one level
up).
"""

from __future__ import annotations

import typing as _t

from repro.config import PhoenixConfig
from repro.core.artifacts import corrupt_artifact, pack_artifact, unpack_artifact
from repro.errors import ShuffleArtifactError, SmartFAMError
from repro.fs import path as _p
from repro.phoenix.api import InputSpec
from repro.phoenix.memory import check_supportable
from repro.phoenix.runtime import PhoenixRuntime, _chunk_weights, _nonempty
from repro.phoenix.scheduler import Task, run_task_pool
from repro.phoenix.sort import (
    Combiner,
    decorate_sorted,
    merge_combiner_maps,
    merge_decorated_runs,
    partition_decorated,
    undecorate,
)

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node

__all__ = ["dist_map", "dist_reduce", "dist_merge"]


def _spec_of(params: dict):
    from repro.apps import spec_for_app

    app = params.get("app")
    if not app:
        raise SmartFAMError("dist module: missing app parameter")
    return spec_for_app(app, dict(params.get("app_params") or {}))


def _store_artifact(node: "Node", obj: object, **ctx) -> bytes:
    """Frame ``obj`` as a crc32 shuffle artifact (fault site on the write).

    ``shuffle.artifact`` with ``op="write"`` and *corrupt* flips payload
    bytes after framing — the damage surfaces only at a later verified
    read, like real silent disk corruption.
    """
    blob = pack_artifact(obj)
    inj = node.sim.faults
    if inj is not None:
        decision = inj.check("shuffle.artifact", node=node.name, op="write", **ctx)
        if decision is not None and decision.action == "corrupt":
            blob = corrupt_artifact(blob)
            node.sim.obs.count("fault.shuffle.artifact")
    return blob


def _read_obj(
    node: "Node",
    path: str,
    nbytes: int,
    shard: int | None = None,
    partition: int | None = None,
) -> _t.Generator:
    """Read + verify a stored shuffle artifact, charging ``nbytes`` to disk.

    Fault site ``shuffle.artifact`` with ``op="read"``: *fail*/*corrupt*/
    *drop* raise :class:`ShuffleArtifactError` (attributed to the
    producing shard/partition so the engine can rebuild exactly that
    artifact), *delay* adds read latency.
    """
    inj = node.sim.faults
    if inj is not None:
        decision = inj.check(
            "shuffle.artifact", node=node.name, op="read", path=path,
            shard=shard, partition=partition,
        )
        if decision is not None:
            if decision.action == "delay":
                yield node.sim.timeout(decision.delay)
            elif decision.action in ("fail", "corrupt", "drop", "kill"):
                node.sim.obs.count("fault.shuffle.artifact")
                raise ShuffleArtifactError(
                    path, shard=shard, partition=partition,
                    detail="injected artifact fault",
                )
    data = node.fs.vfs.read(path)
    yield node.fs.read(path, nbytes=max(1, int(nbytes)))
    # empty intermediates materialize as b'' in the VFS; in the distributed
    # plane every stored object is a framed list
    if data == b"":
        return []
    return unpack_artifact(data, path=path, shard=shard, partition=partition)


def dist_map(node: "Node", params: dict, cfg: PhoenixConfig) -> _t.Generator:
    """Map + combine this shard's fragments; spill crc32-partitioned runs."""
    spec = _spec_of(params)
    profile = spec.profile
    app_params = dict(params.get("app_params") or {})
    sim = node.sim
    obs = sim.obs
    path = params["input_path"]
    fs, rel = node.resolve_fs(path)
    payload = node.fs.vfs.read(rel) or None if fs is node.fs else None
    shard_index = int(params["shard_index"])
    n_shards = max(1, int(params["n_shards"]))
    shard_size = int(params["shard_size"])
    kind = params.get("kind", "bytes")
    shuffle_dir = params["shuffle_dir"]
    node.fs.vfs.mkdir(shuffle_dir, parents=True)
    cores = node.cpu.cores
    n_tasks = max(1, cfg.tasks_per_core * cores)

    # ---- map-only applications: run each global fragment through the
    # plain runtime and persist its whole output for the gather
    if spec.reduce_fn is None:
        rt = PhoenixRuntime(node, cfg)
        parts = []
        with obs.span(
            "dist.map.local", cat="dist", track=node.name, force=True,
            shard=shard_index,
        ):
            for sz, p0, p1, gi in params.get("fragments") or []:
                piece = payload[p0:p1] if (payload is not None and p0 >= 0) else None
                frag_inp = InputSpec(path=path, size=int(sz), payload=piece, params=app_params)
                res = yield rt.run(spec, frag_inp, mode="parallel", write_output=False)
                out_bytes = max(1, profile.output_bytes(int(sz)))
                part_path = _p.join(shuffle_dir, f"part{int(gi)}")
                blob = _store_artifact(
                    node, res.output, shard=shard_index, part=int(gi)
                )
                yield node.fs.write(part_path, data=blob, size=out_bytes)
                parts.append({"index": int(gi), "path": part_path, "bytes": out_bytes})
        return {"parts": parts, "entries": 0, "emitted": 0}

    # ---- exchange applications: inline map + combine over the fragments
    if kind == "split":
        # the app's own split function cuts the payload into the SAME
        # global task grid a single node would use (n_tasks is a function
        # of the homogeneous SD hardware, not of the shard count); this
        # shard takes its contiguous slice of that grid.  Keeping the
        # chunk shapes identical to the single-node run is what keeps
        # numeric output bitwise identical (e.g. BLAS kernels pick
        # different summation orders for different block shapes).
        if payload is not None:
            grid = spec.split(payload, n_tasks)
            lo = (shard_index * len(grid)) // n_shards
            hi = ((shard_index + 1) * len(grid)) // n_shards
            chunks = grid[lo:hi] or [None]
        else:
            chunks = [None] * n_tasks
        work = [(shard_size, chunks)]
    else:
        work = []
        for sz, p0, p1, _gi in params.get("fragments") or []:
            piece = payload[p0:p1] if (payload is not None and p0 >= 0) else None
            work.append((int(sz), spec.split(piece, n_tasks) if piece is not None else [None] * n_tasks))

    combiners: list[Combiner] = []
    with obs.span(
        "dist.map.local", cat="dist", track=node.name, force=True, shard=shard_index
    ) as sp:
        for sz, chunks in work:
            check_supportable(spec.name, sz, node.memory.capacity, cfg, profile)
            alloc = node.memory.alloc(profile.footprint(sz), owner=f"dist.{spec.name}")
            try:
                read_proc = fs.read(rel, nbytes=sz)
                ops_total = profile.map_ops(sz) + profile.setup_ops
                weights = _chunk_weights(chunks)

                def make_map(chunk):
                    def _run() -> None:
                        comb = Combiner(spec.combine_fn)
                        if chunk is not None and _nonempty(chunk):
                            spec.map_fn(chunk, comb.emit, app_params)
                        combiners.append(comb)

                    return _run

                tasks = [
                    Task(
                        name=f"map{i}",
                        ops=ops_total * weights[i],
                        compute=make_map(chunks[i]),
                    )
                    for i in range(len(chunks))
                ]
                pool = run_task_pool(
                    sim, node.cpu, tasks, cores, label=f"{spec.name}.dist_map"
                )
                yield sim.all_of([pool, read_proc])
            finally:
                alloc.free()
        emitted = sum(c.emitted for c in combiners)
        sp.set(emitted=emitted, fragments=len(work))

    # ---- local sort + shuffle partitioning
    n_partitions = max(1, int(params["n_partitions"]))
    with obs.span("dist.sort", cat="dist", track=node.name, force=True):
        sort_total = profile.sort_ops(shard_size)
        if sort_total > 0:
            sort_tasks = [Task(name=f"sort{i}", ops=sort_total / cores) for i in range(cores)]
            yield run_task_pool(
                sim, node.cpu, sort_tasks, cores, label=f"{spec.name}.dist_sort"
            )
        entries = decorate_sorted(
            merge_combiner_maps((c.data for c in combiners), spec.combine_fn)
        )
        buckets = partition_decorated(entries, n_partitions)

    # declared bytes of the combined map output: with a combiner the shard
    # holds one (key, partial) record per distinct key — the same record
    # population as the final output — so what crosses the wire is
    # output-sized, not intermediate-sized; without a combiner every
    # emitted record survives
    if spec.combine_fn is not None:
        inter = profile.output_bytes(shard_size)
    else:
        inter = profile.intermediate_bytes(shard_size)
    total_entries = len(entries)
    partitions: dict[int, dict] = {}
    with obs.span("dist.spill", cat="dist", track=node.name, force=True) as sp:
        written = 0
        for p, bucket in enumerate(buckets):
            if not bucket:
                continue
            nbytes = max(1, int(inter * (len(bucket) / max(1, total_entries))))
            ppath = _p.join(shuffle_dir, f"map{shard_index}.p{p}")
            blob = _store_artifact(node, bucket, shard=shard_index, partition=p)
            yield node.fs.write(ppath, data=blob, size=nbytes)
            partitions[p] = {"path": ppath, "bytes": nbytes, "entries": len(bucket)}
            written += nbytes
        sp.set(bytes=written, partitions=len(partitions))
    return {"partitions": partitions, "entries": total_entries, "emitted": emitted}


def dist_reduce(node: "Node", params: dict, cfg: PhoenixConfig) -> _t.Generator:
    """Merge the per-shard runs of each owned partition and reduce them."""
    spec = _spec_of(params)
    if spec.reduce_fn is None:
        raise SmartFAMError(f"{spec.name}: dist_reduce on a map-only application")
    profile = spec.profile
    app_params = dict(params.get("app_params") or {})
    sim = node.sim
    obs = sim.obs
    input_size = int(params["input_size"])
    total_entries = max(1, int(params.get("total_entries") or 1))
    shuffle_dir = params["shuffle_dir"]
    cores = node.cpu.cores
    out: dict[int, dict] = {}
    with obs.span("dist.reduce.local", cat="dist", track=node.name, force=True) as sp:
        for part in params.get("partitions") or []:
            p = int(part["index"])
            runs = []
            n_entries = 0
            in_bytes = 0
            for src in part.get("sources") or []:
                data = yield from _read_obj(
                    node, src["path"], src["bytes"],
                    shard=src.get("shard"), partition=src.get("partition"),
                )
                runs.append(list(data))
                n_entries += int(src["entries"])
                in_bytes += int(src["bytes"])
            # equal keys sit adjacent in the merged stream (runs are
            # sorted); extend collapses them across shards exactly like
            # merge_combiner_maps does within one node
            grouped: list = []
            for skey, key, values in merge_decorated_runs(runs):
                if grouped and grouped[-1][0] == skey:
                    grouped[-1][2].extend(values)
                else:
                    grouped.append((skey, key, list(values)))
            reduce_total = profile.reduce_ops(input_size) * (n_entries / total_entries)
            if reduce_total > 0:
                rtasks = [Task(name=f"red{i}", ops=reduce_total / cores) for i in range(cores)]
                yield run_task_pool(
                    sim, node.cpu, rtasks, cores, label=f"{spec.name}.dist_reduce"
                )
            entries = [
                (skey, key, spec.reduce_fn(key, values, app_params))
                for skey, key, values in grouped
            ]
            # the reduced partition is output-shaped: its share of the final
            # output, never larger than what was merged to produce it
            out_share = profile.output_bytes(input_size) * (n_entries / total_entries)
            nbytes = max(1, int(min(in_bytes, out_share)) if out_share > 0 else in_bytes)
            rpath = _p.join(shuffle_dir, f"red.p{p}")
            blob = _store_artifact(node, entries, partition=p)
            yield node.fs.write(rpath, data=blob, size=nbytes)
            out[p] = {"path": rpath, "bytes": nbytes, "entries": len(entries)}
        sp.set(partitions=len(out))
    return {"partitions": out}


def dist_merge(node: "Node", params: dict, cfg: PhoenixConfig) -> _t.Generator:
    """Apply the user merge function over the gathered parts; final output."""
    spec = _spec_of(params)
    profile = spec.profile
    app_params = dict(params.get("app_params") or {})
    sim = node.sim
    obs = sim.obs
    input_size = int(params["input_size"])
    exchange = bool(params.get("exchange"))
    shuffle_dir = params["shuffle_dir"]
    outputs = []
    with obs.span("dist.merge.local", cat="dist", track=node.name, force=True) as sp:
        for part in params.get("parts") or []:
            data = yield from _read_obj(
                node, part["path"], part["bytes"],
                shard=part.get("shard"), partition=part.get("partition"),
            )
            outputs.append(data)
        merge_ops = profile.merge_ops(input_size)
        if merge_ops > 0:
            yield node.cpu.submit(merge_ops, name=f"{spec.name}.dist_merge")
        if exchange:
            # reduced partitions hold decorated entries; the user merge
            # function sees plain per-part (key, value) lists, exactly what
            # the extended runtime hands it
            parts_out = [undecorate(entries) for entries in outputs]
            if spec.merge_fn is not None:
                output = spec.merge_fn(parts_out, app_params)
            else:
                output = [pair for part in parts_out for pair in part]
        else:
            total_frags = int(params.get("total_fragments") or len(outputs))
            if total_frags > 1 and spec.merge_fn is not None:
                output = spec.merge_fn(outputs, app_params)
            elif outputs:
                output = outputs[0]
            else:
                output = []
        out_path = _p.join(shuffle_dir, "output")
        yield node.fs.write(out_path, size=max(1, profile.output_bytes(input_size)))
        sp.set(parts=len(outputs))
    return {"output": output, "path": out_path}
