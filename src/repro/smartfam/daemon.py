"""The smartFAM daemons: SD-side dispatcher and host-side caller (Fig 5).

``SDSmartFAM`` runs on the storage node: it creates one log file per
preloaded module under the export's log directory, watches them with
inotify, and on each host write dispatches the module with the decoded
parameters, writing the result back into the log.

``HostSmartFAM`` runs on the host: ``invoke(module, params)`` performs the
paper's five invoke steps and four return steps through the NFS mount,
returning an event carrying the module's result.  The host-side "inotify"
is NFS mtime polling (kernel inotify does not see server-side writes),
with the interval from :class:`~repro.config.SmartFAMConfig`.
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.config import SmartFAMConfig
from repro.errors import (
    InterruptError,
    OffloadTimeoutError,
    ProtocolError,
    SmartFAMError,
    is_retryable,
    mark_retryable,
)
from repro.fs import path as _p
from repro.fs.inotify import IN_MODIFY
from repro.fs.nfs import NFSMount
from repro.sim.events import Event
from repro.sim.sync import Semaphore
from repro.smartfam.logfile import INVOKE, RESULT, LogFileCodec, LogRecord
from repro.smartfam.registry import ModuleRegistry

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node

__all__ = ["SDSmartFAM", "HostSmartFAM", "LOG_DIR"]

#: log-file folder inside the SD export ("A log-file folder, created in NFS
#: at the server side", Section IV-A)
LOG_DIR = "/export/sdlog"

_seqs = itertools.count(1)


class SDSmartFAM:
    """The smartFAM daemon on a McSD storage node."""

    def __init__(
        self,
        node: "Node",
        registry: ModuleRegistry,
        cfg: SmartFAMConfig | None = None,
        log_dir: str = LOG_DIR,
        phoenix_cfg=None,
    ):
        from repro.config import PhoenixConfig

        self.node = node
        self.sim = node.sim
        self.registry = registry
        self.cfg = cfg or SmartFAMConfig()
        self.log_dir = _p.normalize(log_dir)
        self.phoenix_cfg = phoenix_cfg or PhoenixConfig()
        #: module invocations served (stats)
        self.invocations = 0
        #: results silently lost (injected daemon deaths; stats)
        self.results_dropped = 0
        #: a killed daemon stops dispatching and never answers (see kill())
        self.dead = False
        #: liveness ping loop (started on demand by the scheduler)
        self._hb_proc = None
        #: sequence numbers currently being executed (idempotency guard)
        self._in_flight: set[int] = set()
        #: fault injection: module -> number of upcoming invocations to crash
        self._crash_budget: dict[str, int] = {}
        #: fault injection: module -> number of upcoming results to drop
        #: (models the daemon dying after the module ran but before the
        #: result record was written)
        self._drop_budget: dict[str, int] = {}
        node.fs.vfs.mkdir(self.log_dir, parents=True)
        for name in registry.names():
            path = self.log_path(name)
            node.fs.vfs.create(path, exist_ok=True)
            watch = node.inotify.add_watch(path, IN_MODIFY, watch_children=False)
            self.sim.spawn(
                self._dispatch_loop(name, path, watch),
                name=f"smartfam:{node.name}:{name}",
            )

    def log_path(self, module: str) -> str:
        """The log file of a module."""
        return _p.join(self.log_dir, f"{module}.log")

    # -- fault injection (Section VI: fault tolerance future work) ---------

    def inject_module_crash(self, module: str, count: int = 1) -> None:
        """Make the next ``count`` invocations of ``module`` fail."""
        self._crash_budget[module] = self._crash_budget.get(module, 0) + count

    def inject_result_drop(self, module: str, count: int = 1) -> None:
        """Silently drop the next ``count`` results of ``module``."""
        self._drop_budget[module] = self._drop_budget.get(module, 0) + count

    def kill(self) -> None:
        """Kill the daemon: it stops dispatching and never answers again.

        The smartFAM channel gives no failure notification — the log files
        stay on disk, the host's INVOKE writes land, and nothing ever
        replies — so the host only learns of the death through its own
        deadlines.  In-flight module runs complete (the node is alive, the
        daemon process died) but their results are dropped.
        """
        self.dead = True

    def revive(self) -> None:
        """Restart a killed daemon (it resumes dispatching new writes)."""
        self.dead = False

    # -- heartbeats (failure-detector feed) --------------------------------

    def start_heartbeat(self, fabric, dst: str, interval: float) -> None:
        """Ping ``dst`` every ``interval`` sim-seconds over the fabric.

        Idempotent.  A dead daemon skips its pings (the process that
        would send them is gone) but the loop survives, so a
        :meth:`revive` resumes beating — that resumption is what moves a
        quarantined node into probation at the failure detector.
        """
        if self._hb_proc is not None:
            return
        self._hb_proc = self.sim.spawn(
            self._heartbeat_loop(fabric, dst, interval),
            name=f"smartfam-hb:{self.node.name}",
        )

    def _heartbeat_loop(self, fabric, dst: str, interval: float) -> _t.Generator:
        """Fault site ``heartbeat.drop`` (ctx: node): *drop*/*fail* swallow
        one ping, *delay* postpones it — lost pings raise suspicion at the
        receiver; they are never an error here."""
        while True:
            yield self.sim.timeout(interval)
            if self.dead:
                continue
            inj = self.sim.faults
            if inj is not None:
                decision = inj.check("heartbeat.drop", node=self.node.name)
                if decision is not None:
                    if decision.action == "delay":
                        yield self.sim.timeout(decision.delay)
                    elif decision.action in ("drop", "fail", "kill", "corrupt"):
                        self.sim.obs.count("fault.heartbeat")
                        continue
            try:
                yield fabric.transfer(
                    self.node.name, dst, nbytes=64, kind="heartbeat"
                )
            except Exception:
                continue  # a lost ping is the failure detector's signal

    def _dispatch_loop(self, module: str, path: str, watch) -> _t.Generator:
        """Steps 2-4 of the invoke protocol, forever.

        Idempotency: dispatch is keyed on the record's sequence number.  A
        seq is skipped while a run for it is *in flight* or once its RESULT
        is already in the log — but a seq whose run died before the result
        was persisted is dispatched again when the host re-writes the same
        INVOKE record, which is what makes host-side re-invocation after a
        timeout safe (at-most-once while alive, at-least-once overall).

        Resilience: a transient read failure (torn write, injected disk
        fault) skips the event rather than killing the loop — the daemon
        is a long-lived service, and the host's retry re-fires inotify.
        """
        obs = self.sim.obs
        track = f"{self.node.name}:{module}"
        while True:
            yield watch.queue.get()  # Step 2: inotify fires
            if self.dead:
                continue  # killed daemon: the write lands, nobody reacts
            inj = self.sim.faults
            if inj is not None:
                decision = inj.check("fam.dispatch", module=module, node=self.node.name)
                if decision is not None and decision.action == "drop":
                    continue  # the daemon "missed" the notification
                if decision is not None and decision.action == "delay":
                    # a stalled dispatch: the module runs late (straggler)
                    yield self.sim.timeout(decision.delay)
            with obs.span(
                "fam.dispatch", cat="smartfam", track=track, module=module
            ) as sp:
                # Step 3: the Daemon opens the log and retrieves parameters.
                try:
                    with obs.span("fam.dispatch.read_log", cat="smartfam", track=track):
                        payload = yield self.node.fs.read(
                            path, nbytes=self.cfg.logfile_bytes
                        )
                    record = LogFileCodec.latest(payload, INVOKE)
                except Exception as exc:
                    if not is_retryable(exc):
                        raise
                    # A torn/garbage write or a transient disk error must
                    # not kill the daemon: skip the event; a well-formed
                    # record (or the host's retry) will fire inotify again.
                    self.sim.tracer.count("smartfam.corrupt_log")
                    continue
                if (
                    record is None
                    or record.seq in self._in_flight
                    or LogFileCodec.find(payload, RESULT, record.seq) is not None
                ):
                    continue  # running, already answered, or our own write
                self._in_flight.add(record.seq)
                sp.set(seq=record.seq)
                yield self.sim.timeout(self.cfg.daemon_dispatch_overhead)
                # Step 4: invoke the data-intensive module.
                self.sim.spawn(
                    self._run_module(module, path, record),
                    name=f"smartfam:{self.node.name}:{module}#{record.seq}",
                )

    def _should_crash(self, module: str) -> bool:
        if self._crash_budget.get(module, 0) > 0:
            self._crash_budget[module] -= 1
            return True
        inj = self.sim.faults
        if inj is not None:
            decision = inj.check("fam.module", module=module, node=self.node.name)
            return decision is not None and decision.action in ("fail", "kill")
        return False

    def _should_drop_result(self, module: str) -> bool:
        if self._drop_budget.get(module, 0) > 0:
            self._drop_budget[module] -= 1
            return True
        inj = self.sim.faults
        if inj is not None:
            decision = inj.check("fam.result", module=module, node=self.node.name)
            return decision is not None and decision.action == "drop"
        return False

    def _run_module(self, module: str, path: str, record: LogRecord) -> _t.Generator:
        try:
            yield from self._run_module_inner(module, path, record)
        finally:
            # whatever happened — result written, result dropped, module
            # crashed — the seq is no longer executing, so a host re-invoke
            # with the same seq may dispatch again (at-least-once overall)
            self._in_flight.discard(record.seq)

    def _run_module_inner(
        self, module: str, path: str, record: LogRecord
    ) -> _t.Generator:
        fn = self.registry.get(module)
        self.invocations += 1
        obs = self.sim.obs
        track = f"{self.node.name}:{module}"
        if self._should_crash(module):
            # transient by construction: the module died, not the job
            reply = LogRecord(
                RESULT,
                record.seq,
                module,
                body=mark_retryable(
                    SmartFAMError(f"injected crash in module {module!r}")
                ),
                ok=False,
            )
            yield from self._write_result(path, reply, track)
            return
        with obs.span(
            "fam.module.run", cat="smartfam", track=track,
            module=module, seq=record.seq,
        ) as run_sp:
            try:
                result = yield self.sim.spawn(
                    fn(self.node, dict(record.body or {}), self.phoenix_cfg),
                    name=f"module:{module}#{record.seq}",
                )
                reply = LogRecord(RESULT, record.seq, module, body=result, ok=True)
            except Exception as exc:
                reply = LogRecord(RESULT, record.seq, module, body=exc, ok=False)
                run_sp.set(error=type(exc).__name__)
        if self.dead or self._should_drop_result(module):
            self.results_dropped += 1
            return  # the daemon died before persisting the result
        # Return Step 1: results are written to the module's log file.
        yield from self._write_result(path, reply, track)

    def _write_result(self, path: str, reply: LogRecord, track: str) -> _t.Generator:
        """Persist a RESULT record, riding out transient disk faults.

        The write is the daemon's only chance to answer — losing it to a
        transient error turns a served call into a host-side timeout — so
        it retries a bounded number of times before giving up (at which
        point the host's deadline machinery takes over).
        """
        obs = self.sim.obs
        for attempt in range(self.cfg.result_write_retries + 1):
            try:
                with obs.span(
                    "fam.result.write", cat="smartfam", track=track,
                    seq=reply.seq, ok=reply.ok,
                ):
                    current = self.node.fs.vfs.read(path)
                    new_payload = LogFileCodec.append(current, reply)
                    yield self.node.fs.write(
                        path, data=new_payload, size=self.cfg.logfile_bytes,
                        append=False,
                    )
                return
            except Exception as exc:
                if not is_retryable(exc) or attempt == self.cfg.result_write_retries:
                    raise
                obs.count("retry.count")
                obs.count("retry.fam.result_write")
                yield self.sim.timeout(
                    self.cfg.retry_backoff * (2.0 ** attempt)
                )


class HostSmartFAM:
    """The host-side smartFAM endpoint, bound to one SD node's NFS mount."""

    def __init__(
        self,
        node: "Node",
        mount: NFSMount,
        cfg: SmartFAMConfig | None = None,
        log_dir_on_mount: str = "/sdlog",
    ):
        self.node = node
        self.sim = node.sim
        self.mount = mount
        self.cfg = cfg or SmartFAMConfig()
        self.log_dir = _p.normalize(log_dir_on_mount)
        self._locks: dict[str, Semaphore] = {}
        #: completed invocations (stats)
        self.calls = 0
        #: attempts re-issued by :meth:`invoke_reliable` (stats)
        self.retries = 0

    def log_path(self, module: str) -> str:
        """Mount-relative path of a module's log file."""
        return _p.join(self.log_dir, f"{module}.log")

    def list_modules(self) -> Event:
        """Discover the SD node's preloaded modules from the host side.

        The log-file directory *is* the module registry as the host can
        see it (one log per preloaded module, Section IV-A), so discovery
        is one NFS readdir.  Process value: sorted module names.
        """

        def _proc() -> _t.Generator:
            names = yield self.mount.listdir(self.log_dir)
            return sorted(
                name[: -len(".log")] for name in names if name.endswith(".log")
            )

        return self.sim.spawn(_proc(), name="smartfam-discover")

    def invoke(self, module: str, params: dict, timeout: float | None = None) -> Event:
        """Offload one call; the returned Process carries the result.

        The log file is a single channel, so concurrent calls to the same
        module from this host serialize (FIFO) on a per-module lock.

        ``timeout`` bounds the wait for the *result* (measured from the
        call, covering queueing + execution); on expiry the call is
        abandoned and :class:`~repro.errors.OffloadTimeoutError` raised —
        the liveness mechanism a dead SD daemon requires.
        """
        if timeout is None:
            return self.sim.spawn(
                self._invoke(module, params), name=f"smartfam-call:{module}"
            )
        return self.sim.spawn(
            self._invoke_with_timeout(module, params, timeout),
            name=f"smartfam-call:{module}",
        )

    def invoke_reliable(
        self,
        module: str,
        params: dict,
        timeout: float | None = None,
        max_retries: int | None = None,
        backoff: float | None = None,
    ) -> Event:
        """Offload one call with deadline + bounded retry + backoff.

        Each attempt gets its own ``timeout`` (default: no per-attempt
        deadline — pass one whenever the SD daemon can die silently).
        Transient failures (:func:`~repro.errors.is_retryable`) retry up
        to ``max_retries`` times with exponential backoff; permanent
        failures raise immediately.

        Idempotency: a *timed-out* attempt re-invokes with the **same**
        sequence number — the daemon skips the seq while the original run
        is still in flight, and the host picks up a late-but-persisted
        RESULT record instead of executing the module twice.  An attempt
        that failed with a *recorded* error result re-invokes under a
        fresh seq (the old seq is answered; reusing it would re-read the
        failure forever).
        """
        retries = self.cfg.invoke_retries if max_retries is None else max_retries
        base = self.cfg.retry_backoff if backoff is None else backoff
        if retries < 0:
            raise SmartFAMError("max_retries must be >= 0")

        def _proc() -> _t.Generator:
            obs = self.sim.obs
            seq = next(_seqs)
            last_exc: BaseException | None = None
            for attempt in range(retries + 1):
                try:
                    if timeout is None:
                        return (
                            yield self.sim.spawn(
                                self._invoke(module, params, seq=seq),
                                name=f"smartfam-inner:{module}",
                            )
                        )
                    return (
                        yield self.sim.spawn(
                            self._invoke_with_timeout(module, params, timeout, seq=seq),
                            name=f"smartfam-inner:{module}",
                        )
                    )
                except Exception as exc:
                    last_exc = exc
                    if not is_retryable(exc) or attempt == retries:
                        raise
                    self.retries += 1
                    obs.count("retry.count")
                    obs.count(f"retry.smartfam.{module}")
                    if not isinstance(exc, OffloadTimeoutError):
                        seq = next(_seqs)  # the old seq carries a failure RESULT
                    if base > 0:
                        yield self.sim.timeout(base * (2.0 ** attempt))
            raise SmartFAMError(f"unreachable retry state for {module!r}") from last_exc

        return self.sim.spawn(_proc(), name=f"smartfam-reliable:{module}")

    def _invoke_with_timeout(
        self, module: str, params: dict, timeout: float, seq: int | None = None
    ) -> _t.Generator:
        inner = self.sim.spawn(
            self._invoke(module, params, seq=seq), name=f"smartfam-inner:{module}"
        )
        timer = self.sim.timeout(timeout)
        yield self.sim.any_of([inner, timer])
        if inner.triggered:
            if not inner.ok:
                raise _t.cast(BaseException, inner.value)
            return inner.value
        inner.interrupt("smartfam timeout")
        # absorb the interrupted process so its failure is not unhandled
        try:
            yield inner
        except Exception:
            pass
        raise OffloadTimeoutError(module, timeout)

    def _lock(self, module: str) -> Semaphore:
        lock = self._locks.get(module)
        if lock is None:
            lock = Semaphore(self.sim, value=1, name=f"famlock:{module}")
            self._locks[module] = lock
        return lock

    def _invoke(self, module: str, params: dict, seq: int | None = None) -> _t.Generator:
        obs = self.sim.obs
        track = f"{self.node.name}:{module}"
        with obs.span(
            "fam.invoke", cat="smartfam", track=track, module=module
        ) as call_sp:
            lock = self._lock(module)
            acq = lock.acquire()
            try:
                yield acq
            except InterruptError:
                # A timed-out caller must not strand the channel: withdraw
                # the queued acquire, or hand a just-granted permit back.
                if not lock.cancel(acq) and acq.triggered:
                    lock.release()
                raise
            try:
                path = self.log_path(module)
                if seq is None:
                    seq = next(_seqs)
                call_sp.set(seq=seq)
                # Invoke Step 1: write the input parameters to the log file.
                with obs.span(
                    "fam.invoke.write_params", cat="smartfam", track=track, seq=seq
                ):
                    current = yield self.mount.read(
                        path, nbytes=self.cfg.logfile_bytes
                    )
                    current = (
                        current if isinstance(current, (bytes, bytearray)) else None
                    )
                    # a re-invocation may find its answer already persisted
                    # (the first attempt's result arrived after the host's
                    # deadline) — consume it instead of re-executing
                    existing = LogFileCodec.find(current, RESULT, seq)
                    if existing is not None:
                        self.calls += 1
                        if not existing.ok:
                            raise _as_exception(existing.body)
                        return existing.body
                    payload = LogFileCodec.append(
                        current,
                        LogRecord(INVOKE, seq, module, body=dict(params)),
                    )
                    yield self.mount.write(
                        path, data=payload, size=self.cfg.logfile_bytes
                    )
                    baseline = yield self.mount.stat(path)
                # Return Steps 2-4: the host-side monitor polls the log's
                # attributes over NFS (cheap getattr round trips) and only
                # re-reads the log when it has actually changed.
                with obs.span(
                    "fam.return.wait", cat="smartfam", track=track, seq=seq
                ) as wait_sp:
                    polls = 0
                    while True:
                        if self.cfg.host_poll_interval > 0:
                            yield self.sim.timeout(self.cfg.host_poll_interval)
                        else:
                            yield self.sim.timeout(0.0)
                        attrs = yield self.mount.stat(path)
                        polls += 1
                        if attrs["mtime"] == baseline["mtime"]:
                            continue
                        baseline = attrs
                        with obs.span(
                            "fam.return.read_log", cat="smartfam", track=track,
                            seq=seq,
                        ):
                            data = yield self.mount.read(
                                path, nbytes=self.cfg.logfile_bytes
                            )
                        record = LogFileCodec.find(
                            data if isinstance(data, (bytes, bytearray)) else None,
                            RESULT,
                            seq,
                        )
                        if record is not None:
                            wait_sp.set(polls=polls)
                            self.calls += 1
                            if not record.ok:
                                raise _as_exception(record.body)
                            return record.body
            finally:
                lock.release()


def _as_exception(body: object) -> BaseException:
    if isinstance(body, BaseException):
        return body
    return SmartFAMError(f"module failed: {body!r}")
