"""The smartFAM daemons: SD-side dispatcher and host-side caller (Fig 5).

``SDSmartFAM`` runs on the storage node: it creates one log file per
preloaded module under the export's log directory, watches them with
inotify, and on each host write dispatches the module with the decoded
parameters, writing the result back into the log.

``HostSmartFAM`` runs on the host: ``invoke(module, params)`` performs the
paper's five invoke steps and four return steps through the NFS mount,
returning an event carrying the module's result.  The host-side "inotify"
is NFS mtime polling (kernel inotify does not see server-side writes),
with the interval from :class:`~repro.config.SmartFAMConfig`.
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.config import SmartFAMConfig
from repro.errors import OffloadTimeoutError, ProtocolError, SmartFAMError
from repro.fs import path as _p
from repro.fs.inotify import IN_MODIFY
from repro.fs.nfs import NFSMount
from repro.sim.events import Event
from repro.sim.sync import Semaphore
from repro.smartfam.logfile import INVOKE, RESULT, LogFileCodec, LogRecord
from repro.smartfam.registry import ModuleRegistry

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node

__all__ = ["SDSmartFAM", "HostSmartFAM", "LOG_DIR"]

#: log-file folder inside the SD export ("A log-file folder, created in NFS
#: at the server side", Section IV-A)
LOG_DIR = "/export/sdlog"

_seqs = itertools.count(1)


class SDSmartFAM:
    """The smartFAM daemon on a McSD storage node."""

    def __init__(
        self,
        node: "Node",
        registry: ModuleRegistry,
        cfg: SmartFAMConfig | None = None,
        log_dir: str = LOG_DIR,
        phoenix_cfg=None,
    ):
        from repro.config import PhoenixConfig

        self.node = node
        self.sim = node.sim
        self.registry = registry
        self.cfg = cfg or SmartFAMConfig()
        self.log_dir = _p.normalize(log_dir)
        self.phoenix_cfg = phoenix_cfg or PhoenixConfig()
        #: module invocations served (stats)
        self.invocations = 0
        #: fault injection: module -> number of upcoming invocations to crash
        self._crash_budget: dict[str, int] = {}
        #: fault injection: module -> number of upcoming results to drop
        #: (models the daemon dying after the module ran but before the
        #: result record was written)
        self._drop_budget: dict[str, int] = {}
        node.fs.vfs.mkdir(self.log_dir, parents=True)
        for name in registry.names():
            path = self.log_path(name)
            node.fs.vfs.create(path, exist_ok=True)
            watch = node.inotify.add_watch(path, IN_MODIFY, watch_children=False)
            self.sim.spawn(
                self._dispatch_loop(name, path, watch),
                name=f"smartfam:{node.name}:{name}",
            )

    def log_path(self, module: str) -> str:
        """The log file of a module."""
        return _p.join(self.log_dir, f"{module}.log")

    # -- fault injection (Section VI: fault tolerance future work) ---------

    def inject_module_crash(self, module: str, count: int = 1) -> None:
        """Make the next ``count`` invocations of ``module`` fail."""
        self._crash_budget[module] = self._crash_budget.get(module, 0) + count

    def inject_result_drop(self, module: str, count: int = 1) -> None:
        """Silently drop the next ``count`` results of ``module``."""
        self._drop_budget[module] = self._drop_budget.get(module, 0) + count

    def _dispatch_loop(self, module: str, path: str, watch) -> _t.Generator:
        """Steps 2-4 of the invoke protocol, forever."""
        served: set[int] = set()
        obs = self.sim.obs
        track = f"{self.node.name}:{module}"
        while True:
            yield watch.queue.get()  # Step 2: inotify fires
            with obs.span(
                "fam.dispatch", cat="smartfam", track=track, module=module
            ) as sp:
                # Step 3: the Daemon opens the log and retrieves parameters.
                with obs.span("fam.dispatch.read_log", cat="smartfam", track=track):
                    payload = yield self.node.fs.read(
                        path, nbytes=self.cfg.logfile_bytes
                    )
                try:
                    record = LogFileCodec.latest(payload, INVOKE)
                except ProtocolError:
                    # A torn/garbage write must not kill the daemon: skip the
                    # event; a well-formed record will fire inotify again.
                    self.sim.tracer.count("smartfam.corrupt_log")
                    continue
                if record is None or record.seq in served:
                    continue  # our own result write, or a duplicate event
                served.add(record.seq)
                sp.set(seq=record.seq)
                yield self.sim.timeout(self.cfg.daemon_dispatch_overhead)
                # Step 4: invoke the data-intensive module.
                self.sim.spawn(
                    self._run_module(module, path, record),
                    name=f"smartfam:{self.node.name}:{module}#{record.seq}",
                )

    def _run_module(self, module: str, path: str, record: LogRecord) -> _t.Generator:
        fn = self.registry.get(module)
        self.invocations += 1
        obs = self.sim.obs
        track = f"{self.node.name}:{module}"
        if self._crash_budget.get(module, 0) > 0:
            self._crash_budget[module] -= 1
            reply = LogRecord(
                RESULT,
                record.seq,
                module,
                body=SmartFAMError(f"injected crash in module {module!r}"),
                ok=False,
            )
            with obs.span(
                "fam.result.write", cat="smartfam", track=track,
                seq=record.seq, ok=False,
            ):
                current = self.node.fs.vfs.read(path)
                yield self.node.fs.write(
                    path,
                    data=LogFileCodec.append(current, reply),
                    size=self.cfg.logfile_bytes,
                )
            return
        with obs.span(
            "fam.module.run", cat="smartfam", track=track,
            module=module, seq=record.seq,
        ) as run_sp:
            try:
                result = yield self.sim.spawn(
                    fn(self.node, dict(record.body or {}), self.phoenix_cfg),
                    name=f"module:{module}#{record.seq}",
                )
                reply = LogRecord(RESULT, record.seq, module, body=result, ok=True)
            except Exception as exc:
                reply = LogRecord(RESULT, record.seq, module, body=exc, ok=False)
                run_sp.set(error=type(exc).__name__)
        if self._drop_budget.get(module, 0) > 0:
            self._drop_budget[module] -= 1
            return  # the daemon "died" before persisting the result
        # Return Step 1: results are written to the module's log file.
        with obs.span(
            "fam.result.write", cat="smartfam", track=track,
            seq=record.seq, ok=reply.ok,
        ):
            current = self.node.fs.vfs.read(path)
            new_payload = LogFileCodec.append(current, reply)
            yield self.node.fs.write(
                path, data=new_payload, size=self.cfg.logfile_bytes, append=False
            )


class HostSmartFAM:
    """The host-side smartFAM endpoint, bound to one SD node's NFS mount."""

    def __init__(
        self,
        node: "Node",
        mount: NFSMount,
        cfg: SmartFAMConfig | None = None,
        log_dir_on_mount: str = "/sdlog",
    ):
        self.node = node
        self.sim = node.sim
        self.mount = mount
        self.cfg = cfg or SmartFAMConfig()
        self.log_dir = _p.normalize(log_dir_on_mount)
        self._locks: dict[str, Semaphore] = {}
        #: completed invocations (stats)
        self.calls = 0

    def log_path(self, module: str) -> str:
        """Mount-relative path of a module's log file."""
        return _p.join(self.log_dir, f"{module}.log")

    def list_modules(self) -> Event:
        """Discover the SD node's preloaded modules from the host side.

        The log-file directory *is* the module registry as the host can
        see it (one log per preloaded module, Section IV-A), so discovery
        is one NFS readdir.  Process value: sorted module names.
        """

        def _proc() -> _t.Generator:
            names = yield self.mount.listdir(self.log_dir)
            return sorted(
                name[: -len(".log")] for name in names if name.endswith(".log")
            )

        return self.sim.spawn(_proc(), name="smartfam-discover")

    def invoke(self, module: str, params: dict, timeout: float | None = None) -> Event:
        """Offload one call; the returned Process carries the result.

        The log file is a single channel, so concurrent calls to the same
        module from this host serialize (FIFO) on a per-module lock.

        ``timeout`` bounds the wait for the *result* (measured from the
        call, covering queueing + execution); on expiry the call is
        abandoned and :class:`~repro.errors.OffloadTimeoutError` raised —
        the liveness mechanism a dead SD daemon requires.
        """
        if timeout is None:
            return self.sim.spawn(
                self._invoke(module, params), name=f"smartfam-call:{module}"
            )
        return self.sim.spawn(
            self._invoke_with_timeout(module, params, timeout),
            name=f"smartfam-call:{module}",
        )

    def _invoke_with_timeout(
        self, module: str, params: dict, timeout: float
    ) -> _t.Generator:
        inner = self.sim.spawn(
            self._invoke(module, params), name=f"smartfam-inner:{module}"
        )
        timer = self.sim.timeout(timeout)
        yield self.sim.any_of([inner, timer])
        if inner.triggered:
            if not inner.ok:
                raise _t.cast(BaseException, inner.value)
            return inner.value
        inner.interrupt("smartfam timeout")
        # absorb the interrupted process so its failure is not unhandled
        try:
            yield inner
        except Exception:
            pass
        raise OffloadTimeoutError(module, timeout)

    def _lock(self, module: str) -> Semaphore:
        lock = self._locks.get(module)
        if lock is None:
            lock = Semaphore(self.sim, value=1, name=f"famlock:{module}")
            self._locks[module] = lock
        return lock

    def _invoke(self, module: str, params: dict) -> _t.Generator:
        obs = self.sim.obs
        track = f"{self.node.name}:{module}"
        with obs.span(
            "fam.invoke", cat="smartfam", track=track, module=module
        ) as call_sp:
            lock = self._lock(module)
            yield lock.acquire()
            try:
                path = self.log_path(module)
                seq = next(_seqs)
                call_sp.set(seq=seq)
                # Invoke Step 1: write the input parameters to the log file.
                with obs.span(
                    "fam.invoke.write_params", cat="smartfam", track=track, seq=seq
                ):
                    current = yield self.mount.read(
                        path, nbytes=self.cfg.logfile_bytes
                    )
                    payload = LogFileCodec.append(
                        current if isinstance(current, (bytes, bytearray)) else None,
                        LogRecord(INVOKE, seq, module, body=dict(params)),
                    )
                    yield self.mount.write(
                        path, data=payload, size=self.cfg.logfile_bytes
                    )
                    baseline = yield self.mount.stat(path)
                # Return Steps 2-4: the host-side monitor polls the log's
                # attributes over NFS (cheap getattr round trips) and only
                # re-reads the log when it has actually changed.
                with obs.span(
                    "fam.return.wait", cat="smartfam", track=track, seq=seq
                ) as wait_sp:
                    polls = 0
                    while True:
                        if self.cfg.host_poll_interval > 0:
                            yield self.sim.timeout(self.cfg.host_poll_interval)
                        else:
                            yield self.sim.timeout(0.0)
                        attrs = yield self.mount.stat(path)
                        polls += 1
                        if attrs["mtime"] == baseline["mtime"]:
                            continue
                        baseline = attrs
                        with obs.span(
                            "fam.return.read_log", cat="smartfam", track=track,
                            seq=seq,
                        ):
                            data = yield self.mount.read(
                                path, nbytes=self.cfg.logfile_bytes
                            )
                        record = LogFileCodec.find(
                            data if isinstance(data, (bytes, bytearray)) else None,
                            RESULT,
                            seq,
                        )
                        if record is not None:
                            wait_sp.set(polls=polls)
                            self.calls += 1
                            if not record.ok:
                                raise _as_exception(record.body)
                            return record.body
            finally:
                lock.release()


def _as_exception(body: object) -> BaseException:
    if isinstance(body, BaseException):
        return body
    return SmartFAMError(f"module failed: {body!r}")
