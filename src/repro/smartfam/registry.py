"""The processing-module registry: what is preloaded into a McSD node.

"When a new data-intensive module is preloaded to the McSD node, a
corresponding log-file is created" (Section IV-A).  A module is a named
function the SD daemon can invoke with host-supplied parameters; the
standard registry preloads the paper's three benchmarks, each honouring
``mode`` / ``fragment_bytes`` parameters so every evaluation scenario goes
through the same channel.

Module call convention: ``fn(node, params, phoenix_cfg)`` returns a
simulation-process generator whose return value is pickled back through
the log file.  ``params`` must be plain data (paths, sizes, options) — the
input *content* stays on the SD node; only its path crosses the channel.
"""

from __future__ import annotations

import typing as _t

from repro.config import PhoenixConfig
from repro.errors import ModuleNotRegisteredError, SmartFAMError
from repro.phoenix.api import InputSpec, MapReduceSpec
from repro.phoenix.runtime import PhoenixRuntime
from repro.partition.extended import ExtendedPhoenixRuntime

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node

__all__ = ["ModuleFn", "ModuleRegistry", "standard_registry", "mapreduce_module"]

ModuleFn = _t.Callable[["Node", dict, PhoenixConfig], _t.Generator]


class ModuleRegistry:
    """Named data-intensive modules preloadable into SD nodes."""

    def __init__(self) -> None:
        self._modules: dict[str, ModuleFn] = {}

    def register(self, name: str, fn: ModuleFn) -> None:
        """Preload a module under ``name``."""
        if not name or "/" in name:
            raise SmartFAMError(f"bad module name {name!r}")
        self._modules[name] = fn

    def get(self, name: str) -> ModuleFn:
        """The module function (raises if never preloaded)."""
        try:
            return self._modules[name]
        except KeyError:
            raise ModuleNotRegisteredError(
                f"module {name!r} was not preloaded into this McSD node"
            ) from None

    def names(self) -> list[str]:
        """Registered module names (registration order)."""
        return list(self._modules)

    def __contains__(self, name: str) -> bool:
        return name in self._modules


def mapreduce_module(spec_factory: _t.Callable[[dict], MapReduceSpec]) -> ModuleFn:
    """Wrap a MapReduceSpec factory as a smartFAM module.

    Parameters understood (all host-supplied through the log file):

    * ``input_path`` (required) — SD-local path of the data file,
    * ``input_size`` — declared bytes (defaults to the file's size),
    * ``mode`` — ``partitioned`` (default) | ``parallel`` | ``sequential``,
    * ``fragment_bytes`` — fragment size for partitioned mode (None = auto),
    * ``app`` — extra dict passed to the user callbacks as InputSpec params.
    """

    def _module(node: "Node", params: dict, cfg: PhoenixConfig) -> _t.Generator:
        spec = spec_factory(params)
        path = params.get("input_path")
        if not path:
            raise SmartFAMError(f"{spec.name}: missing input_path parameter")
        fs, rel = node.resolve_fs(path)
        size = params.get("input_size")
        if size is None:
            size = fs.size_of(rel)  # metadata peek
        # For SD-local data the module memory-maps the file: splitting needs
        # only the mapping, and the content streams during the map phase
        # (the runtime still charges the full read, overlapped with map).
        payload = None
        if fs is node.fs:
            payload = node.fs.vfs.read(rel) or None
        inp = InputSpec(
            path=path, size=int(size), payload=payload, params=params.get("app", {})
        )
        mode = params.get("mode", "partitioned")
        if mode == "partitioned":
            ext = ExtendedPhoenixRuntime(node, cfg)
            result = yield ext.run(
                spec, inp, fragment_bytes=params.get("fragment_bytes")
            )
            return result
        if mode in ("parallel", "sequential"):
            rt = PhoenixRuntime(node, cfg)
            result = yield rt.run(spec, inp, mode=mode)
            return result
        raise SmartFAMError(f"{spec.name}: unknown mode {mode!r}")

    return _module


def standard_registry() -> ModuleRegistry:
    """The paper's three benchmarks plus the distributed-plane modules."""
    from repro.apps.matmul import make_matmul_spec
    from repro.apps.stringmatch import make_stringmatch_spec
    from repro.apps.wordcount import make_wordcount_spec
    from repro.smartfam.distmod import dist_map, dist_merge, dist_reduce

    reg = ModuleRegistry()
    reg.register("wordcount", mapreduce_module(lambda p: make_wordcount_spec()))
    reg.register("stringmatch", mapreduce_module(lambda p: make_stringmatch_spec()))
    reg.register(
        "matmul",
        mapreduce_module(
            lambda p: make_matmul_spec(int(p.get("app", {}).get("n", 1024)))
        ),
    )
    reg.register("dist_map", dist_map)
    reg.register("dist_reduce", dist_reduce)
    reg.register("dist_merge", dist_merge)
    return reg
