"""The log-file wire format of the smartFAM channel.

"The log file of each data-intensive module is an efficient channel for
the host node to communicate with the smart-storage node" (Section IV-A).
A log file is an append-only sequence of records; each record is either an
``invoke`` (host -> SD: input parameters) or a ``result`` (SD -> host).
Records carry a sequence number so concurrent callers and stale reads are
unambiguous.

The simulated file payload is a pickled record list; the *declared* file
size grows by a fixed record size per append, which is what the disk and
NFS cost models charge.
"""

from __future__ import annotations

import dataclasses
import pickle
import typing as _t

from repro.errors import ProtocolError

__all__ = ["INVOKE", "RESULT", "LogRecord", "LogFileCodec"]

INVOKE = "invoke"
RESULT = "result"


@dataclasses.dataclass
class LogRecord:
    """One entry in a module's log file."""

    kind: str
    seq: int
    module: str
    body: object = None
    ok: bool = True

    def __post_init__(self) -> None:
        if self.kind not in (INVOKE, RESULT):
            raise ProtocolError(f"unknown record kind {self.kind!r}")
        if self.seq < 0:
            raise ProtocolError(f"negative sequence number {self.seq}")


class LogFileCodec:
    """Encode/decode the record list carried in a log file payload."""

    @staticmethod
    def encode(records: _t.Sequence[LogRecord]) -> bytes:
        """Serialize the full record list."""
        return pickle.dumps(list(records), protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def decode(payload: bytes | None) -> list[LogRecord]:
        """Deserialize; empty/absent payload is an empty log."""
        if not payload:
            return []
        try:
            records = pickle.loads(payload)
        except Exception as exc:
            raise ProtocolError(f"corrupt log file: {exc}") from exc
        if not isinstance(records, list) or not all(
            isinstance(r, LogRecord) for r in records
        ):
            raise ProtocolError("log file does not contain LogRecords")
        return records

    @staticmethod
    def append(payload: bytes | None, record: LogRecord) -> bytes:
        """Payload with ``record`` appended."""
        records = LogFileCodec.decode(payload)
        records.append(record)
        return LogFileCodec.encode(records)

    @staticmethod
    def latest(payload: bytes | None, kind: str) -> LogRecord | None:
        """Most recent record of a kind (None if absent)."""
        records = [r for r in LogFileCodec.decode(payload) if r.kind == kind]
        return records[-1] if records else None

    @staticmethod
    def find(payload: bytes | None, kind: str, seq: int) -> LogRecord | None:
        """The record of ``kind`` with sequence ``seq``, if present."""
        for r in LogFileCodec.decode(payload):
            if r.kind == kind and r.seq == seq:
                return r
        return None
