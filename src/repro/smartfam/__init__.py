"""smartFAM: the file-alteration-monitor invocation channel (Section IV-A).

The host never opens a socket to the SD node's application code — the
*storage interface* is the channel.  Each preloaded data-intensive module
has a **log file** on the NFS share:

* invoking: the host writes the module's input parameters into its log
  file (Step 1); `inotify` on the SD node notices (Step 2); the SD daemon
  reads the parameters (Step 3) and invokes the module (Step 4);
* returning: the module's results are written to the same log file
  (Step 1'); the host-side monitor sees the modification (Step 2' — over
  NFS this is mtime polling); the host daemon notifies the calling
  application (Step 3'), which reads the results (Step 4').

Every step charges real simulated cost: NFS RPCs, disk I/O, notification
latencies, daemon dispatch overhead.
"""

from repro.smartfam.daemon import HostSmartFAM, SDSmartFAM
from repro.smartfam.distmod import dist_map, dist_merge, dist_reduce
from repro.smartfam.logfile import LogFileCodec, LogRecord
from repro.smartfam.registry import ModuleRegistry, standard_registry

__all__ = [
    "LogRecord",
    "LogFileCodec",
    "ModuleRegistry",
    "standard_registry",
    "SDSmartFAM",
    "HostSmartFAM",
    "dist_map",
    "dist_reduce",
    "dist_merge",
]
