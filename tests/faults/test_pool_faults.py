"""Tests for worker-pool crash tolerance: kill, fail, retry exhaustion."""

from __future__ import annotations

import pytest

from repro.errors import WorkerCrashError, is_retryable
from repro.exec import WorkerPool
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.obs import Observability


def _square(x):
    # module-level: crosses the multiprocessing pickle boundary
    return x * x


def _bad_map(x):
    raise ValueError(f"deterministic bug on {x}")


def _pool(*rules, seed=0, retries=2, obs=None):
    inj = FaultInjector(FaultPlan(rules=tuple(rules), seed=seed), obs=obs)
    return WorkerPool(
        2, start_method="fork", max_task_retries=retries, faults=inj, obs=obs
    )


def test_killed_worker_is_respawned_and_task_redispatched():
    with _pool(
        FaultRule("pool.worker", action="kill", count=1, where={"index": 0})
    ) as pool:
        results = sorted(pool.imap_unordered(_square, list(range(6))))
    assert results == [x * x for x in range(6)]
    assert pool.respawns >= 1
    assert pool.redispatches >= 1
    assert pool.faults.fired_by_site() == {"pool.worker": 1}


def test_injected_task_failure_is_retried_without_respawn():
    obs = Observability(enabled=False)
    with _pool(
        FaultRule("pool.worker", action="fail", count=1, where={"index": 2}),
        obs=obs,
    ) as pool:
        results = sorted(pool.imap_unordered(_square, list(range(6))))
    assert results == [x * x for x in range(6)]
    assert pool.respawns == 0  # the worker raised; it did not die
    assert pool.redispatches == 1
    counters = obs.metrics.snapshot()["counters"]
    assert counters["retry.pool"] == 1
    assert counters["retry.count"] == 1


def test_exhausted_retries_raise_permanent_worker_crash():
    # the rule never burns out, so task 0 fails on every dispatch
    with _pool(
        FaultRule("pool.worker", action="fail", count=10, where={"index": 0}),
        retries=1,
    ) as pool:
        with pytest.raises(WorkerCrashError) as err:
            list(pool.imap_unordered(_square, list(range(4))))
    assert err.value.task_index == 0
    assert not is_retryable(err.value)  # exhaustion is stamped permanent


def test_permanent_task_error_propagates_immediately():
    with WorkerPool(2, start_method="fork") as pool:
        with pytest.raises(ValueError, match="deterministic bug"):
            list(pool.imap_unordered(_bad_map, [1, 2, 3]))
    assert pool.redispatches == 0  # retrying a deterministic bug is futile


def test_attempt_number_is_visible_to_rules():
    # scope a rule to {index, attempt}: it fires on the retry, not the
    # first dispatch — proving attempts thread through injection ctx
    with _pool(
        FaultRule("pool.worker", action="fail", count=1, where={"index": 1}),
        FaultRule(
            "pool.worker", action="fail", count=1,
            where={"index": 1, "attempt": 1},
        ),
        retries=3,
    ) as pool:
        results = sorted(pool.imap_unordered(_square, list(range(3))))
    assert results == [0, 1, 4]
    assert pool.redispatches == 2  # first dispatch + scoped retry both failed


def test_pool_survives_kill_across_jobs():
    with _pool(
        FaultRule("pool.worker", action="kill", count=1, where={"index": 0})
    ) as pool:
        first = sorted(pool.imap_unordered(_square, list(range(4))))
        second = sorted(pool.imap_unordered(_square, list(range(4))))
    assert first == second == [0, 1, 4, 9]
    assert pool.respawns == 1  # only the first job saw the kill
