"""Edge-case tests for FaultTolerantInvoker: replicas, fallback, counters."""

from __future__ import annotations

import pytest

from repro.cluster import Testbed
from repro.config import table1_cluster
from repro.core import DataJob, FaultTolerantInvoker
from repro.errors import OffloadError
from repro.faults import FaultPlan, FaultRule
from repro.units import MB
from repro.workloads import text_input


@pytest.fixture()
def env():
    bed = Testbed(config=table1_cluster(n_sd=2, seed=12), seed=12)
    inp = text_input("/data/f", MB(50), payload_bytes=4_000, seed=12)
    _sd, _h, sd_path = bed.stage_on_sd("f", inp)
    bed.stage(bed.cluster.sd(1), sd_path, inp)
    job = DataJob(
        app="wordcount", input_path=sd_path, input_size=MB(50), mode="parallel"
    )
    return bed, inp, job


def _always_crashing(bed):
    bed.sim.install_faults(
        FaultPlan(rules=(FaultRule("fam.module", action="fail", count=1000),), seed=12)
    )


def _expected(inp):
    return len(inp.payload_bytes.split())


def test_zero_replicas_falls_back_to_host(env):
    bed, inp, job = env
    _always_crashing(bed)
    ft = FaultTolerantInvoker(bed.cluster, timeout=60.0, max_retries=1)

    def go():
        return (yield ft.run(job))  # no replicas at all

    res = bed.run(go())
    assert res.where == bed.cluster.host.name  # degraded but correct
    assert sum(v for _, v in res.output) == _expected(inp)
    assert ft.failovers == 1
    trail = ft.history[0]
    assert [a.outcome for a in trail] == ["error", "error", "ok"]
    assert trail[-1].detail == "failover"


def test_all_replicas_down_without_fallback_raises(env):
    bed, _inp, job = env
    _always_crashing(bed)
    ft = FaultTolerantInvoker(
        bed.cluster, timeout=60.0, max_retries=1, fallback_to_host=False
    )

    def go():
        try:
            return (yield ft.run(job, replicas=["sd1"]))
        except OffloadError as exc:
            return exc

    exc = bed.run(go())
    assert isinstance(exc, OffloadError)
    # budget fully spent, nothing beyond it: (retries+1) per target
    assert ft.total_attempts == 2 * 2
    assert ft.failovers == 0


def test_replica_failover_succeeds_before_host(env):
    bed, inp, job = env
    # only sd0's module crashes: the rule is scoped by daemon node
    bed.sim.install_faults(
        FaultPlan(
            rules=(
                FaultRule(
                    "fam.module", action="fail", count=1000, where={"node": "sd0"}
                ),
            ),
            seed=12,
        )
    )
    ft = FaultTolerantInvoker(bed.cluster, timeout=60.0, max_retries=1)

    def go():
        return (yield ft.run(job, replicas=["sd1"]))

    res = bed.run(go())
    assert res.where == "sd1"
    assert sum(v for _, v in res.output) == _expected(inp)
    assert ft.failovers == 0  # replica absorbed it; host never entered


def test_permanent_error_fails_fast_per_target(env):
    bed, _inp, job = env
    bad = DataJob(
        app="wordcount", input_path="/export/data/ghost",
        input_size=MB(1), mode="parallel",
    )
    ft = FaultTolerantInvoker(
        bed.cluster, timeout=60.0, max_retries=3, fallback_to_host=False
    )

    def go():
        try:
            return (yield ft.run(bad, replicas=["sd1"]))
        except OffloadError as exc:
            return exc

    exc = bed.run(go())
    assert isinstance(exc, OffloadError)
    # one attempt per target despite max_retries=3: the error is permanent
    assert ft.total_attempts == 2


def test_unknown_replica_names_are_skipped(env):
    bed, inp, job = env
    ft = FaultTolerantInvoker(bed.cluster, timeout=60.0)

    def go():
        return (yield ft.run(job, replicas=["no-such-node"]))

    res = bed.run(go())
    assert res.where == "sd0"
    assert sum(v for _, v in res.output) == _expected(inp)
    assert ft.total_attempts == 1


def test_counters_track_retries_and_failovers(env):
    bed, _inp, job = env
    _always_crashing(bed)
    ft = FaultTolerantInvoker(bed.cluster, timeout=60.0, max_retries=1)

    def go():
        return (yield ft.run(job, replicas=["sd1"]))

    bed.run(go())
    counters = bed.sim.obs.metrics.snapshot()["counters"]
    # 1 retry on each SD target, then sd0 -> sd1 and sd1 -> host failovers
    assert counters["retry.offload.wordcount"] == 2
    assert counters["failover.count"] == 2
    assert counters["failover.host"] == 1


def test_invoker_validates_budgets(env):
    bed, _inp, _job = env
    with pytest.raises(OffloadError):
        FaultTolerantInvoker(bed.cluster, max_retries=-1)
    with pytest.raises(OffloadError):
        FaultTolerantInvoker(bed.cluster, backoff=-0.1)
