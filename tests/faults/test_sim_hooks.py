"""Tests for the simulator-side injection hooks and end-to-end recovery."""

from __future__ import annotations

import pytest

from repro.cluster import Testbed
from repro.config import table1_cluster
from repro.core import DataJob, FaultTolerantInvoker
from repro.errors import DiskError, NFSError, is_retryable
from repro.faults import FaultPlan, FaultRule, standard_plan
from repro.fs.inotify import IN_MODIFY, InotifyManager
from repro.fs.vfs import VFS
from repro.hardware.disk import DiskModel
from repro.sim import Simulator
from repro.units import MB
from repro.workloads import text_input


# -- per-hook unit tests -----------------------------------------------------


def test_disk_read_fail_raises_retryable_disk_error():
    sim = Simulator()
    disk = DiskModel(sim)
    sim.install_faults(
        FaultPlan(rules=(FaultRule("disk.read", action="fail", count=1),), seed=2)
    )

    def proc():
        try:
            yield disk.read(4096)
        except DiskError as exc:
            return exc

    p = sim.spawn(proc())
    sim.run()
    assert isinstance(p.value, DiskError)
    assert is_retryable(p.value)
    assert sim.faults.fired_by_site() == {"disk.read": 1}


def test_disk_write_site_is_separate_from_read():
    sim = Simulator()
    disk = DiskModel(sim)
    sim.install_faults(
        FaultPlan(rules=(FaultRule("disk.write", action="fail", count=1),), seed=2)
    )

    def proc():
        n = yield disk.read(100)  # unaffected
        try:
            yield disk.write(100)
        except DiskError as exc:
            return (n, exc)

    p = sim.spawn(proc())
    sim.run()
    n, exc = p.value
    assert n == 100 and is_retryable(exc)


def test_inotify_drop_loses_one_event_then_recovers():
    sim = Simulator()
    vfs = VFS()
    mgr = InotifyManager(sim, vfs, latency=0.0)
    sim.install_faults(
        FaultPlan(rules=(FaultRule("inotify.deliver", action="drop", count=1),), seed=2)
    )
    vfs.create("/log")
    w = mgr.add_watch("/log", IN_MODIFY)
    vfs.write("/log", data=b"a")  # dropped
    vfs.write("/log", data=b"ab")  # delivered (rule burned out)
    sim.run()
    events = []
    while (item := w.queue.try_get()) is not None:
        events.append(item)
    assert mgr.dropped == 1
    assert len(events) == 1


def test_nfs_call_fail_surfaces_transient_nfs_error():
    bed = Testbed(seed=4)
    inp = text_input("/data/f", MB(10), payload_bytes=2_000, seed=4)
    _sd, _host, sd_path = bed.stage_on_sd("f", inp)
    channel = bed.cluster.channel()
    bed.sim.install_faults(
        FaultPlan(rules=(FaultRule("nfs.call", action="fail", count=1),), seed=4)
    )

    def proc():
        try:
            yield channel.mount.stat(channel.log_dir)
        except NFSError as exc:
            first = exc
        # the next RPC goes through: the fault was transient
        attrs = yield channel.mount.stat(channel.log_dir)
        return first, attrs

    first, attrs = bed.run(proc())
    assert is_retryable(first)
    assert attrs is not None


# -- end-to-end recovery under the standard plan -----------------------------


@pytest.mark.parametrize("app", ["wordcount", "stringmatch"])
def test_standard_plan_preserves_job_output(app):
    def run_once(chaos):
        bed = Testbed(config=table1_cluster(n_sd=2, seed=6), seed=6)
        inp = text_input("/data/f", MB(50), payload_bytes=4_000, seed=6)
        _sd, _host, sd_path = bed.stage_on_sd("f", inp)
        bed.stage(bed.cluster.sd(1), sd_path, inp)
        injector = bed.sim.install_faults(standard_plan(6)) if chaos else None
        job = DataJob(app=app, input_path=sd_path, input_size=MB(50), mode="parallel")
        ft = FaultTolerantInvoker(bed.cluster, timeout=60.0, max_retries=2)

        def go():
            return (yield ft.run(job, replicas=["sd1"]))

        result = bed.run(go())
        return result.output, injector, ft

    baseline, _, _ = run_once(chaos=False)
    output, injector, ft = run_once(chaos=True)
    assert output == baseline  # faults cost time, never answers
    assert injector.injections >= 1
    # bounded: at most (retries+1) per SD target plus the host fallback
    assert ft.total_attempts <= 2 * 3 + 1


def test_standard_plan_injection_is_reproducible():
    def run_once():
        bed = Testbed(config=table1_cluster(n_sd=2, seed=8), seed=8)
        inp = text_input("/data/f", MB(50), payload_bytes=4_000, seed=8)
        _sd, _host, sd_path = bed.stage_on_sd("f", inp)
        bed.stage(bed.cluster.sd(1), sd_path, inp)
        injector = bed.sim.install_faults(standard_plan(8))
        job = DataJob(
            app="wordcount", input_path=sd_path, input_size=MB(50), mode="parallel"
        )
        ft = FaultTolerantInvoker(bed.cluster, timeout=60.0, max_retries=2)

        def go():
            return (yield ft.run(job, replicas=["sd1"]))

        bed.run(go())
        return injector.signatures()

    assert run_once() == run_once()
