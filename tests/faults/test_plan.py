"""Tests for fault plans: rule validation, scoping, standard plans."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faults import (
    FaultPlan,
    FaultRule,
    distributed_chaos_plan,
    standard_engine_plan,
    standard_plan,
)


# -- rule validation ---------------------------------------------------------


def test_rule_defaults_are_valid():
    rule = FaultRule("disk.read")
    assert rule.action == "fail"
    assert rule.probability == 1.0
    assert rule.count is None


@pytest.mark.parametrize(
    "kwargs",
    [
        {"site": ""},
        {"site": "x", "action": "explode"},
        {"site": "x", "probability": -0.1},
        {"site": "x", "probability": 1.5},
        {"site": "x", "count": 0},
        {"site": "x", "after": -1},
        {"site": "x", "delay": -0.5},
        {"site": "x", "window": (5.0, 1.0)},
    ],
)
def test_rule_rejects_bad_fields(kwargs):
    with pytest.raises(ConfigError):
        FaultRule(**kwargs)


# -- scoping -----------------------------------------------------------------


def test_site_matching_exact_and_glob():
    assert FaultRule("disk.read").matches_site("disk.read")
    assert not FaultRule("disk.read").matches_site("disk.write")
    assert FaultRule("disk.*").matches_site("disk.write")
    assert FaultRule("*").matches_site("anything.at.all")
    assert not FaultRule("nfs.*").matches_site("net.deliver")


def test_ctx_matching_is_equality_on_where():
    rule = FaultRule("pool.worker", where={"index": 3})
    assert rule.matches_ctx({"index": 3, "attempt": 0})
    assert not rule.matches_ctx({"index": 4})
    assert not rule.matches_ctx({})  # missing key != constraint value
    assert FaultRule("pool.worker").matches_ctx({})  # no where: always


# -- plans -------------------------------------------------------------------


def test_plan_iterates_and_reports_sites():
    plan = FaultPlan(
        rules=(
            FaultRule("a.x"),
            FaultRule("a.x", action="drop"),
            FaultRule("b.y"),
        ),
        seed=9,
    )
    assert len(plan) == 3
    assert [r.site for r in plan] == ["a.x", "a.x", "b.y"]
    assert plan.sites() == ["a.x", "b.y"]


@pytest.mark.parametrize(
    "factory", [standard_plan, standard_engine_plan, distributed_chaos_plan]
)
def test_standard_plans_are_finite(factory):
    plan = factory(seed=3)
    assert len(plan) > 0
    assert plan.seed == 3
    # the chaos gate relies on every rule burning out: all counts finite
    assert all(rule.count is not None for rule in plan)


def test_distributed_plan_fits_in_the_transfer_retry_budget():
    # fail + drop + delay on consecutive exchange events: exactly what
    # one transfer's bounded in-place retry (2 retries = 3 attempts,
    # the engine default) absorbs without a whole-job restart
    plan = distributed_chaos_plan()
    assert [r.site for r in plan] == ["shuffle.exchange"] * 3
    assert [r.action for r in plan] == ["fail", "drop", "delay"]
    assert [r.after for r in plan] == [0, 1, 2]
    assert sum(1 for r in plan if r.action in ("fail", "drop")) <= 2
