"""Tests for host-side smartFAM reliability: retry, deadline, idempotency."""

from __future__ import annotations

import pytest

from repro.cluster import Testbed
from repro.errors import SmartFAMError
from repro.faults import FaultPlan, FaultRule
from repro.units import MB
from repro.workloads import text_input


@pytest.fixture()
def env():
    bed = Testbed(seed=9)
    inp = text_input("/data/f", MB(50), payload_bytes=4_000, seed=9)
    _sd, _host, sd_path = bed.stage_on_sd("f", inp)
    params = {"input_path": sd_path, "input_size": MB(50), "mode": "parallel"}
    return bed, inp, params


def _total(output):
    return sum(v for _, v in output)


def _daemon(bed):
    return bed.cluster.sd_daemons[bed.sd.name]


def test_injected_module_crash_is_retried_with_fresh_seq(env):
    bed, inp, params = env
    bed.sim.install_faults(
        FaultPlan(rules=(FaultRule("fam.module", action="fail", count=1),), seed=9)
    )
    channel = bed.cluster.channel()

    def proc():
        return (yield channel.invoke_reliable("wordcount", params, timeout=60.0))

    result = bed.run(proc())
    assert _total(result.output) == len(inp.payload_bytes.split())
    assert channel.retries == 1
    assert _daemon(bed).invocations == 2  # crashed run + successful rerun


def test_dropped_result_times_out_and_reinvokes_same_seq(env):
    bed, inp, params = env
    bed.sim.install_faults(
        FaultPlan(rules=(FaultRule("fam.result", action="drop", count=1),), seed=9)
    )
    channel = bed.cluster.channel()

    def proc():
        return (yield channel.invoke_reliable("wordcount", params, timeout=30.0))

    result = bed.run(proc())
    assert _total(result.output) == len(inp.payload_bytes.split())
    assert channel.retries == 1
    # the module genuinely ran twice: its first result record was lost
    assert _daemon(bed).invocations == 2


def test_reinvoking_a_completed_seq_consumes_the_persisted_result(env):
    # idempotency core: a RESULT already in the log answers a re-invoke
    # without executing the module again (the late-result deadline case)
    bed, inp, params = env
    channel = bed.cluster.channel()
    seq = 10_000_000  # far from the global seq counter

    def proc():
        first = yield bed.sim.spawn(channel._invoke("wordcount", params, seq=seq))
        ran_after_first = _daemon(bed).invocations
        again = yield bed.sim.spawn(channel._invoke("wordcount", params, seq=seq))
        return first, again, ran_after_first

    first, again, ran_after_first = bed.run(proc())
    assert first.output == again.output
    assert ran_after_first == 1
    assert _daemon(bed).invocations == 1  # the second call executed nothing
    assert channel.calls == 2


def test_permanent_module_failure_is_not_retried(env):
    bed, _inp, _params = env
    channel = bed.cluster.channel()

    def proc():
        try:
            yield channel.invoke_reliable(
                "wordcount",
                {"input_path": "/export/data/ghost", "mode": "parallel"},
                timeout=60.0,
                max_retries=3,
            )
        except Exception as exc:
            return exc

    exc = bed.run(proc())
    assert exc is not None
    assert channel.retries == 0  # fail fast: no retry budget spent
    assert _daemon(bed).invocations == 1


def test_retry_budget_exhaustion_raises_the_last_error(env):
    bed, _inp, params = env
    bed.sim.install_faults(
        FaultPlan(rules=(FaultRule("fam.module", action="fail", count=10),), seed=9)
    )
    channel = bed.cluster.channel()

    def proc():
        try:
            yield channel.invoke_reliable(
                "wordcount", params, timeout=60.0, max_retries=1
            )
        except SmartFAMError as exc:
            return exc

    exc = bed.run(proc())
    assert isinstance(exc, SmartFAMError)
    assert channel.retries == 1  # budget spent, then surfaced


def test_negative_retry_budget_rejected(env):
    bed, _inp, params = env
    with pytest.raises(SmartFAMError):
        bed.cluster.channel().invoke_reliable("wordcount", params, max_retries=-1)


def test_retry_counters_reach_the_metrics_registry(env):
    bed, _inp, params = env
    bed.sim.install_faults(
        FaultPlan(rules=(FaultRule("fam.module", action="fail", count=1),), seed=9)
    )
    channel = bed.cluster.channel()

    def proc():
        return (yield channel.invoke_reliable("wordcount", params, timeout=60.0))

    bed.run(proc())
    counters = bed.sim.obs.metrics.snapshot()["counters"]
    assert counters["retry.count"] >= 1
    assert counters["retry.smartfam.wordcount"] == 1
    assert counters["fault.injected.fam.module"] == 1
