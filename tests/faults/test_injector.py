"""Tests for the fault injector: determinism, scoping knobs, corruption."""

from __future__ import annotations

from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.obs import Observability


def _inj(*rules, seed=0, clock=None, obs=None):
    return FaultInjector(FaultPlan(rules=tuple(rules), seed=seed), clock=clock, obs=obs)


# -- basic decisions ---------------------------------------------------------


def test_unmatched_site_returns_none():
    inj = _inj(FaultRule("disk.read"))
    assert inj.check("nfs.call") is None
    assert inj.injections == 0


def test_count_burns_out():
    inj = _inj(FaultRule("disk.read", count=2))
    assert inj.check("disk.read") is not None
    assert inj.check("disk.read") is not None
    assert inj.check("disk.read") is None
    assert inj.fired_by_site() == {"disk.read": 2}


def test_after_skips_leading_events():
    inj = _inj(FaultRule("disk.read", after=2, count=1))
    assert inj.check("disk.read") is None
    assert inj.check("disk.read") is None
    assert inj.check("disk.read") is not None


def test_where_mismatch_does_not_consume_after_budget():
    # non-matching ctx is invisible to the rule: `after` counts matching
    # events only, so a rule can target "the 2nd event on task 1" exactly
    inj = _inj(FaultRule("pool.worker", where={"index": 1}, after=1, count=1))
    for _ in range(5):
        assert inj.check("pool.worker", index=0) is None
    assert inj.check("pool.worker", index=1) is None  # 1st matching: skipped
    assert inj.check("pool.worker", index=1) is not None


def test_stacked_rules_form_fallback_chain():
    inj = _inj(
        FaultRule("spill.write", action="fail", count=1),
        FaultRule("spill.write", action="corrupt", count=1),
    )
    assert inj.check("spill.write").action == "fail"
    assert inj.check("spill.write").action == "corrupt"
    assert inj.check("spill.write") is None


def test_window_gates_on_clock():
    now = [0.0]
    inj = _inj(
        FaultRule("disk.read", window=(5.0, 10.0)), clock=lambda: now[0]
    )
    assert inj.check("disk.read") is None
    now[0] = 5.0
    assert inj.check("disk.read") is not None
    now[0] = 10.0  # half-open: t1 excluded
    assert inj.check("disk.read") is None


def test_window_rule_dormant_without_clock():
    inj = _inj(FaultRule("disk.read", window=(0.0, 1e9)))
    assert inj.check("disk.read") is None


# -- determinism -------------------------------------------------------------


def _drive(seed):
    inj = _inj(FaultRule("net.deliver", probability=0.5), seed=seed)
    pattern = [inj.check("net.deliver", msg=i) is not None for i in range(200)]
    return inj, pattern


def test_probability_stream_is_deterministic_per_seed():
    inj_a, pat_a = _drive(seed=11)
    inj_b, pat_b = _drive(seed=11)
    assert pat_a == pat_b
    assert inj_a.signatures() == inj_b.signatures()
    assert 0 < sum(pat_a) < 200  # actually probabilistic, not all-or-nothing


def test_different_seed_changes_the_pattern():
    _, pat_a = _drive(seed=11)
    _, pat_b = _drive(seed=12)
    assert pat_a != pat_b


def test_signature_carries_ordered_ctx():
    inj = _inj(FaultRule("fam.module", count=1))
    decision = inj.check("fam.module", module="wordcount", seq=7)
    assert decision.signature() == (
        0, "fam.module", "fail", 0, (("module", "wordcount"), ("seq", 7)),
    )


def test_non_primitive_ctx_values_are_reprd():
    inj = _inj(FaultRule("x", count=1))
    decision = inj.check("x", obj=[1, 2])
    assert decision.ctx == (("obj", "[1, 2]"),)


# -- corruption --------------------------------------------------------------


def test_corrupt_bytes_flips_exactly_one_byte_deterministically():
    blob = bytes(range(64))
    outs = []
    for _ in range(2):
        inj = _inj(FaultRule("spill.write", action="corrupt", count=1), seed=4)
        decision = inj.check("spill.write")
        outs.append(inj.corrupt_bytes(blob, decision))
    assert outs[0] == outs[1]  # same seed, same flip position
    assert outs[0] != blob
    assert sum(a != b for a, b in zip(outs[0], blob)) == 1
    assert len(outs[0]) == len(blob)


def test_corrupt_bytes_empty_blob_passthrough():
    inj = _inj(FaultRule("spill.write", action="corrupt", count=1))
    decision = inj.check("spill.write")
    assert inj.corrupt_bytes(b"", decision) == b""


# -- observability -----------------------------------------------------------


def test_injections_feed_fault_counters():
    obs = Observability(enabled=False)  # counters are always-on
    inj = _inj(FaultRule("disk.read", count=2), obs=obs)
    inj.check("disk.read")
    inj.check("disk.read")
    inj.check("disk.read")  # exhausted: no counter increment
    counters = obs.metrics.snapshot()["counters"]
    assert counters["fault.injected"] == 2
    assert counters["fault.injected.disk.read"] == 2
