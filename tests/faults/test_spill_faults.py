"""Tests for spill integrity: crc framing, corruption recovery, leak guard."""

from __future__ import annotations

import glob
import os
import signal
import subprocess
import sys
from collections import Counter

import pytest

from repro.errors import (
    FaultInjectedError,
    SpillCorruptionError,
    WorkloadError,
    is_retryable,
)
from repro.exec.chunks import chunk_file
from repro.exec.outofcore import (
    _BLOCK_HEADER,
    iter_run,
    live_spill_dirs,
    run_out_of_core,
    write_run,
)
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.obs import Observability
from repro.phoenix.sort import decorate_sorted

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def _inj(*rules, seed=0, obs=None):
    return FaultInjector(FaultPlan(rules=tuple(rules), seed=seed), obs=obs)


def _entries(n=300):
    return decorate_sorted({b"key%04d" % i: [i] for i in range(n)})


# -- crc framing -------------------------------------------------------------


def test_truncated_run_raises_spill_corruption(tmp_path):
    path = str(tmp_path / "run")
    write_run(path, _entries(), block_values=32)
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(size - 3)
    with pytest.raises(SpillCorruptionError):
        list(iter_run(path))


def test_on_disk_bitflip_raises_after_reread(tmp_path):
    path = str(tmp_path / "run")
    write_run(path, _entries(), block_values=32)
    with open(path, "r+b") as f:
        f.seek(_BLOCK_HEADER.size + 5)  # inside the first block's payload
        byte = f.read(1)
        f.seek(-1, os.SEEK_CUR)
        f.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(SpillCorruptionError) as err:
        list(iter_run(path, run_index=4))
    assert err.value.block_index == 0
    assert err.value.run_index == 4
    assert is_retryable(err.value)


# -- injected faults ---------------------------------------------------------


def test_injected_write_corruption_is_durable(tmp_path):
    # the byte flips *after* the crc is computed: on-disk damage that the
    # reader's single re-read cannot mask
    path = str(tmp_path / "run")
    entries = _entries()
    inj = _inj(FaultRule("spill.write", action="corrupt", count=1, where={"run": 0}))
    write_run(path, entries, block_values=32, faults=inj, run_index=0)
    assert inj.injections == 1
    with pytest.raises(SpillCorruptionError):
        list(iter_run(path, run_index=0))


def test_injected_read_corruption_recovers_via_reread(tmp_path):
    # the byte flips in memory before the crc check; the on-disk copy is
    # intact, so the one re-read recovers silently
    path = str(tmp_path / "run")
    entries = _entries()
    write_run(path, entries, block_values=32)
    inj = _inj(FaultRule("spill.read", action="corrupt", count=1, where={"run": 0}))
    assert list(iter_run(path, faults=inj, run_index=0)) == entries
    assert inj.injections == 1


def test_injected_write_failure_is_retryable(tmp_path):
    path = str(tmp_path / "run")
    inj = _inj(FaultRule("spill.write", action="fail", count=1))
    with pytest.raises(FaultInjectedError) as err:
        write_run(path, _entries(), faults=inj, run_index=0)
    assert is_retryable(err.value)
    # nothing was written before the failure surfaced
    assert not os.path.exists(path)


def test_injected_read_failure_is_retryable(tmp_path):
    path = str(tmp_path / "run")
    write_run(path, _entries())
    inj = _inj(FaultRule("spill.read", action="fail", count=1))
    with pytest.raises(FaultInjectedError) as err:
        list(iter_run(path, faults=inj, run_index=1))
    assert is_retryable(err.value)


# -- the out-of-core driver's recovery ---------------------------------------


def _make_input(tmp_path, n_words=4_000):
    words = b" ".join(b"w%03d" % (i % 97) for i in range(n_words))
    path = str(tmp_path / "input.txt")
    with open(path, "wb") as f:
        f.write(words)
    return path


def _count_fragment(fragment):
    counts: Counter = Counter()
    for chunk in fragment:
        with open(chunk.path, "rb") as f:
            f.seek(chunk.offset)
            counts.update(f.read(chunk.length).split())
    return {k: [v] for k, v in counts.items()}


def _run_ooc(path, tmp_path, faults=None, obs=None, calls=None):
    chunks = chunk_file(path, 1_024, b" \t\n\r")

    def map_fragment(fragment):
        if calls is not None:
            calls.append(fragment[0].offset)
        return _count_fragment(fragment)

    return run_out_of_core(
        chunks, map_fragment, None, None, False, {}, 4_096,
        obs or Observability(enabled=False), str(tmp_path), faults=faults,
    )


def test_durable_corruption_triggers_fragment_recompute(tmp_path):
    path = _make_input(tmp_path)
    baseline, n_fragments, _ = _run_ooc(path, tmp_path)
    assert n_fragments > 1

    obs = Observability(enabled=False)
    calls: list = []
    inj = _inj(
        FaultRule("spill.write", action="corrupt", count=1, where={"run": 0}),
        obs=obs,
    )
    output, n2, _ = _run_ooc(path, tmp_path, faults=inj, obs=obs, calls=calls)
    assert output == baseline  # corruption cost time, not answers
    assert n2 == n_fragments
    assert len(calls) == n_fragments + 1  # fragment 0 was mapped twice
    counters = obs.metrics.snapshot()["counters"]
    assert counters["localmr.recompute"] == 1
    assert counters["retry.spill_merge"] == 1


def test_transient_read_failure_restarts_the_merge(tmp_path):
    path = _make_input(tmp_path)
    baseline, _, _ = _run_ooc(path, tmp_path)
    calls: list = []
    inj = _inj(FaultRule("spill.read", action="fail", count=1, where={"run": 1}))
    output, _, _ = _run_ooc(path, tmp_path, faults=inj, calls=calls)
    assert output == baseline
    # merge restarted but no fragment was recomputed: spills were intact
    assert len(calls) == len(set(calls))


def test_retry_budget_exhaustion_propagates(tmp_path):
    path = _make_input(tmp_path)
    inj = _inj(FaultRule("spill.write", action="fail", count=50))
    with pytest.raises(FaultInjectedError):
        _run_ooc(path, tmp_path, faults=inj)
    assert not glob.glob(str(tmp_path / "localmr-spill-*"))  # no leak on failure


# -- leak guard --------------------------------------------------------------


def test_failed_run_leaves_no_spill_dirs(tmp_path):
    path = _make_input(tmp_path)
    chunks = chunk_file(path, 1_024, b" \t\n\r")

    def exploding(fragment):
        if fragment[0].offset > 0:
            raise WorkloadError("boom after the first spill")
        return _count_fragment(fragment)

    with pytest.raises(WorkloadError):
        run_out_of_core(
            chunks, exploding, None, None, False, {}, 4_096,
            Observability(enabled=False), str(tmp_path),
        )
    assert not glob.glob(str(tmp_path / "localmr-spill-*"))
    assert live_spill_dirs() == []


def test_sigterm_cleanup_removes_spill_dirs(tmp_path):
    # atexit never runs on a fatal signal: install_signal_cleanup must
    # remove live spill dirs, then let the process die with SIGTERM status
    input_path = _make_input(tmp_path)
    spill_root = tmp_path / "spills"
    spill_root.mkdir()
    script = """
import os, signal, sys
from collections import Counter
sys.path.insert(0, sys.argv[3])
from repro.exec.chunks import chunk_file
from repro.exec.outofcore import install_signal_cleanup, run_out_of_core
from repro.obs import Observability

assert install_signal_cleanup() == [signal.SIGTERM]

def map_fragment(fragment):
    if fragment[0].offset > 0:
        # the first fragment's spill is on disk; now die mid-job
        os.kill(os.getpid(), signal.SIGTERM)
    counts = Counter()
    for chunk in fragment:
        with open(chunk.path, "rb") as f:
            f.seek(chunk.offset)
            counts.update(f.read(chunk.length).split())
    return {k: [v] for k, v in counts.items()}

chunks = chunk_file(sys.argv[1], 1024, b" ")
run_out_of_core(chunks, map_fragment, None, None, False, {}, 4096,
                Observability(enabled=False), sys.argv[2])
"""
    proc = subprocess.run(
        [sys.executable, "-c", script, input_path, str(spill_root), SRC],
        capture_output=True,
        timeout=60,
    )
    assert proc.returncode == -signal.SIGTERM, proc.stderr.decode()
    assert list(spill_root.iterdir()) == []
