"""Unit tests for the Node abstraction and os_sched helpers."""

from __future__ import annotations

import pytest

from repro.config import NetworkConfig, table1_cluster
from repro.errors import NetworkError, SimulationError
from repro.net import Fabric
from repro.node import Node, TaskHandle, spawn_daemon
from repro.node.os_sched import spawn_daemon as spawn_daemon2
from repro.sim import Simulator
from repro.units import GiB, MB


@pytest.fixture()
def pair():
    cfg = table1_cluster()
    sim = Simulator(seed=1)
    fab = Fabric(sim, NetworkConfig())
    host = Node(sim, cfg.node("host"), fab)
    sd = Node(sim, cfg.node("sd0"), fab)
    return sim, host, sd


def test_node_composition(pair):
    sim, host, sd = pair
    assert host.cpu.cores == 4
    assert sd.cpu.cores == 2
    assert host.memory.capacity == GiB(2)
    assert host.fs is not None and host.inotify is not None


def test_memory_pressure_slows_cpu(pair):
    """The thrash wiring: allocation on the node slows its CPU."""
    sim, host, sd = pair
    sd.memory.alloc(int(GiB(2) * 1.5), owner="hog")
    assert sd.cpu.slowdown > 1.0
    done = {}

    def task():
        yield sd.cpu.submit(2.0e9, "t")
        done["t"] = sim.now

    sim.spawn(task())
    sim.run()
    assert done["t"] > 1.0  # would be 1.0s at full speed


def test_service_demux_routing(pair):
    sim, host, sd = pair
    q_a = sd.open_port("svc-a")
    q_b = sd.open_port("svc-b")
    got = {}

    def consumer(q, name):
        msg = yield q.get()
        got[name] = msg.payload["body"]

    sim.spawn(consumer(q_a, "a"))
    sim.spawn(consumer(q_b, "b"))

    def producer():
        yield host.send(sd.name, "svc-b", {"x": 2}, nbytes=100)
        yield host.send(sd.name, "svc-a", {"x": 1}, nbytes=100)

    sim.spawn(producer())
    sim.run(until=2.0)
    assert got == {"a": {"x": 1}, "b": {"x": 2}}


def test_send_negative_bytes_rejected(pair):
    sim, host, sd = pair
    with pytest.raises(NetworkError):
        host.send(sd.name, "p", None, nbytes=-1)


def test_default_port_for_untagged_messages(pair):
    sim, host, sd = pair
    from repro.net.message import Message

    q = sd.open_port("default")

    def producer():
        yield host.fabric.send(Message(src="host", dst="sd0", nbytes=10, payload="raw"))

    def consumer():
        msg = yield q.get()
        return msg.payload

    sim.spawn(producer())
    p = sim.spawn(consumer())
    sim.run(until=p)
    assert p.value == "raw"


def test_mount_longest_prefix_wins(pair):
    sim, host, sd = pair

    class FakeMount:
        pass

    outer, inner = FakeMount(), FakeMount()
    host.add_mount("/mnt", outer)
    host.add_mount("/mnt/deep", inner)
    fs, rel = host.resolve_fs("/mnt/deep/file")
    assert fs is inner and rel == "/file"
    fs2, rel2 = host.resolve_fs("/mnt/other")
    assert fs2 is outer and rel2 == "/other"
    fs3, rel3 = host.resolve_fs("/elsewhere")
    assert fs3 is host.fs


def test_run_ops_is_cpu_submit(pair):
    sim, host, sd = pair

    def t():
        yield host.run_ops(2.66e9, "unit")
        return sim.now

    p = sim.spawn(t())
    sim.run(until=p)
    assert p.value == pytest.approx(1.0)


# ------------------------------------------------------------------ os_sched


def test_task_handle_join_and_cancel():
    sim = Simulator()

    def body():
        yield sim.timeout(5)
        return "done"

    h = TaskHandle(sim.spawn(body()))
    assert not h.done

    def waiter():
        res = yield h.join()
        return res

    p = sim.spawn(waiter())
    sim.run(until=p)
    assert p.value == "done"
    assert h.done


def test_task_handle_cancel_interrupts():
    sim = Simulator()
    state = {}

    def body():
        try:
            yield sim.timeout(100)
        except Exception as exc:
            state["cancelled"] = str(exc)

    h = TaskHandle(sim.spawn(body()))

    def canceller():
        yield sim.timeout(1)
        h.cancel("stop")

    sim.spawn(canceller())
    sim.run()
    assert "stop" in state["cancelled"]


def test_daemon_restarts_on_crash():
    sim = Simulator()
    attempts = []

    def flaky():
        attempts.append(sim.now)
        yield sim.timeout(1)
        if len(attempts) < 3:
            raise RuntimeError("crash")
        return "stable"

    sup = spawn_daemon(sim, flaky, name="flaky")
    sim.run(until=sup)
    assert sup.value == "stable"
    assert len(attempts) == 3


def test_daemon_gives_up_after_max_restarts():
    sim = Simulator()

    def always_crashes():
        yield sim.timeout(0.1)
        raise RuntimeError("hopeless")

    sup = spawn_daemon(sim, always_crashes, name="bad", max_restarts=3)
    sim.run()
    assert not sup.ok
    assert isinstance(sup.value, SimulationError)


def test_daemon_no_restart_propagates():
    sim = Simulator()

    def crashes():
        yield sim.timeout(0.1)
        raise ValueError("once")

    sup = spawn_daemon(sim, crashes, name="once", restart=False)
    sim.run()
    assert not sup.ok
    assert isinstance(sup.value, ValueError)
