"""Shared fixtures for the McSD reproduction test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.config import NetworkConfig, table1_cluster

# Property tests run derandomized so the recorded green runs are exactly
# reproducible; flip HYPOTHESIS_PROFILE=explore locally to hunt new cases.
settings.register_profile("ci", derandomize=True)
settings.register_profile("explore", derandomize=False)
import os as _os

settings.load_profile(_os.environ.get("HYPOTHESIS_PROFILE", "ci"))
from repro.net import Fabric
from repro.node import Node
from repro.sim import Simulator


@pytest.fixture()
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=42)


@pytest.fixture()
def fabric(sim: Simulator) -> Fabric:
    """A fabric with the paper's Gigabit network parameters."""
    return Fabric(sim, NetworkConfig())


@pytest.fixture()
def cluster_cfg():
    """The Table I 5-node cluster configuration."""
    return table1_cluster()


@pytest.fixture()
def host_and_sd(sim: Simulator, fabric: Fabric, cluster_cfg):
    """A (host, sd) node pair wired to one switch."""
    host = Node(sim, cluster_cfg.node("host"), fabric)
    sd = Node(sim, cluster_cfg.node("sd0"), fabric)
    return host, sd


def run_proc(sim: Simulator, gen):
    """Drive a process generator to completion and return its value."""
    proc = sim.spawn(gen)
    sim.run(until=proc)
    return proc.value
