"""Unit tests for the analysis metrics and report rendering."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import Series, geometric_mean, speedup, speedup_series
from repro.analysis.report import banner, fmt_cell, render_series_table, render_table


def test_speedup_basic():
    assert speedup(10.0, 5.0) == 2.0
    assert speedup(None, 5.0) is None
    assert speedup(10.0, None) is None
    with pytest.raises(ValueError):
        speedup(10.0, 0.0)


def test_series_validation_and_accessors():
    s = Series("x", [1, 2, 3], [1.0, None, 3.0])
    assert s.defined() == [(1, 1.0), (3, 3.0)]
    assert s.max_y == 3.0
    assert s.mean() == 2.0
    with pytest.raises(ValueError):
        Series("bad", [1], [1.0, 2.0])


def test_series_monotonicity():
    assert Series("m", [1, 2, 3], [1.0, 2.0, 2.0]).is_monotone_increasing()
    assert not Series("m", [1, 2, 3], [2.0, 1.0, 3.0]).is_monotone_increasing()
    assert Series("m", [1, 2, 3], [1.0, None, 2.0]).is_monotone_increasing()


def test_linearity_ratio_linear():
    s = Series("lin", [1, 2, 4], [10.0, 20.0, 40.0])
    assert s.linearity_ratio() == pytest.approx(1.0)


def test_linearity_ratio_superlinear():
    s = Series("sup", [1, 2, 4], [10.0, 30.0, 120.0])
    assert s.linearity_ratio() == pytest.approx(3.0)


def test_linearity_ratio_undefined_cases():
    assert Series("e", [1], [5.0]).linearity_ratio() is None
    assert Series("n", [1, 2], [None, None]).linearity_ratio() is None


def test_speedup_series_none_propagation():
    s = speedup_series("sp", [1, 2], [10.0, None], [5.0, 5.0])
    assert s.ys == [2.0, None]


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([3.0]) == pytest.approx(3.0)


def test_fmt_cell():
    assert fmt_cell(None) == "n/s"
    assert fmt_cell(2.345) == "2.35"
    assert fmt_cell(23.46) == "23.5"
    assert fmt_cell(234.7) == "235"
    assert fmt_cell("abc") == "abc"
    assert fmt_cell(7) == "7"


def test_render_table_alignment():
    out = render_table(["a", "bbbb"], [[1, 2.5], [10, None]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "n/s" in lines[-1]
    # columns align: header and rows have equal width
    assert len(lines[1]) == len(lines[3])


def test_render_series_table():
    s1 = Series("one", [1, 2], [1.0, 2.0])
    s2 = Series("two", [1, 2], [3.0, None])
    out = render_series_table([s1, s2], ["500M", "1G"])
    assert "500M" in out and "one" in out and "n/s" in out


def test_banner():
    b = banner("hello", width=10)
    assert "hello" in b
    assert "=" * 10 in b
