"""End-to-end tests for the cluster control plane (ClusterScheduler)."""

from __future__ import annotations

import pytest

from repro.cluster import Testbed
from repro.config import table1_cluster
from repro.core import DataJob
from repro.core.loadbalance import AdaptivePolicy, AlwaysOffloadPolicy
from repro.errors import AdmissionError
from repro.sched import ClusterScheduler
from repro.units import MB
from repro.workloads import ArrivalProcess, text_input


def make_bed(n_sd: int = 2, seed: int = 7):
    bed = Testbed(config=table1_cluster(n_sd=n_sd, seed=seed), seed=seed)
    inp = text_input("/data/s", MB(20), payload_bytes=6_000, seed=seed)
    _view, sd_path = bed.stage_replicated("s", inp)
    return bed, inp, sd_path


def make_job(sd_path: str, **kw) -> DataJob:
    return DataJob(
        app="wordcount", input_path=sd_path, input_size=MB(20),
        mode="parallel", **kw,
    )


def expected_total(inp) -> int:
    return len(inp.payload_bytes.split())


def test_open_loop_stream_completes():
    bed, inp, sd_path = make_bed()
    sched = ClusterScheduler(
        bed.cluster, policy=AlwaysOffloadPolicy(), per_node_limit=1, cache=None
    )
    stream = ArrivalProcess.poisson(
        lambda i: make_job(sd_path), rate=2.0, n=6, seed=3
    )
    report = bed.run(stream.drive(sched))
    assert len(report.completed) == 6
    assert not report.failed and not report.rejected
    for _, _, res in report.completed:
        assert sum(v for _, v in res.output) == expected_total(inp)
    st = sched.stats()
    assert st["completed"] == 6 and st["rejected"] == 0 and st["queued"] == 0
    assert report.throughput > 0


def test_admission_backpressure_sheds_burst():
    """A burst beyond max_queue is rejected, never silently queued."""
    bed, _, sd_path = make_bed(n_sd=1)
    sched = ClusterScheduler(
        bed.cluster, policy=AlwaysOffloadPolicy(),
        per_node_limit=1, max_queue=2, cache=None,
    )
    stream = ArrivalProcess.from_trace(
        [(0.0, make_job(sd_path)) for _ in range(5)]
    )
    report = bed.run(stream.drive(sched))
    assert len(report.rejected) == 3
    assert len(report.completed) == 2
    assert sched.rejected == 3
    assert all(isinstance(e, AdmissionError) for _, _, e in report.rejected)


def test_replicated_input_spreads_across_sd_nodes():
    bed, _, sd_path = make_bed(n_sd=2)
    sched = ClusterScheduler(
        bed.cluster, policy=AlwaysOffloadPolicy(),
        per_node_limit=1, max_queue=16, cache=None,
    )
    stream = ArrivalProcess.from_trace(
        [(0.0, make_job(sd_path)) for _ in range(6)]
    )
    report = bed.run(stream.drive(sched))
    assert len(report.completed) == 6
    where = {n: 0 for n in ("sd0", "sd1")}
    for rec in sched.completed:
        where[rec.where] += 1
    assert where == {"sd0": 3, "sd1": 3}


def test_per_node_limit_never_exceeded():
    """Regression: a one-instant burst must not overshoot node capacity.

    The pump dispatches synchronously but the engine only registers a job
    in ``inflight`` when the runner process starts — the scheduler's
    pending bridge count is what keeps the capacity check honest.
    """
    bed, _, sd_path = make_bed(n_sd=2)
    sched = ClusterScheduler(
        bed.cluster, policy=AlwaysOffloadPolicy(),
        per_node_limit=1, max_queue=16, cache=None,
    )
    peaks: dict[str, int] = {}

    def monitor():
        while True:
            for node, n in sched.engine.inflight.items():
                peaks[node] = max(peaks.get(node, 0), n)
            yield bed.sim.timeout(0.01)

    bed.sim.spawn(monitor(), name="inflight-monitor")
    stream = ArrivalProcess.from_trace(
        [(0.0, make_job(sd_path)) for _ in range(8)]
    )
    report = bed.run(stream.drive(sched))
    assert len(report.completed) == 8
    assert peaks and all(n <= 1 for n in peaks.values()), peaks


def test_dead_node_quarantined_and_jobs_requeued():
    bed, inp, sd_path = make_bed(n_sd=2)
    bed.cluster.sd_daemons["sd0"].kill()
    sched = ClusterScheduler(
        bed.cluster, policy=AlwaysOffloadPolicy(),
        per_node_limit=1, attempt_timeout=10.0, max_retries=2,
        max_queue=16, cache=None,
    )
    stream = ArrivalProcess.from_trace(
        [(0.0, make_job(sd_path)) for _ in range(4)]
    )
    report = bed.run(stream.drive(sched))
    assert len(report.completed) == 4 and not report.failed
    assert "sd0" in sched.unhealthy
    assert all(rec.where != "sd0" for rec in sched.completed)
    # whatever was first sent to the dead node came back and retried
    assert any(rec.attempts > 1 for rec in sched.completed)
    for _, _, res in report.completed:
        assert sum(v for _, v in res.output) == expected_total(inp)


def test_mark_healthy_readmits_a_revived_node():
    bed, _, sd_path = make_bed(n_sd=2)
    daemon = bed.cluster.sd_daemons["sd0"]
    daemon.kill()
    sched = ClusterScheduler(
        bed.cluster, policy=AlwaysOffloadPolicy(),
        per_node_limit=1, attempt_timeout=10.0, max_queue=16, cache=None,
    )
    first = ArrivalProcess.from_trace([(0.0, make_job(sd_path))])
    bed.run(first.drive(sched))
    assert "sd0" in sched.unhealthy
    daemon.revive()
    sched.mark_healthy("sd0")
    assert "sd0" not in sched.unhealthy
    again = ArrivalProcess.from_trace(
        [(bed.sim.now, make_job(sd_path)) for _ in range(2)]
    )
    report = bed.run(again.drive(sched))
    assert len(report.completed) == 2
    assert any(rec.where == "sd0" for rec in sched.completed[-2:])


def test_admitted_job_completes_on_host_when_all_sds_dead():
    """The completion guarantee: retries exhausted => pinned to the host."""
    bed, inp, sd_path = make_bed(n_sd=1)
    bed.cluster.sd_daemons["sd0"].kill()
    sched = ClusterScheduler(
        bed.cluster, policy=AlwaysOffloadPolicy(),
        attempt_timeout=5.0, max_retries=1, cache=None,
    )
    stream = ArrivalProcess.from_trace([(0.0, make_job(sd_path))])
    report = bed.run(stream.drive(sched))
    assert len(report.completed) == 1 and not report.failed
    rec = sched.completed[-1]
    assert rec.where == "host" and not rec.offloaded
    _, _, res = report.completed[0]
    assert sum(v for _, v in res.output) == expected_total(inp)


def test_cache_hit_answers_without_queueing():
    bed, _, sd_path = make_bed(n_sd=1)
    sched = ClusterScheduler(
        bed.cluster, policy=AlwaysOffloadPolicy(), cache=True
    )

    def go(job):
        return (yield sched.submit(job))

    r1 = bed.run(go(make_job(sd_path)))
    r2 = bed.run(go(make_job(sd_path)))
    assert sched.cache.hits == 1 and sched.cache.misses == 1
    rec = sched.completed[-1]
    assert rec.from_cache and rec.where == "cache" and rec.attempts == 0
    assert r2.output == r1.output
    assert r2.elapsed == 0.0
    st = sched.stats()
    assert st["cache"]["hits"] == 1 and st["cache"]["entries"] == 1


def test_latency_accounting_on_completed_records():
    bed, _, sd_path = make_bed(n_sd=1)
    sched = ClusterScheduler(
        bed.cluster, policy=AlwaysOffloadPolicy(),
        per_node_limit=1, max_queue=8, cache=None,
    )
    stream = ArrivalProcess.from_trace(
        [(0.0, make_job(sd_path)) for _ in range(3)]
    )
    bed.run(stream.drive(sched))
    # serial node: each later job waited at least one service time
    waits = sorted(rec.queue_wait for rec in sched.completed)
    assert waits[0] == pytest.approx(0.0, abs=1e-9)
    assert waits[-1] > waits[1] > 0
    for rec in sched.completed:
        assert rec.total == pytest.approx(rec.queue_wait + rec.service)
        assert rec.service > 0


def test_default_policy_is_adaptive_with_bound_depths():
    bed, _, _ = make_bed(n_sd=1)
    sched = ClusterScheduler(bed.cluster)
    assert isinstance(sched.policy, AdaptivePolicy)
    assert sched.policy.depth_source == sched.queue.depths
