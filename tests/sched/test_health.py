"""Phi-accrual failure detection and the node recovery state machine."""

from __future__ import annotations

from repro.cluster import Testbed
from repro.config import table1_cluster
from repro.core import DataJob
from repro.core.loadbalance import AlwaysOffloadPolicy
from repro.sched import ClusterScheduler, HeartbeatConfig, PhiAccrualDetector
from repro.sched.health import (
    HEALTHY,
    PROBATION,
    QUARANTINED,
    SUSPECTED,
    NodeHealthTracker,
)
from repro.units import MB
from repro.workloads import text_input


def make_bed(n_sd: int = 2, seed: int = 7):
    bed = Testbed(config=table1_cluster(n_sd=n_sd, seed=seed), seed=seed)
    inp = text_input("/data/s", MB(20), payload_bytes=6_000, seed=seed)
    _view, sd_path = bed.stage_replicated("s", inp)
    return bed, inp, sd_path


# -- detector ----------------------------------------------------------------


def test_phi_grace_before_first_beat():
    det = PhiAccrualDetector(HeartbeatConfig(interval=0.25))
    assert det.phi("n", now=100.0) == 0.0


def test_phi_rises_with_silence():
    det = PhiAccrualDetector(HeartbeatConfig(interval=0.25))
    for k in range(8):
        det.beat("n", 0.25 * k)
    t_last = 0.25 * 7
    quiet = det.phi("n", t_last + 0.25)
    silent = det.phi("n", t_last + 3.0)
    assert quiet < 1.0 < silent
    # phi is monotone in the silence
    assert det.phi("n", t_last + 1.0) < det.phi("n", t_last + 2.0)


def test_reset_drops_dead_gap_from_window():
    det = PhiAccrualDetector(HeartbeatConfig(interval=0.25, min_samples=3))
    for k in range(8):
        det.beat("n", 0.25 * k)
    # a 100 s dead gap, then beats resume
    det.reset("n")
    det.beat("n", 101.75)
    for k in range(1, 4):
        det.beat("n", 101.75 + 0.25 * k)
    # without the reset the gap would sit in the window and the mean
    # would be ~25 s, flattening phi to uselessness
    assert det.phi("n", 102.5 + 3.0) > 5.0


# -- tracker state machine ---------------------------------------------------


def test_tracker_transitions_through_probation():
    bed, _, _ = make_bed()
    cfg = HeartbeatConfig(interval=0.25)
    unhealthy: set = set()
    trk = NodeHealthTracker(bed.sim, ["a", "b"], cfg, unhealthy=unhealthy)
    for k in range(8):
        trk.beat("a", 0.25 * k)
        trk.beat("b", 0.25 * k)
    t_last = 0.25 * 7
    assert not trk.evaluate(t_last + 0.25)

    # node a goes silent: suspected first, then quarantined
    trk.beat("b", t_last + 1.5)
    assert trk.evaluate(t_last + 1.5)
    assert trk.state["a"] == SUSPECTED and "a" not in unhealthy
    trk.beat("b", t_last + 4.0)
    assert trk.evaluate(t_last + 4.0)
    assert trk.state["a"] == QUARANTINED and "a" in unhealthy

    # beats resume: probation (limited trust), not straight to healthy
    trk.beat("a", t_last + 6.0)
    trk.beat("a", t_last + 6.25)
    assert trk.evaluate(t_last + 6.3)
    assert trk.state["a"] == PROBATION and "a" not in unhealthy

    # the canary job decides: success restores, failure re-quarantines
    trk.job_succeeded("a")
    assert trk.state["a"] == HEALTHY and trk.rejoins == 1


def test_probation_failure_requarantines():
    bed, _, _ = make_bed()
    trk = NodeHealthTracker(bed.sim, ["a"], HeartbeatConfig())
    trk.force_quarantine("a")
    assert trk.state["a"] == QUARANTINED and "a" in trk.unhealthy
    trk.beat("a", 10.0)
    trk.beat("a", 10.25)
    assert trk.evaluate(10.3)
    assert trk.state["a"] == PROBATION
    trk.job_failed("a")
    assert trk.state["a"] == QUARANTINED and "a" in trk.unhealthy


def test_suspected_recovers_for_free():
    bed, _, _ = make_bed()
    trk = NodeHealthTracker(bed.sim, ["a"], HeartbeatConfig(interval=0.25))
    for k in range(8):
        trk.beat("a", 0.25 * k)
    t_last = 0.25 * 7
    assert trk.evaluate(t_last + 1.5)
    assert trk.state["a"] == SUSPECTED
    trk.beat("a", t_last + 1.6)
    assert trk.evaluate(t_last + 1.7)
    assert trk.state["a"] == HEALTHY and trk.quarantines == 0


# -- scheduler integration ---------------------------------------------------


def test_scheduler_quarantines_and_rejoins_dead_node():
    """Kill a daemon: heartbeats stop, phi quarantines it; revive: the
    node re-enters through probation, serves one canary job pinned to it,
    and is restored to full trust."""
    bed, inp, sd_path = make_bed(n_sd=2)
    sched = ClusterScheduler(
        bed.cluster, policy=AlwaysOffloadPolicy(), cache=None,
        attempt_timeout=30.0, heartbeat=True,
    )
    assert sched.health is not None

    def driver():
        yield bed.sim.timeout(2.0)
        bed.cluster.sd_daemons["sd0"].kill()
        yield bed.sim.timeout(6.0)
        assert sched.health.state["sd0"] == QUARANTINED
        assert "sd0" in sched.unhealthy
        assert sched.health.state["sd1"] == HEALTHY

        bed.cluster.sd_daemons["sd0"].revive()
        yield bed.sim.timeout(2.0)
        assert sched.health.state["sd0"] == PROBATION
        assert "sd0" not in sched.unhealthy

        # the canary: a job pinned to the rejoining node
        job = DataJob(
            app="wordcount", input_path=sd_path, input_size=MB(20),
            mode="parallel", sd_node="sd0",
        )
        res = yield sched.submit(job)
        assert res.where == "sd0"
        assert sched.health.state["sd0"] == HEALTHY
        return res

    res = bed.run(driver())
    assert sum(v for _, v in res.output) == len(inp.payload_bytes.split())
    counters = bed.sim.obs.metrics.snapshot()["counters"]
    assert counters.get("node.quarantined", 0) >= 1
    assert counters.get("node.probation", 0) >= 1
    assert counters.get("node.rejoined", 0) >= 1
    assert sched.stats()["node_states"]["sd0"] == HEALTHY


def test_heartbeat_off_keeps_legacy_model():
    bed, _, sd_path = make_bed(n_sd=2)
    sched = ClusterScheduler(bed.cluster, cache=None)
    assert sched.health is None
    sched.unhealthy.add("sd0")
    sched.mark_healthy("sd0")
    assert "sd0" not in sched.unhealthy
