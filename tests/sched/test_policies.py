"""Tests for queue-ordering policies (FIFO, SJF, weighted fair share)."""

from __future__ import annotations

import pytest

from repro.core import DataJob
from repro.errors import ConfigError
from repro.sched import (
    FairShareOrdering,
    FIFOOrdering,
    SJFOrdering,
    make_ordering,
)
from repro.sched.queue import QueuedJob


def entry(seq: int, size: int = 100, tenant: str = "default") -> QueuedJob:
    job = DataJob(
        app="wordcount", input_path="/x", input_size=size, tenant=tenant
    )
    return QueuedJob(job, seq, 0.0, done=None)


def test_fifo_orders_by_admission_seq():
    entries = [entry(3), entry(1), entry(2)]
    assert [e.seq for e in FIFOOrdering().ordered(entries)] == [1, 2, 3]


def test_sjf_orders_by_size_then_seq():
    entries = [entry(1, size=300), entry(2, size=100), entry(3, size=100)]
    assert [e.seq for e in SJFOrdering().ordered(entries)] == [2, 3, 1]


def test_fair_share_converges_to_weights():
    """Weight 2:1 tenants with backlog dispatch work in a 2:1 ratio."""
    ordering = FairShareOrdering({"gold": 2.0, "silver": 1.0})
    backlog = [
        entry(i, tenant="gold" if i % 2 == 0 else "silver") for i in range(24)
    ]
    dispatched = []
    while len(dispatched) < 18:  # both tenants still have backlog throughout
        pick = ordering.select(backlog)
        backlog.remove(pick)
        ordering.on_dispatch(pick)
        dispatched.append(pick)
    gold = sum(1 for e in dispatched if e.tenant == "gold")
    silver = len(dispatched) - gold
    assert abs(gold - 2 * silver) <= 1
    assert ordering.consumed["gold"] / ordering.consumed["silver"] == (
        pytest.approx(2.0, rel=0.1)
    )


def test_fair_share_charges_at_least_one_unit():
    """Zero-byte jobs still rotate tenants instead of monopolising."""
    ordering = FairShareOrdering()
    ordering.on_dispatch(entry(0, size=0, tenant="a"))
    assert ordering.consumed["a"] == 1.0
    # with "a" charged, the next pick is the other tenant despite later seq
    pick = ordering.select([entry(1, size=0, tenant="a"), entry(2, tenant="b")])
    assert pick.tenant == "b"


def test_fair_share_unknown_tenant_gets_default_weight():
    ordering = FairShareOrdering({"gold": 2.0}, default_weight=1.0)
    assert ordering.weight_of("gold") == 2.0
    assert ordering.weight_of("nobody") == 1.0


def test_fair_share_rejects_bad_weights():
    with pytest.raises(ConfigError):
        FairShareOrdering({"t": 0.0})
    with pytest.raises(ConfigError):
        FairShareOrdering(default_weight=-1.0)


def test_make_ordering_resolves_names_and_instances():
    assert isinstance(make_ordering(None), FIFOOrdering)
    assert isinstance(make_ordering("fifo"), FIFOOrdering)
    assert isinstance(make_ordering("sjf"), SJFOrdering)
    assert isinstance(make_ordering("fair"), FairShareOrdering)
    inst = FairShareOrdering({"a": 3.0})
    assert make_ordering(inst) is inst
    with pytest.raises(ConfigError):
        make_ordering("priority")
