"""Tests for the bounded admission queue."""

from __future__ import annotations

import pytest

from repro.core import DataJob
from repro.errors import AdmissionError
from repro.sched import FairShareOrdering, FIFOOrdering, JobQueue
from repro.sched.queue import QueuedJob


def entry(seq: int, sd_node: str = "", tenant: str = "default") -> QueuedJob:
    job = DataJob(
        app="wordcount", input_path="/x", input_size=100,
        sd_node=sd_node, tenant=tenant,
    )
    candidates = (sd_node,) if sd_node else ("sd0", "sd1")
    return QueuedJob(job, seq, 0.0, done=None, candidates=candidates)


def test_admission_bound_raises_when_full():
    q = JobQueue(FIFOOrdering(), limit=2)
    q.admit(entry(0))
    q.admit(entry(1))
    assert q.full
    with pytest.raises(AdmissionError) as exc:
        q.admit(entry(2))
    assert exc.value.queued == 2
    assert exc.value.limit == 2
    assert len(q) == 2


def test_requeue_is_never_refused():
    """An admitted job's fault-path re-queue must not bounce off the bound."""
    q = JobQueue(FIFOOrdering(), limit=1)
    first = entry(0)
    q.admit(first)
    assert q.full
    q.requeue(entry(1))  # already admitted once, came back from a failure
    assert len(q) == 2


def test_take_removes_and_charges_the_ordering():
    ordering = FairShareOrdering()
    q = JobQueue(ordering, limit=4)
    e = entry(0, tenant="gold")
    q.admit(e)
    assert q.take(e) is e
    assert len(q) == 0
    assert ordering.consumed["gold"] == 100.0


def test_depths_count_only_pinned_entries():
    q = JobQueue(FIFOOrdering(), limit=8)
    q.admit(entry(0, sd_node="sd0"))
    q.admit(entry(1, sd_node="sd0"))
    q.admit(entry(2, sd_node="sd1"))
    q.admit(entry(3))  # free to go anywhere: attributed to no single node
    assert q.depths() == {"sd0": 2, "sd1": 1}
    assert q.depth_for("sd0") == 2
    assert q.depth_for("sd2") == 0


def test_zero_limit_is_rejected():
    with pytest.raises(AdmissionError):
        JobQueue(FIFOOrdering(), limit=0)
