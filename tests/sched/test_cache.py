"""Tests for the result cache (keys, hit/miss, invalidation, eviction)."""

from __future__ import annotations

import pytest

from repro.cluster import Testbed
from repro.core import DataJob
from repro.core.job import JobResult
from repro.sched import ResultCache
from repro.units import MB
from repro.workloads import text_input


@pytest.fixture()
def env():
    bed = Testbed(seed=3)
    inp = text_input("/data/c", MB(1), payload_bytes=600, seed=3)
    _sd, _host, sd_path = bed.stage_on_sd("c", inp)
    job = DataJob(app="wordcount", input_path=sd_path, input_size=MB(1))
    return bed, sd_path, job, inp


def result(name: str = "r") -> JobResult:
    return JobResult(name=name, where="sd0", elapsed=1.0, output=[("a", 1)])


def test_key_includes_app_path_and_inode(env):
    bed, sd_path, job, _ = env
    key = ResultCache.key_for(job, bed.cluster)
    assert key is not None
    assert key[0] == "wordcount" and key[1] == sd_path
    # same job, different params => different key
    other = DataJob(
        app="wordcount", input_path=sd_path, input_size=MB(1),
        params={"pattern": "x"},
    )
    assert ResultCache.key_for(other, bed.cluster) != key


def test_uncacheable_jobs_get_no_key(env):
    bed, sd_path, _, _ = env
    missing = DataJob(
        app="wordcount", input_path="/export/data/nope", input_size=MB(1)
    )
    assert ResultCache.key_for(missing, bed.cluster) is None
    unhashable = DataJob(
        app="wordcount", input_path=sd_path, input_size=MB(1),
        params={"x": []},
    )
    assert ResultCache.key_for(unhashable, bed.cluster) is None


def test_hit_and_miss_counters(env):
    bed, _, job, _ = env
    cache = ResultCache()
    key = ResultCache.key_for(job, bed.cluster)
    assert cache.get(key) is None
    cache.put(key, result())
    assert cache.get(key).name == "r"
    assert cache.get(None) is None  # uncacheable lookups count as misses
    assert (cache.hits, cache.misses) == (1, 2)


def test_vfs_write_invalidates_eagerly(env):
    """Re-staging the input (same path, mtime 0.0) must drop the entry."""
    bed, sd_path, job, inp = env
    cache = ResultCache()
    cache.watch(bed.sd.fs.vfs)
    key = ResultCache.key_for(job, bed.cluster)
    cache.put(key, result())
    bed.stage(bed.sd, sd_path, inp)  # rewrite in place
    assert cache.invalidations == 1
    assert cache.get(key) is None
    assert len(cache) == 0


def test_delete_invalidates(env):
    bed, sd_path, job, _ = env
    cache = ResultCache()
    cache.watch(bed.sd.fs.vfs)
    key = ResultCache.key_for(job, bed.cluster)
    cache.put(key, result())
    bed.sd.fs.vfs.unlink(sd_path)
    assert cache.invalidations == 1
    assert len(cache) == 0


def test_fifo_eviction_at_capacity():
    cache = ResultCache(capacity=2)
    k1 = ("app", "/p1", "partitioned", None, (), 1, 0.0)
    k2 = ("app", "/p2", "partitioned", None, (), 2, 0.0)
    k3 = ("app", "/p3", "partitioned", None, (), 3, 0.0)
    cache.put(k1, result("r1"))
    cache.put(k2, result("r2"))
    cache.put(k3, result("r3"))
    assert len(cache) == 2
    assert cache.get(k1) is None  # oldest evicted
    assert cache.get(k2).name == "r2"
    assert cache.get(k3).name == "r3"


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        ResultCache(capacity=0)
