"""Tests for the result cache (keys, hit/miss, invalidation, eviction)."""

from __future__ import annotations

import pytest

from repro.cluster import Testbed
from repro.core import DataJob
from repro.core.job import JobResult
from repro.sched import ResultCache
from repro.units import MB
from repro.workloads import text_input


@pytest.fixture()
def env():
    bed = Testbed(seed=3)
    inp = text_input("/data/c", MB(1), payload_bytes=600, seed=3)
    _sd, _host, sd_path = bed.stage_on_sd("c", inp)
    job = DataJob(app="wordcount", input_path=sd_path, input_size=MB(1))
    return bed, sd_path, job, inp


def result(name: str = "r") -> JobResult:
    return JobResult(name=name, where="sd0", elapsed=1.0, output=[("a", 1)])


def test_key_includes_app_path_and_inode(env):
    bed, sd_path, job, _ = env
    key = ResultCache.key_for(job, bed.cluster)
    assert key is not None
    assert key[0] == "wordcount" and key[1] == sd_path
    # same job, different params => different key
    other = DataJob(
        app="wordcount", input_path=sd_path, input_size=MB(1),
        params={"pattern": "x"},
    )
    assert ResultCache.key_for(other, bed.cluster) != key


def test_uncacheable_jobs_get_no_key(env):
    bed, sd_path, _, _ = env
    missing = DataJob(
        app="wordcount", input_path="/export/data/nope", input_size=MB(1)
    )
    assert ResultCache.key_for(missing, bed.cluster) is None
    unhashable = DataJob(
        app="wordcount", input_path=sd_path, input_size=MB(1),
        params={"x": []},
    )
    assert ResultCache.key_for(unhashable, bed.cluster) is None


def test_hit_and_miss_counters(env):
    bed, _, job, _ = env
    cache = ResultCache()
    key = ResultCache.key_for(job, bed.cluster)
    assert cache.get(key) is None
    cache.put(key, result())
    assert cache.get(key).name == "r"
    assert cache.get(None) is None  # uncacheable lookups count as misses
    assert (cache.hits, cache.misses) == (1, 2)


def test_vfs_write_invalidates_eagerly(env):
    """Re-staging the input (same path, mtime 0.0) must drop the entry."""
    bed, sd_path, job, inp = env
    cache = ResultCache()
    cache.watch(bed.sd.fs.vfs)
    key = ResultCache.key_for(job, bed.cluster)
    cache.put(key, result())
    bed.stage(bed.sd, sd_path, inp)  # rewrite in place
    assert cache.invalidations == 1
    assert cache.get(key) is None
    assert len(cache) == 0


def test_delete_invalidates(env):
    bed, sd_path, job, _ = env
    cache = ResultCache()
    cache.watch(bed.sd.fs.vfs)
    key = ResultCache.key_for(job, bed.cluster)
    cache.put(key, result())
    bed.sd.fs.vfs.unlink(sd_path)
    assert cache.invalidations == 1
    assert len(cache) == 0


def _key(i: int) -> tuple:
    return ("app", f"/p{i}", "partitioned", None, (), i, 0.0)


def test_lru_eviction_at_capacity():
    cache = ResultCache(capacity=2)
    cache.put(_key(1), result("r1"))
    cache.put(_key(2), result("r2"))
    cache.put(_key(3), result("r3"))
    assert len(cache) == 2
    assert cache.get(_key(1)) is None  # least recently used evicted
    assert cache.get(_key(2)).name == "r2"
    assert cache.get(_key(3)).name == "r3"


def test_hit_refreshes_recency():
    """LRU, not FIFO: a hit protects the oldest-stored entry."""
    cache = ResultCache(capacity=2)
    cache.put(_key(1), result("r1"))
    cache.put(_key(2), result("r2"))
    assert cache.get(_key(1)).name == "r1"  # touch: k1 now most recent
    cache.put(_key(3), result("r3"))
    assert cache.get(_key(1)).name == "r1"  # survived (touched)
    assert cache.get(_key(2)) is None  # k2 was the LRU victim


def test_put_refreshes_recency():
    """Re-storing an existing key also refreshes it (no double count)."""
    cache = ResultCache(capacity=2)
    cache.put(_key(1), result("r1"))
    cache.put(_key(2), result("r2"))
    cache.put(_key(1), result("r1b"))  # refresh, not a new entry
    assert len(cache) == 2
    cache.put(_key(3), result("r3"))
    assert cache.get(_key(2)) is None
    assert cache.get(_key(1)).name == "r1b"


def test_eviction_counters_by_cause(env):
    bed, sd_path, job, _ = env
    cache = ResultCache(capacity=1)
    cache.watch(bed.sd.fs.vfs)
    key = ResultCache.key_for(job, bed.cluster)
    cache.put(key, result())
    cache.put(_key(1), result("r1"))  # capacity-evicts the job entry
    assert cache.evictions_capacity == 1
    assert cache.evictions_invalidation == 0
    cache.clear()
    cache.put(key, result())
    bed.sd.fs.vfs.unlink(sd_path)
    assert cache.evictions_invalidation == 1
    assert cache.evictions_capacity == 1  # unchanged
    stats = cache.stats()
    assert stats["evictions_capacity"] == 1
    assert stats["evictions_invalidation"] == 1


def test_eviction_counters_reach_obs(env):
    from repro.obs import Observability

    bed, _, job, _ = env
    obs = Observability(enabled=False)
    cache = ResultCache(capacity=1, obs=obs)
    cache.put(_key(1), result("r1"))
    cache.put(_key(2), result("r2"))
    cache.invalidate_path("/p2")
    ctr = obs.metrics.counters
    assert ctr.get("sched.cache.evict.capacity") == 1
    assert ctr.get("sched.cache.evict.invalidation") == 1


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        ResultCache(capacity=0)
