"""Distributed jobs through the cluster scheduler's control plane."""

from __future__ import annotations

import pickle

from repro.cluster.testbed import Testbed
from repro.config import table1_cluster
from repro.core import DistributedEngine, DistributedJob
from repro.sched import ClusterScheduler
from repro.units import MB
from repro.workloads import text_input

SIZE = MB(20)


def _bed():
    bed = Testbed(config=table1_cluster(n_sd=4, seed=0), seed=0)
    inp = text_input("/data/s", SIZE, payload_bytes=6_000, seed=9)
    _, sd_path = bed.stage_replicated("s", inp)
    return bed, sd_path


def _job(sd_path, **kw):
    return DistributedJob(
        app="wordcount", input_path=sd_path, input_size=SIZE,
        fragment_bytes=(SIZE + 3) // 4, **kw,
    )


def _reference(sd_path=None):
    bed, path = _bed()
    eng = DistributedEngine(bed.cluster)
    res = bed.run(eng.run(_job(path), timeout=3600.0))
    return res


def test_submit_distributed_completes_and_counts():
    ref = _reference()
    bed, sd_path = _bed()
    sched = ClusterScheduler(bed.cluster, attempt_timeout=3600.0, max_queue=4)
    res = bed.run(sched.submit_distributed(_job(sd_path)))
    assert pickle.dumps(res.output) == pickle.dumps(ref.output)
    assert res.offloaded and res.n_shards == 4
    counters = bed.sim.obs.metrics.snapshot()["counters"]
    assert counters.get("sched.dist.submitted") == 1
    assert counters.get("sched.dist.completed") == 1
    assert counters.get("sched.dist.shards") == 4
    # the control-plane record is duck-type compatible with DataJob results
    assert sched.completed and sched.completed[0].where == res.merge_node


def test_distributed_jobs_skip_the_result_cache():
    bed, sd_path = _bed()
    sched = ClusterScheduler(bed.cluster, attempt_timeout=3600.0, max_queue=4)
    first = bed.run(sched.submit_distributed(_job(sd_path)))
    second = bed.run(sched.submit_distributed(_job(sd_path)))
    assert pickle.dumps(first.output) == pickle.dumps(second.output)
    counters = bed.sim.obs.metrics.snapshot()["counters"]
    assert counters.get("sched.cache.hit", 0) == 0


def test_killed_shard_node_recovers_and_job_completes():
    ref = _reference()
    victim = ref.merge_node
    kill_at = ref.timeline["map_done"] + 1e-3

    bed, sd_path = _bed()
    sched = ClusterScheduler(bed.cluster, attempt_timeout=5.0, max_queue=4)

    def killer():
        yield bed.sim.timeout(kill_at)
        bed.cluster.sd_daemons[victim].kill()

    bed.sim.spawn(killer(), name="killer")
    res = bed.run(sched.submit_distributed(_job(sd_path)))
    assert pickle.dumps(res.output) == pickle.dumps(ref.output)
    # post-map kill: the victim's committed artifact is reused in place,
    # but no daemon work lands on it — reduce and merge move to survivors
    assert victim in res.shard_nodes
    assert victim not in res.reduce_nodes.values()
    assert res.merge_node != victim
    assert res.recovery["failures"]


def test_whole_fleet_dead_falls_back_to_host():
    ref = _reference()
    bed, sd_path = _bed()
    sched = ClusterScheduler(
        bed.cluster, attempt_timeout=2.0, max_queue=4, max_retries=1,
    )
    for name in list(bed.cluster.sd_daemons):
        bed.cluster.sd_daemons[name].kill()
    res = bed.run(sched.submit_distributed(_job(sd_path)))
    assert pickle.dumps(res.output) == pickle.dumps(ref.output)
    assert not res.offloaded and res.where == "host"
