"""Unit tests for links, switch and fabric flows."""

from __future__ import annotations

import pytest

from repro.config import NetworkConfig
from repro.errors import NetworkError, RoutingError
from repro.net import Fabric, Link, Switch
from repro.sim import Simulator
from repro.units import Gbit, MB, MiB


def test_link_tx_time():
    sim = Simulator()
    link = Link(sim, bandwidth=Gbit(1), latency=0.0)
    assert link.tx_time(MB(125)) == pytest.approx(1.0)


def test_link_serializes_transfers():
    sim = Simulator()
    link = Link(sim, bandwidth=1e6, latency=0.0)
    ends = {}

    def tx(sim, link, name, nbytes):
        yield link.transmit(nbytes)
        ends[name] = sim.now

    sim.spawn(tx(sim, link, "a", 1_000_000))
    sim.spawn(tx(sim, link, "b", 1_000_000))
    sim.run()
    assert ends["a"] == pytest.approx(1.0)
    assert ends["b"] == pytest.approx(2.0)


def test_link_latency_after_serialization():
    sim = Simulator()
    link = Link(sim, bandwidth=1e6, latency=0.5)

    def tx(sim, link):
        yield link.transmit(1_000_000)
        return sim.now

    p = sim.spawn(tx(sim, link))
    sim.run()
    assert p.value == pytest.approx(1.5)


def test_link_validation():
    sim = Simulator()
    with pytest.raises(NetworkError):
        Link(sim, bandwidth=0, latency=0)
    with pytest.raises(NetworkError):
        Link(sim, bandwidth=1, latency=-1)


def test_switch_ports_and_path():
    sim = Simulator()
    sw = Switch(sim, NetworkConfig())
    sw.attach("a")
    sw.attach("b")
    up, down = sw.path("a", "b")
    assert "a->" in up.name
    assert "->b" in down.name
    with pytest.raises(RoutingError):
        sw.path("a", "a")
    with pytest.raises(RoutingError):
        sw.path("a", "zzz")


def test_fabric_transfer_time_1gb():
    sim = Simulator()
    fab = Fabric(sim, NetworkConfig())
    fab.attach("a")
    fab.attach("b")

    def main(sim, fab):
        yield fab.transfer("a", "b", MB(1000))
        return sim.now

    p = sim.spawn(main(sim, fab))
    sim.run(until=p)
    # 1 GB at 125 MB/s, pipelined segments: ~8s (+ segment pipeline slack)
    assert 8.0 <= p.value < 8.5


def test_fabric_zero_byte_message():
    sim = Simulator()
    fab = Fabric(sim, NetworkConfig())
    fab.attach("a")
    fab.attach("b")

    def main(sim, fab):
        yield fab.transfer("a", "b", 0)
        return sim.now

    p = sim.spawn(main(sim, fab))
    sim.run(until=p)
    assert p.value < 0.01  # latency only


def test_fabric_loopback_is_free():
    sim = Simulator()
    fab = Fabric(sim, NetworkConfig())
    fab.attach("a")

    def main(sim, fab):
        yield fab.transfer("a", "a", MB(500))
        return sim.now

    p = sim.spawn(main(sim, fab))
    sim.run(until=p)
    assert p.value == 0.0


def test_fabric_delivers_to_inbox():
    sim = Simulator()
    fab = Fabric(sim, NetworkConfig())
    fab.attach("a")
    inbox = fab.attach("b")

    def consumer(sim, inbox):
        msg = yield inbox.get()
        return (msg.src, msg.nbytes)

    def producer(sim, fab):
        yield fab.transfer("a", "b", 1000)

    p = sim.spawn(consumer(sim, inbox))
    sim.spawn(producer(sim, fab))
    sim.run()
    assert p.value == ("a", 1000)


def test_concurrent_flows_share_downlink():
    sim = Simulator()
    fab = Fabric(sim, NetworkConfig(segment_bytes=MiB(1)))
    for n in ("a", "b", "c"):
        fab.attach(n)
    ends = {}

    def f(sim, fab, src, nbytes, name):
        yield fab.transfer(src, "c", nbytes)
        ends[name] = sim.now

    sim.spawn(f(sim, fab, "a", MB(100), "a"))
    sim.spawn(f(sim, fab, "b", MB(100), "b"))
    sim.run()
    # each flow alone: 0.8s; sharing c's downlink: ~1.6s for both
    assert ends["a"] == pytest.approx(1.6, rel=0.1)
    assert ends["b"] == pytest.approx(1.6, rel=0.1)


def test_disjoint_flows_do_not_interfere():
    sim = Simulator()
    fab = Fabric(sim, NetworkConfig())
    for n in ("a", "b", "c", "d"):
        fab.attach(n)
    ends = {}

    def f(sim, fab, src, dst, name):
        yield fab.transfer(src, dst, MB(125))
        ends[name] = sim.now

    sim.spawn(f(sim, fab, "a", "b", "ab"))
    sim.spawn(f(sim, fab, "c", "d", "cd"))
    sim.run()
    # size/bw plus one store-and-forward segment (~0.134s at 16 MiB segments)
    expect = 125e6 / 125e6 + (16 * 1024**2) / 125e6
    assert ends["ab"] == pytest.approx(expect, rel=0.05)
    assert ends["cd"] == pytest.approx(expect, rel=0.05)
    # crucially: the two disjoint flows do not slow each other down
    assert ends["ab"] == pytest.approx(ends["cd"], rel=1e-9)


def test_flow_stats_recorded():
    sim = Simulator()
    fab = Fabric(sim, NetworkConfig())
    fab.attach("a")
    fab.attach("b")

    def main(sim, fab):
        yield fab.transfer("a", "b", MB(10))

    sim.spawn(main(sim, fab))
    sim.run()
    flows = fab.flows_between("a", "b")
    assert len(flows) == 1
    assert flows[0].nbytes == MB(10)
    assert flows[0].goodput > 0
    assert fab.bytes_delivered == MB(10)


def test_send_to_unattached_endpoint_rejected():
    sim = Simulator()
    fab = Fabric(sim, NetworkConfig())
    fab.attach("a")
    with pytest.raises(NetworkError):
        fab.transfer("a", "ghost", 10)
