"""Tests for the real engine's background readahead thread."""

from __future__ import annotations

import pytest

from repro.exec.chunks import FileChunk, chunk_file
from repro.obs import Observability
from repro.tier import ReadaheadPrefetcher


@pytest.fixture()
def fragments(tmp_path):
    p = tmp_path / "input"
    p.write_bytes(b"word " * 4000)  # 20 000 bytes
    chunks = chunk_file(str(p), 4096)
    # one chunk per fragment: a simple, observable schedule
    return [[c] for c in chunks]


def test_advise_prefetches_the_next_fragment(fragments):
    with ReadaheadPrefetcher(fragments, depth=1) as pf:
        pf.advise(0)
        assert pf.wait_idle()
        assert pf.issued == 1
        assert pf.bytes_prefetched == sum(c.length for c in fragments[1])


def test_depth_covers_multiple_fragments(fragments):
    with ReadaheadPrefetcher(fragments, depth=2) as pf:
        pf.advise(0)
        assert pf.wait_idle()
        assert pf.issued == 2


def test_fragments_are_prefetched_once(fragments):
    with ReadaheadPrefetcher(fragments, depth=1) as pf:
        pf.advise(0)
        pf.advise(0)  # duplicate advise must not re-read
        assert pf.wait_idle()
        assert pf.issued == 1


def test_last_fragment_has_nothing_to_prefetch(fragments):
    with ReadaheadPrefetcher(fragments, depth=1) as pf:
        pf.advise(len(fragments) - 1)
        assert pf.wait_idle()
        assert pf.issued == 0


def test_depth_zero_is_a_noop(fragments):
    with ReadaheadPrefetcher(fragments, depth=0) as pf:
        pf.advise(0)
        assert pf.wait_idle()
        assert pf.issued == 0


def test_negative_depth_rejected(fragments):
    with pytest.raises(ValueError):
        ReadaheadPrefetcher(fragments, depth=-1)


def test_counters_reach_observability(fragments):
    obs = Observability(enabled=False)
    with ReadaheadPrefetcher(fragments, depth=1, obs=obs) as pf:
        pf.advise(0)
        assert pf.wait_idle()
    ctr = obs.metrics.counters
    assert ctr["tier.prefetch.issued"] == 1
    assert ctr["tier.prefetch.bytes"] == pf.bytes_prefetched


def test_missing_file_is_counted_not_raised(tmp_path):
    obs = Observability(enabled=False)
    ghost = [[FileChunk(str(tmp_path / "nope"), 0, 100)]] * 2
    with ReadaheadPrefetcher(ghost, depth=1, obs=obs) as pf:
        pf.advise(0)
        assert pf.wait_idle()
    assert obs.metrics.counters["tier.prefetch.failed"] == 1


def test_close_is_idempotent_and_stops_work(fragments):
    pf = ReadaheadPrefetcher(fragments, depth=1)
    pf.close()
    pf.close()
    pf.advise(0)  # after close: ignored
    assert pf.issued == 0
